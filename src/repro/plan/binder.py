"""The binder: resolves a parsed statement against the catalog.

Responsibilities:

* name resolution (tables, aliases, columns, select-list aliases, ordinals),
* type checking and sugar desugaring (via :mod:`repro.plan.expressions`),
* aggregate extraction (GROUP BY semantics and the "column must appear in
  GROUP BY" rule),
* assembling the canonical logical plan shape::

      Scan → [Filter] → [Aggregate] → [Filter(HAVING)] → Project
           → [Distinct] → [Sort] → [Limit]

  (Sort binds against the projected schema first; when the key only exists
  pre-projection, the Sort is planned beneath the Project instead.)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.core.errors import BindError, TypeMismatchError
from repro.core.types import Column, DataType, Schema, common_numeric_type
from repro.plan import logical
from repro.plan.expressions import (
    AGGREGATE_FUNCS,
    AggSpec,
    BoundBinary,
    BoundCase,
    BoundColumn,
    BoundExpr,
    BoundFunc,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundParam,
    BoundUnary,
    ParamVector,
    is_constant,
    scalar_result_type,
)
from repro.sql import ast


class Binder:
    """Binds AST statements to logical plans using catalog metadata.

    ``subquery_executor`` (optional) runs an uncorrelated subquery's logical
    plan and returns its rows; the Database facade supplies one so scalar
    and IN subqueries fold to constants at bind time.  Without it,
    subqueries raise :class:`BindError`.
    """

    def __init__(self, catalog: Catalog, subquery_executor=None):
        self.catalog = catalog
        self.subquery_executor = subquery_executor
        # Prepared-statement parameter slots, set for the duration of one
        # bind_prepared call; ``?`` placeholders bind against this vector.
        self._param_vector: Optional[ParamVector] = None

    def bind_prepared(
        self, stmt: ast.Statement, params: ParamVector
    ) -> logical.LogicalPlan:
        """Bind a query whose ``?`` placeholders read from ``params``.

        The returned plan's BoundParam nodes share the vector, so executing
        with new values is just ``params.bind(...)`` — no re-bind needed.
        """
        self._param_vector = params
        try:
            return self.bind_query(stmt)
        finally:
            self._param_vector = None

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def bind_query(self, stmt: ast.Statement) -> logical.LogicalPlan:
        """Bind a SELECT or a UNION/INTERSECT/EXCEPT compound."""
        if isinstance(stmt, ast.SelectStmt):
            return self.bind_select(stmt)
        if isinstance(stmt, ast.SetOpStmt):
            return self._bind_set_op(stmt)
        raise BindError(f"not a query statement: {type(stmt).__name__}")

    def _bind_set_op(self, stmt: ast.SetOpStmt) -> logical.LogicalPlan:
        left = self.bind_query(stmt.left)
        right = self.bind_select(stmt.right)
        left_schema = left.output_schema()
        right_schema = right.output_schema()
        if len(left_schema) != len(right_schema):
            raise BindError(
                f"{stmt.op.upper()} operands have {len(left_schema)} and "
                f"{len(right_schema)} columns"
            )
        for lc, rc in zip(left_schema.columns, right_schema.columns):
            compatible = (
                lc.dtype == rc.dtype
                or lc.dtype is DataType.NULL
                or rc.dtype is DataType.NULL
                or (lc.dtype.is_numeric() and rc.dtype.is_numeric())
            )
            if not compatible:
                raise TypeMismatchError(
                    f"{stmt.op.upper()} column {lc.name!r}: "
                    f"{lc.dtype.value} vs {rc.dtype.value}"
                )
        plan: logical.LogicalPlan = logical.SetOp(left, right, stmt.op, stmt.all)
        if stmt.order_by:
            schema = plan.output_schema()
            keys = []
            for item in stmt.order_by:
                expr = item.expr
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    idx = expr.value - 1
                    if idx < 0 or idx >= len(schema):
                        raise BindError(f"ORDER BY position {expr.value} out of range")
                    column = schema[idx]
                    keys.append((BoundColumn(idx, column.dtype, column.name), item.ascending))
                else:
                    keys.append((self.bind_expr(expr, schema), item.ascending))
            plan = logical.Sort(plan, tuple(keys))
        if stmt.limit is not None or stmt.offset is not None:
            plan = logical.Limit(plan, stmt.limit, stmt.offset or 0)
        return plan

    def bind_select(self, stmt: ast.SelectStmt) -> logical.LogicalPlan:
        if stmt.from_item is not None:
            plan = self._bind_from(stmt.from_item)
        else:
            plan = logical.Values(rows=((),), schema=Schema([]))
        input_schema = plan.output_schema()

        if stmt.where is not None:
            predicate = self.bind_expr(stmt.where, input_schema)
            _require_boolean(predicate, "WHERE")
            plan = logical.Filter(plan, predicate)

        has_aggregates = stmt.group_by or self._contains_aggregate(stmt)
        builder = None
        if has_aggregates:
            builder = self._bind_aggregate_query(stmt, plan)
            project_exprs, names = builder.project_exprs, builder.names
        else:
            project_exprs, names = self._bind_select_items(stmt.items, input_schema)

        result_schema = Schema(
            [Column(n, e.dtype) for n, e in zip(names, project_exprs)]
        )

        # ORDER BY: prefer the projected schema (aliases + ordinals).  When
        # any key needs pre-projection state (an unprojected column, or an
        # aggregate like ORDER BY COUNT(*)), bind every key below the
        # Project instead (aliases/ordinals resolve to their defining AST).
        sort_keys_post: List[Tuple[BoundExpr, bool]] = []
        all_post = True
        for item in stmt.order_by:
            bound = self._bind_order_key(
                item.expr, result_schema, project_exprs, names
            )
            if bound is None:
                all_post = False
                break
            sort_keys_post.append((bound, item.ascending))

        sort_keys_pre: List[Tuple[BoundExpr, bool]] = []
        if not all_post:
            sort_keys_post = []
            for item in stmt.order_by:
                key_ast = self._resolve_order_ast(item.expr, stmt.items)
                if builder is not None:
                    bound_pre = builder.rewrite(key_ast)
                else:
                    bound_pre = self.bind_expr(key_ast, plan.output_schema())
                sort_keys_pre.append((bound_pre, item.ascending))

        if builder is not None:
            # Construct the Aggregate only now: ORDER BY may have added specs.
            plan = builder.build()

        if sort_keys_pre:
            plan = logical.Sort(plan, tuple(sort_keys_pre))
            plan = logical.Project(plan, tuple(project_exprs), tuple(names))
            if stmt.distinct:
                plan = logical.Distinct(plan)
        else:
            plan = logical.Project(plan, tuple(project_exprs), tuple(names))
            if stmt.distinct:
                plan = logical.Distinct(plan)
            if sort_keys_post:
                plan = logical.Sort(plan, tuple(sort_keys_post))

        if stmt.limit is not None or stmt.offset is not None:
            plan = logical.Limit(plan, stmt.limit, stmt.offset or 0)
        return plan

    # -- FROM ------------------------------------------------------------

    def _bind_from(self, item: ast.FromItem) -> logical.LogicalPlan:
        if isinstance(item, ast.TableRef):
            table = self.catalog.get_table(item.name)
            alias = item.alias or table.name
            schema = table.schema.with_table(alias)
            return logical.Scan(table.name, alias, schema)
        if isinstance(item, ast.Join):
            left = self._bind_from(item.left)
            right = self._bind_from(item.right)
            combined = left.output_schema().concat(right.output_schema())
            condition = None
            if item.condition is not None:
                condition = self.bind_expr(item.condition, combined)
                _require_boolean(condition, "JOIN ON")
            if item.kind == "cross":
                return logical.Join(left, right, logical.CROSS, None)
            kind = logical.LEFT_OUTER if item.kind == "left" else logical.INNER
            return logical.Join(left, right, kind, condition)
        raise BindError(f"unsupported FROM item {item!r}")

    # -- select list --------------------------------------------------------

    def _bind_select_items(
        self, items: Sequence[ast.SelectItem], schema: Schema
    ) -> Tuple[List[BoundExpr], List[str]]:
        exprs: List[BoundExpr] = []
        names: List[str] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for idx, col in enumerate(schema.columns):
                    if item.expr.table and col.table != item.expr.table:
                        continue
                    exprs.append(BoundColumn(idx, col.dtype, col.name))
                    names.append(col.name)
                if item.expr.table and not any(
                    col.table == item.expr.table for col in schema.columns
                ):
                    raise BindError(f"unknown table in {item.expr.to_sql()}")
                continue
            bound = self.bind_expr(item.expr, schema)
            exprs.append(bound)
            names.append(item.alias or _default_name(item.expr))
        if not exprs:
            raise BindError("empty select list")
        return exprs, names

    # -- aggregation ----------------------------------------------------------

    def _contains_aggregate(self, stmt: ast.SelectStmt) -> bool:
        exprs: List[ast.Expr] = [i.expr for i in stmt.items]
        if stmt.having is not None:
            exprs.append(stmt.having)
        exprs.extend(i.expr for i in stmt.order_by)
        for expr in exprs:
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.FuncCall) and node.name in AGGREGATE_FUNCS:
                    return True
        return False

    def _bind_aggregate_query(
        self, stmt: ast.SelectStmt, plan: logical.LogicalPlan
    ) -> "_AggregateBuilder":
        input_schema = plan.output_schema()
        group_bound: List[BoundExpr] = []
        group_asts: List[ast.Expr] = []
        group_names: List[str] = []
        for g in stmt.group_by:
            g_ast = self._resolve_group_alias(g, stmt.items)
            bound = self.bind_expr(g_ast, input_schema)
            group_bound.append(bound)
            group_asts.append(g_ast)
            group_names.append(_default_name(g_ast))

        agg_specs: List[AggSpec] = []

        def agg_column(spec: AggSpec) -> BoundColumn:
            # Deduplicate identical aggregate computations.
            for idx, existing in enumerate(agg_specs):
                if (
                    existing.func == spec.func
                    and existing.arg == spec.arg
                    and existing.distinct == spec.distinct
                ):
                    return BoundColumn(
                        len(group_bound) + idx, existing.result_type(), existing.name
                    )
            agg_specs.append(spec)
            return BoundColumn(
                len(group_bound) + len(agg_specs) - 1, spec.result_type(), spec.name
            )

        def rewrite(expr: ast.Expr) -> BoundExpr:
            """Bind an expression over the aggregate's output row."""
            # A sub-expression equal to a group key becomes that key column.
            bound_try = self._try_bind(expr, input_schema)
            if bound_try is not None:
                for key_idx, g in enumerate(group_bound):
                    if bound_try == g:
                        return BoundColumn(key_idx, g.dtype, group_names[key_idx])
                if is_constant(bound_try):
                    return bound_try
            if isinstance(expr, ast.FuncCall) and expr.name in AGGREGATE_FUNCS:
                return agg_column(self._make_agg_spec(expr, input_schema))
            if isinstance(expr, ast.ColumnRef):
                raise BindError(
                    f"column {expr.to_sql()!r} must appear in GROUP BY or an aggregate"
                )
            return self._rebind_composite(expr, rewrite)

        project_exprs: List[BoundExpr] = []
        names: List[str] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                raise BindError("SELECT * cannot be combined with GROUP BY")
            project_exprs.append(rewrite(item.expr))
            names.append(item.alias or _default_name(item.expr))

        having_bound = None
        if stmt.having is not None:
            having_bound = rewrite(stmt.having)
            _require_boolean(having_bound, "HAVING")

        return _AggregateBuilder(
            input_plan=plan,
            group_bound=group_bound,
            agg_specs=agg_specs,
            group_names=group_names,
            having=having_bound,
            project_exprs=project_exprs,
            names=names,
            rewrite=rewrite,
        )

    def _resolve_group_alias(
        self, expr: ast.Expr, items: Sequence[ast.SelectItem]
    ) -> ast.Expr:
        """GROUP BY may name a select alias or an ordinal."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            idx = expr.value - 1
            if idx < 0 or idx >= len(items):
                raise BindError(f"GROUP BY position {expr.value} out of range")
            return items[idx].expr
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    return item.expr
        return expr

    def _make_agg_spec(self, call: ast.FuncCall, schema: Schema) -> AggSpec:
        if len(call.args) != 1:
            raise BindError(f"{call.name} takes exactly one argument")
        arg_ast = call.args[0]
        if isinstance(arg_ast, ast.Star):
            if call.name != "COUNT":
                raise BindError(f"{call.name}(*) is not valid")
            return AggSpec("COUNT", None, call.distinct, name=_default_name(call))
        for node in ast.walk_expr(arg_ast):
            if isinstance(node, ast.FuncCall) and node.name in AGGREGATE_FUNCS:
                raise BindError(
                    f"aggregate {node.to_sql()!r} cannot be nested inside "
                    f"{call.name}: nested aggregate functions are not allowed"
                )
        arg = self.bind_expr(arg_ast, schema)
        if call.name in ("SUM", "AVG") and not (
            arg.dtype.is_numeric() or arg.dtype is DataType.NULL
        ):
            raise TypeMismatchError(f"{call.name} requires a numeric argument")
        return AggSpec(call.name, arg, call.distinct, name=_default_name(call))

    def _rebind_composite(self, expr: ast.Expr, rewrite) -> BoundExpr:
        """Bind a composite AST node whose leaves go through ``rewrite``."""
        if isinstance(expr, ast.BinaryOp):
            left = rewrite(expr.left)
            right = rewrite(expr.right)
            return _make_binary(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            return _make_unary(expr.op, rewrite(expr.operand))
        if isinstance(expr, ast.FuncCall):
            args = tuple(rewrite(a) for a in expr.args)
            dtype = scalar_result_type(expr.name, [a.dtype for a in args])
            return BoundFunc(expr.name, args, dtype)
        if isinstance(expr, ast.CaseExpr):
            whens = tuple((rewrite(c), rewrite(r)) for c, r in expr.whens)
            else_result = (
                rewrite(expr.else_result) if expr.else_result is not None else None
            )
            dtype = _case_type(whens, else_result)
            return BoundCase(whens, else_result, dtype)
        if isinstance(expr, ast.IsNullExpr):
            return BoundIsNull(rewrite(expr.operand), expr.negated)
        if isinstance(expr, ast.LikeExpr):
            pattern = expr.pattern
            if not isinstance(pattern, ast.Literal) or not isinstance(
                pattern.value, str
            ):
                raise BindError("LIKE pattern must be a string literal")
            return BoundLike(rewrite(expr.operand), pattern.value, expr.negated)
        if isinstance(expr, ast.BetweenExpr):
            operand = rewrite(expr.operand)
            low = rewrite(expr.low)
            high = rewrite(expr.high)
            cmp = BoundBinary(
                "AND",
                _make_binary(">=", operand, low),
                _make_binary("<=", operand, high),
                DataType.BOOLEAN,
            )
            if expr.negated:
                return BoundUnary("NOT", cmp, DataType.BOOLEAN)
            return cmp
        if isinstance(expr, ast.InExpr):
            return self._bind_in(expr, rewrite)
        if isinstance(expr, ast.Subquery):
            return self._bind_scalar_subquery(expr)
        if isinstance(expr, ast.ExistsExpr):
            return self._bind_exists(expr)
        raise BindError(f"cannot bind expression {expr!r}")

    # ------------------------------------------------------------------
    # ORDER BY helpers
    # ------------------------------------------------------------------

    def _resolve_order_ast(
        self, expr: ast.Expr, items: Sequence[ast.SelectItem]
    ) -> ast.Expr:
        """Resolve ORDER BY ordinals and select-list aliases to their AST."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            idx = expr.value - 1
            if idx < 0 or idx >= len(items):
                raise BindError(f"ORDER BY position {expr.value} out of range")
            return items[idx].expr
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    return item.expr
        return expr

    def _bind_order_key(
        self,
        expr: ast.Expr,
        result_schema: Schema,
        project_exprs: Sequence[BoundExpr],
        names: Sequence[str],
    ) -> Optional[BoundExpr]:
        # Ordinal: ORDER BY 2
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            idx = expr.value - 1
            if idx < 0 or idx >= len(project_exprs):
                raise BindError(f"ORDER BY position {expr.value} out of range")
            return BoundColumn(idx, project_exprs[idx].dtype, names[idx])
        # Alias or projected column name.
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for idx, name in enumerate(names):
                if name.lower() == expr.name.lower():
                    return BoundColumn(idx, project_exprs[idx].dtype, name)
        return self._try_bind(expr, result_schema)

    # ------------------------------------------------------------------
    # Expression binding
    # ------------------------------------------------------------------

    def _try_bind(self, expr: ast.Expr, schema: Schema) -> Optional[BoundExpr]:
        try:
            return self.bind_expr(expr, schema)
        except BindError:
            return None

    def bind_expr(self, expr: ast.Expr, schema: Schema) -> BoundExpr:
        """Bind one scalar expression against a schema."""
        if isinstance(expr, ast.Literal):
            return BoundLiteral(expr.value, DataType.of_value(expr.value))
        if isinstance(expr, ast.Parameter):
            if self._param_vector is None:
                raise BindError(
                    "'?' placeholders require db.prepare() or an explicit "
                    "params= argument to execute()"
                )
            return BoundParam(self._param_vector, expr.index)
        if isinstance(expr, ast.ColumnRef):
            idx = schema.index_of(expr.key())
            col = schema[idx]
            return BoundColumn(idx, col.dtype, col.name)
        if isinstance(expr, ast.Star):
            raise BindError("'*' is only valid in the select list or COUNT(*)")
        if isinstance(expr, ast.Subquery):
            return self._bind_scalar_subquery(expr)
        if isinstance(expr, ast.ExistsExpr):
            return self._bind_exists(expr)
        if isinstance(expr, ast.FuncCall) and expr.name in AGGREGATE_FUNCS:
            raise BindError(
                f"aggregate {expr.name} is not allowed here (WHERE/JOIN/scalar context)"
            )
        return self._rebind_composite(expr, lambda e: self.bind_expr(e, schema))

    # -- subqueries (uncorrelated, folded at bind time) --------------------

    def _run_subquery(self, subquery: ast.Subquery):
        if self.subquery_executor is None:
            raise BindError("subqueries are not supported in this context")
        plan = self.bind_query(subquery.select)
        schema = plan.output_schema()
        if len(schema) != 1:
            raise BindError(
                f"subquery must return exactly one column, got {len(schema)}"
            )
        rows = self.subquery_executor(plan)
        return schema[0], [row[0] for row in rows]

    def _bind_scalar_subquery(self, subquery: ast.Subquery) -> BoundExpr:
        column, values = self._run_subquery(subquery)
        if len(values) > 1:
            from repro.core.errors import ExecutionError

            raise ExecutionError(
                f"scalar subquery returned {len(values)} rows (expected at most 1)"
            )
        value = values[0] if values else None
        dtype = column.dtype if value is not None else DataType.NULL
        return BoundLiteral(value, dtype)

    def _bind_exists(self, expr: ast.ExistsExpr) -> BoundExpr:
        """EXISTS folds to TRUE/FALSE: evaluate the (uncorrelated) subquery
        with LIMIT 1 semantics."""
        if self.subquery_executor is None:
            raise BindError("subqueries are not supported in this context")
        plan = self.bind_query(expr.subquery.select)
        plan = logical.Limit(plan, 1, 0)  # one row decides EXISTS
        rows = self.subquery_executor(plan)
        exists = bool(rows)
        if expr.negated:
            exists = not exists
        return BoundLiteral(exists, DataType.BOOLEAN)

    def _bind_in_subquery(self, expr: ast.InExpr, rewrite) -> BoundExpr:
        operand = rewrite(expr.operand)
        subquery = expr.values[0]
        column, values = self._run_subquery(subquery)
        comparable = (
            operand.dtype is DataType.NULL
            or column.dtype is DataType.NULL
            or (operand.dtype.is_numeric() and column.dtype.is_numeric())
            or operand.dtype == column.dtype
        )
        if not comparable:
            raise TypeMismatchError(
                f"IN subquery compares {operand.dtype.value} with {column.dtype.value}"
            )
        has_null = any(v is None for v in values)
        literals = frozenset(v for v in values if v is not None)
        return BoundInList(operand, literals, has_null, expr.negated)

    def _bind_in(self, expr: ast.InExpr, rewrite) -> BoundExpr:
        if len(expr.values) == 1 and isinstance(expr.values[0], ast.Subquery):
            return self._bind_in_subquery(expr, rewrite)
        operand = rewrite(expr.operand)
        literals = []
        non_literals = []
        has_null = False
        for value_ast in expr.values:
            bound = rewrite(value_ast)
            if isinstance(bound, BoundLiteral):
                if bound.value is None:
                    has_null = True
                else:
                    literals.append(bound.value)
            else:
                non_literals.append(bound)
        if not non_literals:
            return BoundInList(operand, frozenset(literals), has_null, expr.negated)
        # General IN: desugar to an OR chain of equalities.
        result: Optional[BoundExpr] = None
        for bound in [BoundLiteral(v, DataType.of_value(v)) for v in literals] + non_literals:
            eq = _make_binary("=", operand, bound)
            result = eq if result is None else BoundBinary("OR", result, eq, DataType.BOOLEAN)
        if has_null:
            null_lit = BoundLiteral(None, DataType.NULL)
            eq = _make_binary("=", operand, null_lit)
            result = BoundBinary("OR", result, eq, DataType.BOOLEAN)
        if expr.negated:
            return BoundUnary("NOT", result, DataType.BOOLEAN)
        return result

    # ------------------------------------------------------------------
    # DML binding helpers (used by the Database facade)
    # ------------------------------------------------------------------

    def bind_insert_rows(self, stmt: ast.InsertStmt) -> List[tuple]:
        """Evaluate an INSERT's literal rows into storage-ready tuples."""
        table = self.catalog.get_table(stmt.table)
        schema = table.schema
        if stmt.columns:
            positions = [schema.index_of(c) for c in stmt.columns]
        else:
            positions = list(range(len(schema)))
        rows = []
        empty = Schema([])
        for value_row in stmt.rows:
            if len(value_row) != len(positions):
                raise BindError(
                    f"INSERT row has {len(value_row)} values for {len(positions)} columns"
                )
            full: List[Any] = [None] * len(schema)
            for pos, value_ast in zip(positions, value_row):
                bound = self.bind_expr(value_ast, empty)
                if not is_constant(bound):
                    raise BindError("INSERT values must be constant expressions")
                full[pos] = bound.eval(())
            rows.append(tuple(full))
        return rows


# --------------------------------------------------------------------------
# Typing helpers shared with the optimizer
# --------------------------------------------------------------------------


def _make_binary(op: str, left: BoundExpr, right: BoundExpr) -> BoundExpr:
    lt, rt = left.dtype, right.dtype
    if op in ("AND", "OR"):
        for side, t in (("left", lt), ("right", rt)):
            if t not in (DataType.BOOLEAN, DataType.NULL):
                raise TypeMismatchError(f"{op} requires boolean operands, got {t.value}")
        return BoundBinary(op, left, right, DataType.BOOLEAN)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        comparable = (
            lt is DataType.NULL
            or rt is DataType.NULL
            or (lt.is_numeric() and rt.is_numeric())
            or lt == rt
        )
        if not comparable:
            raise TypeMismatchError(
                f"cannot compare {lt.value} with {rt.value} using {op}"
            )
        return BoundBinary(op, left, right, DataType.BOOLEAN)
    if op in ("+", "-", "*", "/", "%"):
        for t in (lt, rt):
            if not (t.is_numeric() or t is DataType.NULL):
                raise TypeMismatchError(f"operator {op} requires numeric operands")
        if op == "/":
            dtype = DataType.FLOAT if DataType.FLOAT in (lt, rt) else DataType.INTEGER
        else:
            dtype = common_numeric_type(lt, rt)
        return BoundBinary(op, left, right, dtype)
    if op == "||":
        return BoundBinary(op, left, right, DataType.TEXT)
    raise BindError(f"unknown operator {op!r}")


def _make_unary(op: str, operand: BoundExpr) -> BoundExpr:
    if op == "NOT":
        if operand.dtype not in (DataType.BOOLEAN, DataType.NULL):
            raise TypeMismatchError("NOT requires a boolean operand")
        return BoundUnary("NOT", operand, DataType.BOOLEAN)
    if op == "-":
        if not (operand.dtype.is_numeric() or operand.dtype is DataType.NULL):
            raise TypeMismatchError("unary minus requires a numeric operand")
        return BoundUnary("-", operand, operand.dtype)
    raise BindError(f"unknown unary operator {op!r}")


def _case_type(whens, else_result) -> DataType:
    candidates = [r.dtype for _, r in whens]
    if else_result is not None:
        candidates.append(else_result.dtype)
    non_null = [t for t in candidates if t is not DataType.NULL]
    if not non_null:
        return DataType.NULL
    first = non_null[0]
    for t in non_null[1:]:
        if t != first:
            if t.is_numeric() and first.is_numeric():
                first = DataType.FLOAT
            else:
                raise TypeMismatchError("CASE branches have incompatible types")
    return first


class _AggregateBuilder:
    """Deferred construction of an Aggregate (+ HAVING) plan fragment.

    ORDER BY binding may register additional aggregate specs through
    ``rewrite`` after the select list is bound; ``build`` snapshots the
    final spec list.
    """

    def __init__(
        self,
        input_plan: logical.LogicalPlan,
        group_bound: List[BoundExpr],
        agg_specs: List[AggSpec],
        group_names: List[str],
        having: Optional[BoundExpr],
        project_exprs: List[BoundExpr],
        names: List[str],
        rewrite,
    ):
        self.input_plan = input_plan
        self.group_bound = group_bound
        self.agg_specs = agg_specs
        self.group_names = group_names
        self.having = having
        self.project_exprs = project_exprs
        self.names = names
        self.rewrite = rewrite

    def build(self) -> logical.LogicalPlan:
        plan: logical.LogicalPlan = logical.Aggregate(
            self.input_plan,
            tuple(self.group_bound),
            tuple(self.agg_specs),
            tuple(self.group_names),
        )
        if self.having is not None:
            plan = logical.Filter(plan, self.having)
        return plan


def _require_boolean(expr: BoundExpr, context: str) -> None:
    if expr.dtype not in (DataType.BOOLEAN, DataType.NULL):
        raise TypeMismatchError(
            f"{context} requires a boolean expression, got {expr.dtype.value}"
        )


def _default_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return expr.name.lower()
    return expr.to_sql() if hasattr(expr, "to_sql") else "?column?"
