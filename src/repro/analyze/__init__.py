"""Static analysis: plan-invariant verification, SQL linting, ORM checks.

Three passes share one fact/rule framework (:mod:`repro.analyze.facts`):

* :mod:`repro.analyze.invariants` — typed invariants checked on the plan
  tree after binding and between every optimizer rewrite.  Enabled for the
  whole test suite via ``REPRO_VERIFY_PLANS=1`` and opt-in in production
  with ``Database(verify_plans=True)``.
* :mod:`repro.analyze.lint` — query linting before execution: non-sargable
  predicates, implicit cross joins, ``SELECT *``, mixed-type comparisons,
  and missing-index opportunities (statistics-aware when a catalog is
  available).
* :mod:`repro.analyze.orm_check` — static N+1 detection over Python source
  that uses :mod:`repro.orm` (lazy relationship access inside loops).
* :mod:`repro.analyze.concurrency` — the concurrency sanitizer: a
  precedence-graph serializability checker with anomaly classification, a
  dynamic lock-order-inversion analysis over recorded schedules
  (:mod:`repro.txn.trace`), and a static latch-coverage AST pass.

Command-line entry points: ``python -m repro lint <query|file|dir>``
(:mod:`repro.analyze.cli`) and ``python -m repro sanitize <trace|--fuzz>``
(:mod:`repro.analyze.sanitize_cli`).
"""

from repro.analyze.facts import (
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Finding,
    Rule,
    RuleRegistry,
    parse_suppressions,
)
from repro.analyze.invariants import (
    PlanInvariantViolation,
    PlanVerifier,
    check_logical_invariants,
    check_physical_invariants,
)
from repro.analyze.concurrency import (
    check_latch_coverage,
    check_lock_order,
    check_schedule,
)
from repro.analyze.lint import SqlLinter
from repro.analyze.orm_check import scan_python_source

__all__ = [
    "check_latch_coverage",
    "check_lock_order",
    "check_schedule",
    "ERROR",
    "INFO",
    "WARNING",
    "AnalysisReport",
    "Finding",
    "Rule",
    "RuleRegistry",
    "parse_suppressions",
    "PlanInvariantViolation",
    "PlanVerifier",
    "check_logical_invariants",
    "check_physical_invariants",
    "SqlLinter",
    "scan_python_source",
]
