"""Tests for the extendible hash index (repro.index.hashindex)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.index.hashindex import HashIndex


class TestBasics:
    def test_empty(self):
        index = HashIndex()
        assert len(index) == 0
        assert index.search("x") == []
        assert "x" not in index

    def test_insert_search(self):
        index = HashIndex()
        index.insert("a", 1)
        index.insert("b", 2)
        assert index.search("a") == [1]
        assert "a" in index

    def test_duplicates_accumulate(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.search("k") == [1, 2]
        assert len(index) == 2

    def test_unique_mode(self):
        index = HashIndex(unique=True)
        index.insert("k", 1)
        with pytest.raises(IndexError_, match="duplicate"):
            index.insert("k", 2)

    def test_bad_capacity(self):
        with pytest.raises(IndexError_):
            HashIndex(bucket_capacity=0)

    def test_mixed_key_types(self):
        index = HashIndex()
        index.insert(1, "int")
        index.insert("1", "str")
        index.insert((1, 2), "tuple")
        assert index.search(1) == ["int"]
        assert index.search("1") == ["str"]
        assert index.search((1, 2)) == ["tuple"]


class TestSplitting:
    def test_directory_doubles_under_load(self):
        index = HashIndex(bucket_capacity=2)
        for i in range(100):
            index.insert(i, i)
        assert index.global_depth > 1
        index.check_invariants()
        for i in range(100):
            assert index.search(i) == [i]

    def test_items_and_keys_cover_everything(self):
        index = HashIndex(bucket_capacity=2)
        for i in range(40):
            index.insert(i, i * 2)
        assert sorted(index.keys()) == list(range(40))
        assert sorted(index.items()) == [(i, i * 2) for i in range(40)]


class TestDelete:
    def test_delete_pair(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.delete("k", 1) == 1
        assert index.search("k") == [2]

    def test_delete_key(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.delete("k") == 2
        assert index.search("k") == []
        assert len(index) == 0

    def test_delete_missing(self):
        with pytest.raises(IndexError_):
            HashIndex().delete("nope")

    def test_delete_missing_pair(self):
        index = HashIndex()
        index.insert("k", 1)
        with pytest.raises(IndexError_):
            index.delete("k", 99)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=60)),
        max_size=300,
    )
)
def test_hash_matches_dict_model_property(ops):
    index = HashIndex(bucket_capacity=3)
    model = {}
    for i, (is_insert, key) in enumerate(ops):
        if is_insert or key not in model:
            index.insert(key, i)
            model.setdefault(key, []).append(i)
        else:
            index.delete(key)
            del model[key]
    index.check_invariants()
    assert sorted(index.keys()) == sorted(model)
    for key, values in model.items():
        assert index.search(key) == values
