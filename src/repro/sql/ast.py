"""Abstract syntax tree for the SQL dialect.

Nodes are plain dataclasses with a ``to_sql`` round-trip used by EXPLAIN
output and the parser tests (parse → print → parse must be a fixed point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int | float | str | bool | None | tuple (vector)

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, tuple):
            return "[" + ", ".join(repr(float(v)) for v in self.value) + "]"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def key(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # = != < <= > >= + - * / % AND OR ||
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # NOT | -
    operand: Expr

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"({self.op}{self.operand.to_sql()})"


@dataclass(frozen=True)
class Parameter(Expr):
    """A ``?`` placeholder; ``index`` is its zero-based position in the
    statement (left to right).  Only meaningful under ``db.prepare``."""

    index: int

    def to_sql(self) -> str:
        return "?"


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # upper-cased
    args: Tuple[Expr, ...] = ()
    distinct: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class InExpr(Expr):
    operand: Expr
    values: Tuple[Expr, ...]
    negated: bool = False

    def to_sql(self) -> str:
        vals = ", ".join(v.to_sql() for v in self.values)
        op = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {op} ({vals}))"


@dataclass(frozen=True)
class BetweenExpr(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.to_sql()} {op} {self.low.to_sql()} AND {self.high.to_sql()})"


@dataclass(frozen=True)
class LikeExpr(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql()} {op} {self.pattern.to_sql()})"


@dataclass(frozen=True)
class IsNullExpr(Expr):
    operand: Expr
    negated: bool = False

    def to_sql(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {op})"


@dataclass(frozen=True)
class Subquery(Expr):
    """A parenthesized SELECT used as a scalar value or IN source.

    Only uncorrelated subqueries are supported: the inner SELECT may not
    reference the outer query's columns (it is planned and evaluated once,
    at bind time).
    """

    select: "SelectStmt"

    def to_sql(self) -> str:
        return f"({self.select.to_sql()})"


@dataclass(frozen=True)
class ExistsExpr(Expr):
    """EXISTS (SELECT ...) — uncorrelated, folded to a boolean at bind time."""

    subquery: Subquery
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{op} {self.subquery.to_sql()}"


@dataclass(frozen=True)
class CaseExpr(Expr):
    whens: Tuple[Tuple[Expr, Expr], ...]
    else_result: Optional[Expr] = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond.to_sql()} THEN {result.to_sql()}")
        if self.else_result is not None:
            parts.append(f"ELSE {self.else_result.to_sql()}")
        parts.append("END")
        return " ".join(parts)


# --------------------------------------------------------------------------
# FROM clause
# --------------------------------------------------------------------------


class FromItem:
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class TableRef(FromItem):
    name: str
    alias: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join(FromItem):
    left: FromItem
    right: FromItem
    kind: str  # "inner" | "left" | "cross"
    condition: Optional[Expr] = None

    def to_sql(self) -> str:
        kw = {"inner": "JOIN", "left": "LEFT JOIN", "cross": "CROSS JOIN"}[self.kind]
        base = f"{self.left.to_sql()} {kw} {self.right.to_sql()}"
        if self.condition is not None:
            base += f" ON {self.condition.to_sql()}"
        return base


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


class Statement:
    """Base class for statements."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} AS {self.alias}" if self.alias else self.expr.to_sql()


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class SelectStmt(Statement):
    items: Tuple[SelectItem, ...]
    from_item: Optional[FromItem] = None
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(i.to_sql() for i in self.items))
        if self.from_item is not None:
            parts.append("FROM " + self.from_item.to_sql())
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass(frozen=True)
class SetOpStmt(Statement):
    """UNION / UNION ALL / INTERSECT / EXCEPT of two queries.

    ``left`` may itself be a SetOpStmt (left-associative chains).  A trailing
    ORDER BY / LIMIT in the source text applies to the whole compound and is
    stored here, never on the operand selects.
    """

    left: Statement  # SelectStmt | SetOpStmt
    op: str  # "union" | "intersect" | "except"
    all: bool
    right: "SelectStmt"
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None

    def to_sql(self) -> str:
        keyword = {"union": "UNION", "intersect": "INTERSECT", "except": "EXCEPT"}[self.op]
        if self.all:
            keyword += " ALL"
        base = f"{self.left.to_sql()} {keyword} {self.right.to_sql()}"
        if self.order_by:
            base += " ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
        if self.limit is not None:
            base += f" LIMIT {self.limit}"
        if self.offset is not None:
            base += f" OFFSET {self.offset}"
        return base


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False
    vector_width: int = 0

    def to_sql(self) -> str:
        base = f"{self.name} {self.type_name}"
        if self.vector_width:
            base += f"({self.vector_width})"
        if self.not_null:
            base += " NOT NULL"
        return base


@dataclass(frozen=True)
class CreateTableStmt(Statement):
    name: str
    columns: Tuple[ColumnDef, ...]

    def to_sql(self) -> str:
        cols = ", ".join(c.to_sql() for c in self.columns)
        return f"CREATE TABLE {self.name} ({cols})"


@dataclass(frozen=True)
class CreateIndexStmt(Statement):
    name: str
    table: str
    column: str
    unique: bool = False
    using: str = "btree"

    def to_sql(self) -> str:
        uq = "UNIQUE " if self.unique else ""
        return f"CREATE {uq}INDEX {self.name} ON {self.table} ({self.column}) USING {self.using}"


@dataclass(frozen=True)
class DropTableStmt(Statement):
    name: str

    def to_sql(self) -> str:
        return f"DROP TABLE {self.name}"


@dataclass(frozen=True)
class InsertStmt(Statement):
    table: str
    columns: Tuple[str, ...]  # empty = all columns in schema order
    rows: Tuple[Tuple[Expr, ...], ...]

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        rows = ", ".join(
            "(" + ", ".join(e.to_sql() for e in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass(frozen=True)
class UpdateStmt(Statement):
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None

    def to_sql(self) -> str:
        sets = ", ".join(f"{c} = {e.to_sql()}" for c, e in self.assignments)
        base = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            base += f" WHERE {self.where.to_sql()}"
        return base


@dataclass(frozen=True)
class DeleteStmt(Statement):
    table: str
    where: Optional[Expr] = None

    def to_sql(self) -> str:
        base = f"DELETE FROM {self.table}"
        if self.where is not None:
            base += f" WHERE {self.where.to_sql()}"
        return base


@dataclass(frozen=True)
class ExplainStmt(Statement):
    statement: Statement

    def to_sql(self) -> str:
        return f"EXPLAIN {self.statement.to_sql()}"


@dataclass(frozen=True)
class AnalyzeStmt(Statement):
    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"ANALYZE {self.table}" if self.table else "ANALYZE"


@dataclass(frozen=True)
class BeginStmt(Statement):
    def to_sql(self) -> str:
        return "BEGIN"


@dataclass(frozen=True)
class CommitStmt(Statement):
    def to_sql(self) -> str:
        return "COMMIT"


@dataclass(frozen=True)
class RollbackStmt(Statement):
    def to_sql(self) -> str:
        return "ROLLBACK"


def walk_expr(expr: Expr):
    """Depth-first pre-order traversal of an expression tree."""
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, InExpr):
        yield from walk_expr(expr.operand)
        for v in expr.values:
            yield from walk_expr(v)
    elif isinstance(expr, BetweenExpr):
        yield from walk_expr(expr.operand)
        yield from walk_expr(expr.low)
        yield from walk_expr(expr.high)
    elif isinstance(expr, LikeExpr):
        yield from walk_expr(expr.operand)
        yield from walk_expr(expr.pattern)
    elif isinstance(expr, IsNullExpr):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, CaseExpr):
        for cond, result in expr.whens:
            yield from walk_expr(cond)
            yield from walk_expr(result)
        if expr.else_result is not None:
            yield from walk_expr(expr.else_result)


def column_refs(expr: Expr) -> List[ColumnRef]:
    """All column references within an expression."""
    return [e for e in walk_expr(expr) if isinstance(e, ColumnRef)]
