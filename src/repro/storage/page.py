"""Slotted pages.

Layout of a page (``PAGE_SIZE`` bytes)::

    [ header | record data --> ... <-- slot directory ]

    header  := slot_count:uint16  free_ptr:uint16
    slot    := offset:uint16  length:uint16   (length 0 == tombstone)

Records are appended at ``free_ptr`` (which starts just after the header and
grows toward the end); the slot directory grows backwards from the end of the
page.  Deleting a record tombstones its slot; the space is reclaimed only by
:meth:`Page.compact` (called opportunistically by the heap file when an
insert would otherwise fail).
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.core.errors import PageFullError, StorageError

PAGE_SIZE = 8192

_HEADER = struct.Struct(">HH")
_SLOT = struct.Struct(">HH")
HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size

#: Largest record a page can hold (one record, one slot).
MAX_RECORD_SIZE = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE


class Page:
    """A mutable slotted page over a fixed-size bytearray."""

    __slots__ = ("page_id", "data", "pin_count", "dirty")

    def __init__(self, page_id: int, data: Optional[bytes] = None):
        self.page_id = page_id
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            self._write_header(0, HEADER_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise StorageError(
                    f"page data must be {PAGE_SIZE} bytes, got {len(data)}"
                )
            self.data = bytearray(data)
        self.pin_count = 0
        self.dirty = False

    # -- header/slot accessors -------------------------------------------------

    def _read_header(self) -> Tuple[int, int]:
        return _HEADER.unpack_from(self.data, 0)

    def _write_header(self, slot_count: int, free_ptr: int) -> None:
        _HEADER.pack_into(self.data, 0, slot_count, free_ptr)

    @property
    def slot_count(self) -> int:
        return self._read_header()[0]

    def _slot_pos(self, slot: int) -> int:
        return PAGE_SIZE - (slot + 1) * SLOT_SIZE

    def _read_slot(self, slot: int) -> Tuple[int, int]:
        return _SLOT.unpack_from(self.data, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, self._slot_pos(slot), offset, length)

    # -- space accounting ------------------------------------------------------

    def free_space(self) -> int:
        """Bytes available for a new record *including* its new slot."""
        slot_count, free_ptr = self._read_header()
        directory_start = PAGE_SIZE - slot_count * SLOT_SIZE
        return directory_start - free_ptr

    def can_fit(self, record_size: int) -> bool:
        return self.free_space() >= record_size + SLOT_SIZE

    def live_bytes(self) -> int:
        """Total payload bytes of non-deleted records."""
        return sum(length for _, length in self._iter_slots() if length > 0)

    def _iter_slots(self) -> Iterator[Tuple[int, int]]:
        for slot in range(self.slot_count):
            yield self._read_slot(slot)

    # -- record operations -----------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert a record; returns its slot number.

        Raises :class:`PageFullError` when the record (plus a slot entry)
        does not fit in the current free region.
        """
        if len(record) > MAX_RECORD_SIZE:
            raise PageFullError(
                f"record of {len(record)} bytes exceeds max {MAX_RECORD_SIZE}"
            )
        if not self.can_fit(len(record)):
            raise PageFullError(
                f"page {self.page_id} cannot fit {len(record)} bytes "
                f"(free={self.free_space()})"
            )
        slot_count, free_ptr = self._read_header()
        self.data[free_ptr : free_ptr + len(record)] = record
        self._write_slot(slot_count, free_ptr, len(record))
        self._write_header(slot_count + 1, free_ptr + len(record))
        self.dirty = True
        return slot_count

    def read(self, slot: int) -> Optional[bytes]:
        """Return record bytes, or ``None`` if the slot is a tombstone."""
        if slot < 0 or slot >= self.slot_count:
            raise StorageError(f"slot {slot} out of range on page {self.page_id}")
        offset, length = self._read_slot(slot)
        if length == 0:
            return None
        return bytes(self.data[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone a slot.  Idempotent."""
        if slot < 0 or slot >= self.slot_count:
            raise StorageError(f"slot {slot} out of range on page {self.page_id}")
        self._write_slot(slot, 0, 0)
        self.dirty = True

    def update(self, slot: int, record: bytes) -> bool:
        """Update a record in place.

        Returns ``True`` on success.  Returns ``False`` when the new payload
        does not fit (in place or in the free region); the caller should then
        delete + reinsert elsewhere.
        """
        if slot < 0 or slot >= self.slot_count:
            raise StorageError(f"slot {slot} out of range on page {self.page_id}")
        offset, length = self._read_slot(slot)
        if length == 0:
            raise StorageError(f"slot {slot} on page {self.page_id} is deleted")
        if len(record) <= length:
            self.data[offset : offset + len(record)] = record
            self._write_slot(slot, offset, len(record))
            self.dirty = True
            return True
        if self.can_fit(len(record)) is False:
            return False
        # Append the new payload to the free region, keep the same slot id.
        slot_count, free_ptr = self._read_header()
        self.data[free_ptr : free_ptr + len(record)] = record
        self._write_slot(slot, free_ptr, len(record))
        self._write_header(slot_count, free_ptr + len(record))
        self.dirty = True
        return True

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield (slot, record_bytes) for all live records."""
        for slot in range(self.slot_count):
            offset, length = self._read_slot(slot)
            if length > 0:
                yield slot, bytes(self.data[offset : offset + length])

    def compact(self) -> List[Tuple[int, int]]:
        """Rewrite live records contiguously, dropping dead space.

        Slot numbers are preserved (record ids stay stable).  Returns the
        surviving ``(slot, length)`` pairs, mostly for tests.
        """
        live = [(slot, self.read(slot)) for slot in range(self.slot_count)]
        fresh = bytearray(PAGE_SIZE)
        free_ptr = HEADER_SIZE
        survivors: List[Tuple[int, int]] = []
        slot_count = self.slot_count
        for slot, payload in live:
            pos = PAGE_SIZE - (slot + 1) * SLOT_SIZE
            if payload is None:
                _SLOT.pack_into(fresh, pos, 0, 0)
                continue
            fresh[free_ptr : free_ptr + len(payload)] = payload
            _SLOT.pack_into(fresh, pos, free_ptr, len(payload))
            survivors.append((slot, len(payload)))
            free_ptr += len(payload)
        _HEADER.pack_into(fresh, 0, slot_count, free_ptr)
        self.data = fresh
        self.dirty = True
        return survivors

    def to_bytes(self) -> bytes:
        return bytes(self.data)
