"""``python -m repro lint`` / ``asynccheck`` / ``racecheck`` / ``check``
— the static-analysis CLIs over the shared Finding framework.

``lint`` targets:

* a ``.sql`` file — statements are split and linted in order; DDL/DML and
  ``ANALYZE`` are *executed* into a scratch in-memory database so the
  catalog-aware rules (sargability, missing indexes, type coercion) see
  real schemas, indexes, and statistics;
* a ``.py`` file — scanned by the static ORM N+1 detector;
* a directory — every ``.sql`` and ``.py`` file under it (relationship
  declarations are unioned across the directory before the ORM scan);
* anything else — treated as a literal SQL query and linted without a
  catalog.

``asynccheck`` and ``racecheck`` targets are ``.py`` files or
directories: one whole-program call graph is built per invocation and the
async-safety rules (:mod:`repro.analyze.asyncsafe`) or race-detection
rules (:mod:`repro.analyze.racecheck`) run over it.  ``check`` is the
umbrella: lint + asynccheck + racecheck over a single shared graph build
(:mod:`repro.analyze.check`), findings merged and tagged per tool.

Every analyzer subcommand (``lint``, ``sanitize``, ``asynccheck``,
``racecheck``, ``check``) shares one contract: findings print as
``path:line: [rule] severity: message`` (or a JSON document with
``--format json``), a summary goes to stderr, and the exit status is
0 clean / 1 findings / 2 usage error.  In-source suppressions
(``-- lint: allow(rule)`` for SQL, ``# lint: allow(rule)``,
``# asyncsafe: allow(rule)``, and ``# racecheck: allow(rule)`` for
Python) silence individual lines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Set, Tuple

from repro.analyze.facts import (
    ERROR,
    AnalysisReport,
    Finding,
    apply_suppressions,
    parse_suppressions,
)
from repro.analyze.lint import SqlLinter
from repro.analyze.orm_check import collect_relationships, scan_python_file
from repro.core.errors import ReproError
from repro.sql import ast
from repro.sql.parser import parse

USAGE = (
    "usage: python -m repro lint [--format json|text] "
    "<query | file.sql | file.py | directory> ..."
)

#: Shared analyzer exit codes (lint, sanitize, asynccheck all honor these).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

FORMATS = ("text", "json")


def extract_format_flag(args: List[str]) -> Tuple[Optional[str], List[str]]:
    """Pop ``--format X`` / ``--format=X`` out of a raw argv list.

    Returns ``(format, remaining_args)``; format is None on a bad value so
    hand-rolled CLIs (lint takes literal SQL positionals, so it cannot use
    argparse) can exit with the shared usage code.
    """
    remaining: List[str] = []
    fmt = "text"
    iterator = iter(args)
    for arg in iterator:
        if arg == "--format":
            fmt = next(iterator, "")
        elif arg.startswith("--format="):
            fmt = arg.split("=", 1)[1]
        else:
            remaining.append(arg)
    if fmt not in FORMATS:
        return None, remaining
    return fmt, remaining


def emit_report(report: AnalysisReport, fmt: str = "text") -> int:
    """Print findings in the shared format and return the shared exit code.

    ``text``: one ``path:line: [rule] severity: message`` line per finding
    on stdout, human summary on stderr.  ``json``: a single document on
    stdout — ``{"count": N, "clean": bool, "findings": [...]}`` — with the
    same stderr summary, so scripts can pipe stdout without losing it.
    """
    try:
        if fmt == "json":
            payload = {
                "count": len(report),
                "clean": not report,
                "findings": [
                    {
                        "source": f.source,
                        "line": f.line,
                        "rule": f.rule,
                        "severity": f.severity,
                        "message": f.message,
                    }
                    for f in report.sorted()
                ],
            }
            print(json.dumps(payload, indent=2))
        else:
            output = report.format()
            if output:
                print(output)
        print(
            f"{len(report)} finding(s)" if report else "clean: no findings",
            file=sys.stderr,
        )
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    return EXIT_FINDINGS if report else EXIT_CLEAN

#: Statement types executed into the scratch database (building the catalog
#: the statistics-aware rules read); everything else is lint-only.
_EXECUTABLE = (
    ast.CreateTableStmt,
    ast.CreateIndexStmt,
    ast.DropTableStmt,
    ast.InsertStmt,
    ast.UpdateStmt,
    ast.DeleteStmt,
    ast.AnalyzeStmt,
)


def split_sql_statements(text: str) -> List[Tuple[int, str]]:
    """Split a script into ``(start_line, statement_text)`` pairs.

    Tracks single-quoted strings (with ``''`` escapes) and ``--`` line
    comments so semicolons inside them don't split.  ``start_line`` is the
    first line of the statement with actual SQL on it (comment-only and
    blank prefixes don't count), and chunks containing only comments are
    dropped.
    """
    statements: List[Tuple[int, str]] = []
    buf: List[str] = []
    line = 1
    sql_line: Optional[int] = None  # first line with significant SQL
    in_string = False
    in_comment = False

    def flush() -> None:
        nonlocal buf, sql_line
        statement = "".join(buf).strip()
        if statement and sql_line is not None:
            statements.append((sql_line, statement))
        buf = []
        sql_line = None

    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\n":
            line += 1
            in_comment = False
            buf.append(ch)
        elif in_comment:
            buf.append(ch)
        elif in_string:
            buf.append(ch)
            if ch == "'":
                if i + 1 < len(text) and text[i + 1] == "'":
                    buf.append("'")
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            buf.append(ch)
            if sql_line is None:
                sql_line = line
        elif ch == "-" and text[i : i + 2] == "--":
            in_comment = True
            buf.append(ch)
        elif ch == ";":
            flush()
        else:
            if sql_line is None and not ch.isspace():
                sql_line = line
            buf.append(ch)
        i += 1
    flush()
    return statements


def lint_sql_text(
    text: str, source: str = "<query>", use_scratch_db: bool = True
) -> AnalysisReport:
    """Lint a SQL script (possibly many statements), catalog-aware."""
    db = None
    if use_scratch_db:
        from repro.core.database import Database

        db = Database()
    linter = SqlLinter(catalog=db.catalog if db is not None else None)
    report = AnalysisReport()
    for start_line, statement_text in split_sql_statements(text):
        try:
            stmt = parse(statement_text)
        except ReproError as exc:
            report.extend(
                [Finding("sql-parse", ERROR, str(exc), source, start_line)]
            )
            continue
        report.extend(linter.lint_statement(stmt, source, start_line))
        if db is not None and isinstance(stmt, _EXECUTABLE):
            try:
                db.execute(statement_text)
            except ReproError as exc:
                report.extend(
                    [Finding("sql-exec", ERROR, str(exc), source, start_line)]
                )
    return report


def _lint_sql_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    report = lint_sql_text(text, source=path)
    return apply_suppressions(report.findings, _sql_suppressions(text))


def _sql_suppressions(text: str):
    """SQL uses ``-- lint: allow(rule)``; reuse the shared parser by
    normalizing the comment leader."""
    return parse_suppressions(text.replace("-- lint:", "# lint:").replace("--lint:", "# lint:"))


def _lint_python_file(path: str, extra_relationships: Optional[Set[str]] = None) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    findings = scan_python_file(path, extra_relationships)
    return apply_suppressions(findings, parse_suppressions(text))


def _collect_directory_relationships(py_files: List[str]) -> Set[str]:
    import ast as pyast

    names: Set[str] = set()
    for path in py_files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                names |= collect_relationships(pyast.parse(handle.read()))
        except (OSError, SyntaxError):
            continue
    return names


def _lint_directory(path: str) -> List[Finding]:
    sql_files: List[str] = []
    py_files: List[str] = []
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
        for name in sorted(filenames):
            full = os.path.join(dirpath, name)
            if name.endswith(".sql"):
                sql_files.append(full)
            elif name.endswith(".py"):
                py_files.append(full)
    relationships = _collect_directory_relationships(py_files)
    findings: List[Finding] = []
    for sql_file in sql_files:
        findings.extend(_lint_sql_file(sql_file))
    for py_file in py_files:
        findings.extend(_lint_python_file(py_file, relationships))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or "-h" in args or "--help" in args:
        print(USAGE, file=sys.stderr)
        return EXIT_CLEAN if args else EXIT_USAGE
    fmt, args = extract_format_flag(args)
    if fmt is None:
        print(USAGE, file=sys.stderr)
        return EXIT_USAGE
    if not args:
        print(USAGE, file=sys.stderr)
        return EXIT_USAGE
    findings: List[Finding] = []
    for target in args:
        if os.path.isdir(target):
            findings.extend(_lint_directory(target))
        elif os.path.isfile(target):
            if target.endswith(".py"):
                findings.extend(_lint_python_file(target))
            else:
                findings.extend(_lint_sql_file(target))
        elif target.endswith((".sql", ".py")) or os.path.sep in target:
            print(f"error: no such file or directory: {target}", file=sys.stderr)
            return EXIT_USAGE
        else:
            report = lint_sql_text(target, use_scratch_db=False)
            findings.extend(report.findings)
    return emit_report(AnalysisReport(findings), fmt)


def asynccheck_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro asynccheck <file.py | directory> ...``"""
    parser = argparse.ArgumentParser(
        prog="python -m repro asynccheck",
        description="Whole-program async-safety analysis: event-loop "
        "blocking, locks held across await, missing awaits, task leaks.",
    )
    parser.add_argument(
        "paths", nargs="*", help="Python files or directories to analyze"
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", help="output format"
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all four)",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="ignore '# asyncsafe: allow(...)' comments (audit mode)",
    )
    try:
        args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return EXIT_CLEAN if exc.code in (0, None) else EXIT_USAGE
    if not args.paths:
        parser.print_usage(sys.stderr)
        return EXIT_USAGE
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return EXIT_USAGE

    from repro.analyze.asyncsafe import analyze_paths, default_registry

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = set(default_registry().rule_ids())
        unknown = [r for r in rules if r not in known]
        if unknown:
            print(
                f"error: unknown rule(s) {unknown}; known: {sorted(known)}",
                file=sys.stderr,
            )
            return EXIT_USAGE
    report = analyze_paths(
        args.paths, rules=rules, suppress=not args.no_suppress
    )
    return emit_report(report, args.format)


def racecheck_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro racecheck <file.py | directory> ...``"""
    parser = argparse.ArgumentParser(
        prog="python -m repro racecheck",
        description="Whole-program static race detection: unlocked shared "
        "writes, inconsistent locksets, ABBA lock orders, and locals "
        "escaping across thread boundaries.",
    )
    parser.add_argument(
        "paths", nargs="*", help="Python files or directories to analyze"
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", help="output format"
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all four)",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="ignore '# racecheck: allow(...)' comments (audit mode)",
    )
    try:
        args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return EXIT_CLEAN if exc.code in (0, None) else EXIT_USAGE
    if not args.paths:
        parser.print_usage(sys.stderr)
        return EXIT_USAGE
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return EXIT_USAGE

    from repro.analyze.racecheck import analyze_paths, default_registry

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = set(default_registry().rule_ids())
        unknown = [r for r in rules if r not in known]
        if unknown:
            print(
                f"error: unknown rule(s) {unknown}; known: {sorted(known)}",
                file=sys.stderr,
            )
            return EXIT_USAGE
    report = analyze_paths(
        args.paths, rules=rules, suppress=not args.no_suppress
    )
    return emit_report(report, args.format)


def check_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro check <file.py | directory> ...``

    Umbrella: lint + asynccheck + racecheck over one shared call-graph
    build, merged findings, shared exit-code contract (the worst outcome
    of the constituent tools wins: any finding → 1, usage error → 2).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Run every static analyzer (lint, asynccheck, "
        "racecheck) in one pass over a shared call graph.",
    )
    parser.add_argument(
        "paths", nargs="*", help="Python files or directories to analyze"
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", help="output format"
    )
    parser.add_argument(
        "--tools",
        default=None,
        help="comma-separated subset of lint,asynccheck,racecheck",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="ignore in-source allow() comments (audit mode)",
    )
    try:
        args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    except SystemExit as exc:
        return EXIT_CLEAN if exc.code in (0, None) else EXIT_USAGE
    if not args.paths:
        parser.print_usage(sys.stderr)
        return EXIT_USAGE
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return EXIT_USAGE

    from repro.analyze.check import ALL_TOOLS, run_check

    tools: List[str] = list(ALL_TOOLS)
    if args.tools:
        tools = [t.strip() for t in args.tools.split(",") if t.strip()]
        unknown = [t for t in tools if t not in ALL_TOOLS]
        if unknown:
            print(
                f"error: unknown tool(s) {unknown}; known: {list(ALL_TOOLS)}",
                file=sys.stderr,
            )
            return EXIT_USAGE
    result = run_check(args.paths, tools=tools, suppress=not args.no_suppress)
    try:
        if args.format == "json":
            payload = {
                "count": len(result.report),
                "clean": not result.report,
                "tools": result.tool_counts,
                "findings": [
                    {
                        "tool": tool,
                        "source": f.source,
                        "line": f.line,
                        "rule": f.rule,
                        "severity": f.severity,
                        "message": f.message,
                    }
                    for tool, f in result.tagged
                ],
            }
            print(json.dumps(payload, indent=2))
        else:
            output = result.report.format()
            if output:
                print(output)
        per_tool = ", ".join(
            f"{tool}: {result.tool_counts.get(tool, 0)}" for tool in tools
        )
        print(
            (
                f"{len(result.report)} finding(s) ({per_tool})"
                if result.report
                else f"clean: no findings ({per_tool})"
            ),
            file=sys.stderr,
        )
    except BrokenPipeError:
        pass
    return EXIT_FINDINGS if result.report else EXIT_CLEAN
