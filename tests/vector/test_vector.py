"""Tests for vector indexes (repro.vector)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.vector.flat import FlatIndex
from repro.vector.ivf import IVFIndex, kmeans
from repro.vector.metrics import cosine_distance, dot_distance, l2_distance


class TestMetrics:
    def test_l2(self):
        assert l2_distance([0, 0], [3, 4]) == pytest.approx(5.0)
        assert l2_distance([1, 1], [1, 1]) == 0.0

    def test_dot_is_negated(self):
        assert dot_distance([1, 2], [3, 4]) == -11.0

    def test_cosine(self):
        assert cosine_distance([1, 0], [1, 0]) == pytest.approx(0.0)
        assert cosine_distance([1, 0], [0, 1]) == pytest.approx(1.0)
        assert cosine_distance([1, 0], [-1, 0]) == pytest.approx(2.0)

    def test_cosine_zero_vector(self):
        assert cosine_distance([0, 0], [1, 0]) == 1.0

    def test_cosine_scale_invariant(self):
        a, b = [1.0, 2.0, 3.0], [4.0, 5.0, 6.0]
        assert cosine_distance(a, b) == pytest.approx(
            cosine_distance([10 * x for x in a], b)
        )


class TestFlatIndex:
    def make(self, n=50, dim=4, metric="l2", seed=0):
        rng = np.random.default_rng(seed)
        index = FlatIndex(dim, metric=metric)
        vectors = rng.normal(size=(n, dim))
        for i, vec in enumerate(vectors):
            index.add(i, vec)
        return index, vectors

    def test_exact_nearest(self):
        index, vectors = self.make()
        for probe in (0, 13, 49):
            assert index.search(vectors[probe], 1)[0][0] == probe

    def test_matches_numpy_brute_force(self):
        index, vectors = self.make(n=80)
        rng = np.random.default_rng(1)
        query = rng.normal(size=4)
        got = [key for key, _ in index.search(query, 10)]
        truth = np.argsort(np.linalg.norm(vectors - query, axis=1))[:10].tolist()
        assert got == truth

    def test_distances_ascending(self):
        index, vectors = self.make()
        result = index.search(vectors[0], 10)
        distances = [d for _, d in result]
        assert distances == sorted(distances)

    def test_k_larger_than_index(self):
        index, _ = self.make(n=5)
        assert len(index.search(np.zeros(4), 100)) == 5

    def test_duplicate_key_rejected(self):
        index, _ = self.make(n=3)
        with pytest.raises(IndexError_, match="duplicate"):
            index.add(0, np.zeros(4))

    def test_dimension_checked(self):
        index = FlatIndex(4)
        with pytest.raises(IndexError_):
            index.add("x", [1.0, 2.0])
        index.add("x", [1.0, 2.0, 3.0, 4.0])
        with pytest.raises(IndexError_):
            index.search([1.0], 1)

    def test_remove(self):
        index, vectors = self.make()
        index.remove(0)
        assert 0 not in index
        assert len(index) == 49
        assert index.search(vectors[0], 1)[0][0] != 0

    def test_remove_missing(self):
        index, _ = self.make(n=2)
        with pytest.raises(IndexError_):
            index.remove(99)

    def test_growth_beyond_initial_capacity(self):
        index = FlatIndex(2, initial_capacity=2)
        for i in range(100):
            index.add(i, [float(i), 0.0])
        assert len(index) == 100
        assert index.search([50.0, 0.0], 1)[0][0] == 50

    def test_empty_search(self):
        assert FlatIndex(3).search([0, 0, 0], 5) == []

    def test_get(self):
        index, vectors = self.make()
        assert np.allclose(index.get(7), vectors[7])
        assert index.get("missing") is None

    def test_cosine_metric_ranking(self):
        index = FlatIndex(2, metric="cosine")
        index.add("east", [1.0, 0.0])
        index.add("north", [0.0, 1.0])
        index.add("west", [-1.0, 0.0])
        ranked = [k for k, _ in index.search([0.9, 0.1], 3)]
        assert ranked == ["east", "north", "west"]


class TestKMeans:
    def test_clusters_separate_obvious_groups(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=0.0, scale=0.1, size=(30, 2))
        b = rng.normal(loc=10.0, scale=0.1, size=(30, 2))
        points = np.vstack([a, b])
        centroids, assignments = kmeans(points, 2, seed=1)
        assert len(set(assignments[:30])) == 1
        assert len(set(assignments[30:])) == 1
        assert assignments[0] != assignments[30]

    def test_deterministic_for_seed(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(50, 3))
        c1, a1 = kmeans(points, 4, seed=9)
        c2, a2 = kmeans(points, 4, seed=9)
        assert np.array_equal(c1, c2)
        assert np.array_equal(a1, a2)

    def test_more_clusters_than_points(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        centroids, assignments = kmeans(points, 10)
        assert len(centroids) == 2

    def test_empty_rejected(self):
        with pytest.raises(IndexError_):
            kmeans(np.empty((0, 2)), 2)


class TestIVFIndex:
    def build(self, n=300, dim=8, nlist=16, seed=0):
        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(n, dim))
        index = IVFIndex(dim, nlist=nlist, nprobe=4, seed=seed)
        index.build(list(enumerate(vectors)))
        return index, vectors

    def test_untrained_search_rejected(self):
        index = IVFIndex(4)
        index.add("x", [0, 0, 0, 0])
        with pytest.raises(IndexError_, match="not trained"):
            index.search([0, 0, 0, 0], 1)

    def test_full_probe_is_exact(self):
        index, vectors = self.build(nlist=8)
        flat = FlatIndex(8)
        for i, vec in enumerate(vectors):
            flat.add(i, vec)
        query = vectors[5] + 0.01
        exact = [k for k, _ in flat.search(query, 10)]
        approx = [k for k, _ in index.search(query, 10, nprobe=8)]
        assert approx == exact

    def test_recall_improves_with_nprobe(self):
        index, vectors = self.build(n=500, nlist=25)
        flat = FlatIndex(8)
        for i, vec in enumerate(vectors):
            flat.add(i, vec)
        rng = np.random.default_rng(42)
        recalls = {}
        for nprobe in (1, 5, 25):
            total = 0.0
            for _ in range(20):
                query = rng.normal(size=8)
                truth = {k for k, _ in flat.search(query, 10)}
                got = {k for k, _ in index.search(query, 10, nprobe=nprobe)}
                total += len(truth & got) / 10
            recalls[nprobe] = total / 20
        assert recalls[1] <= recalls[5] <= recalls[25]
        assert recalls[25] == pytest.approx(1.0)

    def test_scanned_fraction_grows_with_nprobe(self):
        index, _ = self.build()
        assert index.scanned_fraction(1) < index.scanned_fraction(8) <= 1.0

    def test_add_after_training(self):
        index, _ = self.build(n=50, nlist=4)
        index.add("new", np.zeros(8))
        assert "new" in [k for k, _ in index.search(np.zeros(8), 1)]

    def test_remove(self):
        index, vectors = self.build(n=50, nlist=4)
        index.remove(0)
        assert len(index) == 49
        assert 0 not in [k for k, _ in index.search(vectors[0], 5)]

    def test_duplicate_key_rejected(self):
        index, _ = self.build(n=10, nlist=2)
        with pytest.raises(IndexError_):
            index.add(3, np.zeros(8))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(5, 60))
def test_flat_top1_self_query_property(seed, n):
    """Querying with an indexed vector always returns it first (L2)."""
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, 3))
    index = FlatIndex(3)
    for i, vec in enumerate(vectors):
        index.add(i, vec)
    probe = int(rng.integers(n))
    key, distance = index.search(vectors[probe], 1)[0]
    assert distance == pytest.approx(0.0, abs=1e-9)
    assert np.allclose(index.get(key), vectors[probe])
