"""Client-vs-embedded differential suite.

The PR 2 oracle proved the embedded engine against sqlite3.  This suite
closes the second gap: the *network path* — codec, framing, session state,
transaction gating — must be invisible.  Every seeded SQL sequence from
``tests.differential.sequences`` replays through the sync client and the
asyncio client against a served database, in lockstep with a fresh
embedded :class:`~repro.core.database.Database`; every statement must
produce the identical result multiset and rowcount, and every failing
statement the identical error class.

With the oracle suite this composes transitively:
``wire clients == embedded engine == sqlite3``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.database import Database
from repro.core.errors import ReproError
from repro.net import ServerThread, aconnect, connect

from tests.differential.sequences import canon, num_sequences, sequence

SCHEMA = "CREATE TABLE t (id INTEGER, name TEXT, val FLOAT)"


@pytest.fixture(scope="module")
def diff_server():
    with ServerThread() as srv:
        yield srv


def _reset(execute) -> None:
    try:
        execute("DROP TABLE t")
    except ReproError:
        pass
    execute(SCHEMA)


def _compare_step(seed: int, step: int, sql: str, ours, theirs) -> None:
    o_err = ours if isinstance(ours, BaseException) else None
    t_err = theirs if isinstance(theirs, BaseException) else None
    if o_err is not None or t_err is not None:
        assert type(o_err) is type(t_err), (
            f"error divergence at seed={seed} step={step}: {sql!r}\n"
            f"  wire:     {type(o_err).__name__ if o_err else 'no error'}: {o_err}\n"
            f"  embedded: {type(t_err).__name__ if t_err else 'no error'}: {t_err}"
        )
        return
    assert ours.columns == theirs.columns, f"seed={seed} step={step}: {sql!r}"
    assert ours.rowcount == theirs.rowcount, f"seed={seed} step={step}: {sql!r}"
    assert canon(ours.rows) == canon(theirs.rows), (
        f"row divergence at seed={seed} step={step}: {sql!r}\n"
        f"  wire:     {canon(ours.rows)[:10]}\n"
        f"  embedded: {canon(theirs.rows)[:10]}"
    )


def _embedded_for(seed: int) -> Database:
    db = Database()
    db.execute(SCHEMA)
    return db


def _run(fn, *args):
    """Call; capture a ReproError as a value instead of raising."""
    try:
        return fn(*args)
    except ReproError as exc:
        return exc


def _replay_sync(srv: ServerThread, seed: int) -> None:
    embedded = _embedded_for(seed)
    with connect(port=srv.port) as conn:
        _reset(conn.execute)
        for step, sql in enumerate(sequence(seed)):
            ours = _run(conn.execute, sql)
            theirs = _run(embedded.execute, sql)
            _compare_step(seed, step, sql, ours, theirs)
        final_ours = conn.execute("SELECT id, name, val FROM t")
        final_theirs = embedded.execute("SELECT id, name, val FROM t")
        assert canon(final_ours.rows) == canon(final_theirs.rows), (
            f"final state diverged at seed={seed}"
        )
    embedded.close()


def _replay_async(srv: ServerThread, seed: int) -> None:
    async def scenario():
        embedded = _embedded_for(seed)
        conn = await aconnect(port=srv.port)
        try:

            async def wire(sql):
                try:
                    return await conn.execute(sql)
                except ReproError as exc:
                    return exc

            try:
                await conn.execute("DROP TABLE t")
            except ReproError:
                pass
            await conn.execute(SCHEMA)
            for step, sql in enumerate(sequence(seed)):
                ours = await wire(sql)
                theirs = _run(embedded.execute, sql)
                _compare_step(seed, step, sql, ours, theirs)
            final_ours = await conn.execute("SELECT id, name, val FROM t")
            final_theirs = embedded.execute("SELECT id, name, val FROM t")
            assert canon(final_ours.rows) == canon(final_theirs.rows), (
                f"final state diverged at seed={seed}"
            )
        finally:
            await conn.close()
            embedded.close()

    asyncio.run(scenario())


@pytest.mark.parametrize("seed", range(num_sequences()))
def test_sync_client_matches_embedded(diff_server, seed):
    _replay_sync(diff_server, seed)


@pytest.mark.parametrize("seed", range(num_sequences()))
def test_async_client_matches_embedded(diff_server, seed):
    _replay_async(diff_server, seed)


# -- error-class parity ------------------------------------------------------
#
# The random sequences are all-valid by construction, so the error paths
# get their own deterministic corpus: each statement must fail with the
# *same exception class* through the wire as it does embedded.

ERROR_STATEMENTS = [
    "SELECT id FROM missing_table",
    "SELEKT garbage",
    "INSERT INTO t VALUES (1)",  # wrong arity for the 3-column schema
    "COMMIT",  # no open transaction
    "ROLLBACK",
    "CREATE TABLE t (id INTEGER, name TEXT, val FLOAT)",  # already exists
    "SELECT nosuchcol FROM t",
    "DROP TABLE missing_table",
]


def test_error_class_parity_sync(diff_server):
    embedded = Database()
    embedded.execute(SCHEMA)
    with connect(port=diff_server.port) as conn:
        _reset(conn.execute)
        for sql in ERROR_STATEMENTS:
            ours = _run(conn.execute, sql)
            theirs = _run(embedded.execute, sql)
            assert isinstance(theirs, ReproError), f"corpus statement passed: {sql!r}"
            assert type(ours) is type(theirs), (
                f"{sql!r}: wire raised {type(ours).__name__}, "
                f"embedded raised {type(theirs).__name__}"
            )
            assert str(ours) == str(theirs), sql
    embedded.close()


def test_error_class_parity_async(diff_server):
    async def scenario():
        embedded = Database()
        embedded.execute(SCHEMA)
        conn = await aconnect(port=diff_server.port)
        try:
            try:
                await conn.execute("DROP TABLE t")
            except ReproError:
                pass
            await conn.execute(SCHEMA)
            for sql in ERROR_STATEMENTS:
                try:
                    ours = await conn.execute(sql)
                except ReproError as exc:
                    ours = exc
                theirs = _run(embedded.execute, sql)
                assert type(ours) is type(theirs), sql
        finally:
            await conn.close()
            embedded.close()

    asyncio.run(scenario())


def test_prepared_path_matches_embedded(diff_server):
    """The PARSE/EXECUTE path agrees with embedded prepare/execute."""
    embedded = Database()
    embedded.execute(SCHEMA)
    with connect(port=diff_server.port) as conn:
        _reset(conn.execute)
        wire_ins = conn.prepare("INSERT INTO t VALUES (?, ?, ?)")
        emb_ins = embedded.prepare("INSERT INTO t VALUES (?, ?, ?)")
        for i in range(25):
            row = (i % 7, f"n{i % 5}", i + 0.5)
            wire_ins.execute(row)
            emb_ins.execute(row)
        wire_sel = conn.prepare("SELECT name, val FROM t WHERE id >= $1 AND val < $2")
        emb_sel = embedded.prepare("SELECT name, val FROM t WHERE id >= ? AND val < ?")
        for args in [(0, 100.0), (3, 10.5), (6, 0.0)]:
            assert canon(wire_sel.execute(args).rows) == canon(
                emb_sel.execute(args).rows
            ), args
    embedded.close()
