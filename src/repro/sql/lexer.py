"""SQL tokenizer.

Produces a flat list of :class:`Token` with character positions so the
parser can report precise error locations.  Keywords are case-insensitive;
identifiers preserve case but compare case-insensitively downstream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List

from repro.core.errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "ASC", "DESC", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL",
    "LIKE", "BETWEEN", "DISTINCT", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER",
    "CROSS", "ON", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "TABLE", "INDEX", "UNIQUE", "DROP", "PRIMARY", "KEY",
    "EXPLAIN", "ANALYZE", "TRUE", "FALSE", "CASE", "WHEN", "THEN", "ELSE",
    "UNION", "ALL", "INTERSECT", "EXCEPT", "EXISTS",
    "END", "BEGIN", "COMMIT", "ROLLBACK", "USING", "VECTOR", "COUNT",
}


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r}@{self.position})"


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCT = "(),.;[]?"


def tokenize(sql: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":
            # Line comment.
            while i < n and sql[i] != "\n":
                i += 1
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if ch == '"':
            # Quoted identifier.
            end = sql.find('"', i + 1)
            if end == -1:
                raise ParseError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, sql[i + 1 : end], i))
            i = end + 1
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens


def _read_string(sql: str, start: int) -> tuple:
    """Read a single-quoted string with '' as the escape for a quote."""
    i = start + 1
    parts: List[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise ParseError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            nxt = sql[i + 1] if i + 1 < n else ""
            if nxt.isdigit() or nxt in "+-":
                seen_exp = True
                i += 1
                if nxt in "+-":
                    i += 1
            else:
                break
        else:
            break
    text = sql[start:i]
    try:
        value: Any = float(text) if (seen_dot or seen_exp) else int(text)
    except ValueError:
        raise ParseError(f"bad numeric literal {text!r}", start)
    return value, i
