"""Hammer tests for the shared structures morsel workers lean on.

Worker threads hit :meth:`ColumnTable.column_array` / ``clean_array`` (a
mutating cache), :meth:`TableInfo.scan` (cache install), and the plan cache
(LRU reorder on *read*) concurrently with writers.  These tests drive each
structure from many threads at once and assert that nothing corrupts and
nothing stale survives a write — the regressions the PR's locking fixes
guard against.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.catalog.catalog import TableInfo
from repro.core.plancache import CachedPlan, PlanCache
from repro.core.types import Column, DataType, Schema
from repro.storage.buffer import BufferPool
from repro.storage.column import ColumnTable
from repro.storage.disk import InMemoryDiskManager

THREADS = 8
ROUNDS = 60


def int_schema():
    return Schema([Column("id", DataType.INTEGER), Column("v", DataType.FLOAT)])


def run_hammer(workers):
    """Run each worker callable repeatedly on its own thread; reraise errors."""
    errors = []
    barrier = threading.Barrier(len(workers))

    def drive(fn):
        barrier.wait()
        try:
            for _ in range(ROUNDS):
                fn()
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    threads = [threading.Thread(target=drive, args=(fn,)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestColumnArrayCache:
    def test_concurrent_reads_and_appends(self):
        table = ColumnTable(int_schema(), name="hammer")
        for i in range(256):
            table.append((i, float(i)))

        def reader():
            arr = table.column_array(0)
            # A cached array must be internally consistent: sorted ascending
            # because appends only ever add larger ids.
            assert arr.dtype == np.int64
            assert len(arr) == 0 or (np.diff(arr) >= 0).all()
            clean = table.clean_array(1)
            if clean is not None:
                assert clean.dtype == np.float64

        counter = iter(range(10_000))

        def writer():
            i = 256 + next(counter)
            table.append((i, float(i)))

        run_hammer([reader] * (THREADS - 2) + [writer] * 2)
        # Final state: every append landed exactly once.
        assert table.row_count == 256 + 2 * ROUNDS

    def test_cached_arrays_are_read_only(self):
        table = ColumnTable(int_schema(), name="ro")
        table.append((1, 2.0))
        arr = table.column_array(0)
        with pytest.raises(ValueError):
            arr[0] = 99
        clean = table.clean_array(0)
        assert clean is not None
        with pytest.raises(ValueError):
            clean[0] = 99

    def test_writes_invalidate_clean_array(self):
        table = ColumnTable(int_schema(), name="inval")
        table.append((1, 1.0))
        first = table.clean_array(0)
        assert first is not None and list(first) == [1]
        table.append((2, 2.0))
        second = table.clean_array(0)
        assert list(second) == [1, 2]
        table.delete(0)
        assert table.clean_array(0) is None  # tombstones disable the fast path


class TestScanCacheInstall:
    def _table(self):
        pool = BufferPool(InMemoryDiskManager(), capacity=64)
        info = TableInfo("t", int_schema(), pool, layout="column")
        for i in range(100):
            info.insert((i, float(i)))
        return info

    def test_concurrent_scans_agree(self):
        info = self._table()
        expected = [row for _, row in info.scan()]

        def scanner():
            assert [row for _, row in info.scan()] == expected

        run_hammer([scanner] * THREADS)

    def test_scan_racing_writer_never_serves_stale_rows(self):
        info = self._table()
        stop = threading.Event()

        def writer():
            i = 1000
            while not stop.is_set():
                info.insert((i, float(i)))
                i += 1

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(ROUNDS):
                rows = [row for _, row in info.scan()]
                # Monotonic: a scan may straddle the writer, but the cache
                # must never roll the table back below what a completed
                # earlier scan observed.
                assert len(rows) >= 100
                recount = sum(1 for _ in info.scan())
                assert recount >= len(rows)
        finally:
            stop.set()
            t.join()


class TestPlanCacheLocking:
    def _entry(self, tables=("t",)):
        return CachedPlan(
            physical=object(),
            columns=["c"],
            tables=frozenset(tables),
            catalog_version=1,
            stats_epoch=1,
            options_key=("k",),
        )

    def test_concurrent_get_put_invalidate(self):
        cache = PlanCache(capacity=16)
        keys = [f"SELECT {i}" for i in range(32)]
        for key in keys:
            cache.put(key, self._entry())

        def getter():
            for key in keys:
                entry = cache.get(key, 1, 1, ("k",))
                assert entry is None or entry.options_key == ("k",)

        def putter():
            for key in keys:
                cache.put(key, self._entry())

        def invalidator():
            cache.invalidate_tables(["t"])

        def stale_getter():
            # Mismatched epoch forces the evict-inside-get path.
            for key in keys:
                assert cache.get(key, 1, 2, ("k",)) is None

        run_hammer(
            [getter] * 3 + [putter] * 2 + [invalidator] * 2 + [stale_getter]
        )
        assert len(cache) <= cache.capacity

    def test_capacity_respected_under_contention(self):
        cache = PlanCache(capacity=8)

        def putter(tag):
            def run():
                for i in range(64):
                    cache.put(f"q-{tag}-{i}", self._entry())

            return run

        run_hammer([putter(t) for t in range(THREADS)])
        assert len(cache) <= 8


class TestParallelQueryHammer:
    def test_same_db_queried_from_many_threads(self):
        """End-to-end: parallel plans over one Database from many threads."""
        from repro.core.database import Database
        from repro.optimizer.optimizer import OptimizerOptions

        db = Database(
            engine="vectorized",
            default_layout="column",
            optimizer_options=OptimizerOptions(
                workers=2, parallel_min_rows=1, morsel_size=128
            ),
        )
        db.execute("CREATE TABLE nums (id INTEGER NOT NULL, v FLOAT)")
        db.insert_rows("nums", [(i, float(i % 17)) for i in range(3000)])
        expected = db.execute("SELECT SUM(v), COUNT(*) FROM nums WHERE id < 2500").rows

        def query():
            got = db.execute("SELECT SUM(v), COUNT(*) FROM nums WHERE id < 2500").rows
            assert got == expected

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(query) for _ in range(24)]
            for f in futures:
                f.result()
