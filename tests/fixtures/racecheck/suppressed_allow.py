"""The documented escape hatch: a real unlocked compound write that the
author has judged benign (the counter is advisory and a lost update is
acceptable), silenced with a per-line ``# racecheck: allow(<rule>)``
comment.  This file must analyze clean *because of* the suppression."""

from concurrent.futures import ThreadPoolExecutor


class Telemetry:
    def __init__(self):
        # Advisory progress counter: occasional lost updates are fine and
        # a lock here would serialize the hot path for a debug number.
        self.samples = 0

    def observe(self):
        self.samples = self.samples + 1  # racecheck: allow(unlocked-shared-write)


def run(rounds: int) -> int:
    telemetry = Telemetry()
    with ThreadPoolExecutor(4) as pool:
        for _ in range(rounds):
            pool.submit(telemetry.observe)
    return telemetry.samples
