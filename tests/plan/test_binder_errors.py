"""Binder error paths: every message must name the offending identifier.

A bind error is the first thing a user sees when a query is wrong; these
tests pin both the exception type and that the message carries the actual
column/function name, so errors stay actionable as the binder evolves.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.core.errors import BindError


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE people (id INTEGER, name TEXT, age INTEGER)")
    d.execute("CREATE TABLE pets (id INTEGER, owner_id INTEGER, name TEXT)")
    d.execute("INSERT INTO people VALUES (1, 'alice', 30), (2, 'bob', 25)")
    d.execute("INSERT INTO pets VALUES (10, 1, 'rex'), (11, 2, 'tom')")
    return d


class TestUnknownColumn:
    def test_select_list(self, db):
        with pytest.raises(BindError, match=r"unknown column: 'salary'"):
            db.execute("SELECT salary FROM people")

    def test_where_clause(self, db):
        with pytest.raises(BindError, match=r"unknown column: 'heightt'"):
            db.execute("SELECT name FROM people WHERE heightt > 10")

    def test_qualified_with_wrong_table(self, db):
        with pytest.raises(BindError, match=r"unknown column: 'pets\.age'"):
            db.execute(
                "SELECT people.name FROM people JOIN pets "
                "ON people.id = pets.owner_id WHERE pets.age > 1"
            )

    def test_order_by(self, db):
        with pytest.raises(BindError, match=r"unknown column: 'wight'"):
            db.execute("SELECT name FROM people ORDER BY wight")

    def test_update_and_delete(self, db):
        with pytest.raises(BindError, match=r"unknown column: 'agee'"):
            db.execute("UPDATE people SET age = 1 WHERE agee > 10")
        with pytest.raises(BindError, match=r"unknown column: 'agee'"):
            db.execute("DELETE FROM people WHERE agee > 10")


class TestAmbiguousReference:
    def test_join_with_shared_column_name(self, db):
        # Both tables have `id` and `name`.
        with pytest.raises(BindError, match=r"ambiguous column reference: 'name'"):
            db.execute(
                "SELECT name FROM people JOIN pets ON people.id = pets.owner_id"
            )

    def test_self_join(self, db):
        with pytest.raises(BindError, match=r"ambiguous column reference: 'age'"):
            db.execute(
                "SELECT age FROM people AS a, people AS b WHERE a.id = b.id"
            )

    def test_qualification_resolves_it(self, db):
        result = db.execute(
            "SELECT people.name FROM people JOIN pets "
            "ON people.id = pets.owner_id ORDER BY people.name"
        )
        assert result.rows == [("alice",), ("bob",)]


class TestBadAggregateNesting:
    def test_nested_aggregate_names_both_functions(self, db):
        with pytest.raises(
            BindError, match=r"aggregate 'MAX\(age\)' cannot be nested inside SUM"
        ):
            db.execute("SELECT SUM(MAX(age)) FROM people")

    def test_nested_under_expression_inside_aggregate(self, db):
        with pytest.raises(
            BindError, match=r"aggregate 'COUNT\(id\)' cannot be nested inside AVG"
        ):
            db.execute("SELECT AVG(age + COUNT(id)) FROM people")

    def test_aggregate_in_where_names_function(self, db):
        with pytest.raises(BindError, match=r"aggregate SUM is not allowed"):
            db.execute("SELECT name FROM people WHERE SUM(age) > 10")

    def test_ungrouped_column_names_column(self, db):
        with pytest.raises(
            BindError, match=r"column 'name' must appear in GROUP BY"
        ):
            db.execute("SELECT name, COUNT(*) FROM people GROUP BY age")
