"""E2 — "many performance problems are due to the ORM and never arise at
the DBMS".

Reproduction: a 1:N schema traversed three ways — lazy ORM (N+1 queries),
eager ORM (one JOIN), raw SQL (one aggregate).  The lazy curve grows
linearly in the number of parents while the DBMS-side work for the same
logical question stays one query; the claim-check asserts the
orders-of-magnitude query-count gap.
"""

import pytest

from repro.bench.harness import format_table
from repro.core.database import Database
from repro.orm import ForeignKeyField, IntegerField, Model, Session, TextField, eager

PARENT_COUNTS = [10, 50, 200, 400]
BOOKS_PER_AUTHOR = 3

_RESULTS = {}


class Author(Model):
    __tablename__ = "authors"
    id = IntegerField(primary_key=True)
    name = TextField()


class Book(Model):
    __tablename__ = "books"
    id = IntegerField(primary_key=True)
    author_id = ForeignKeyField("authors.id")
    title = TextField()


Author.relate("books", Book, foreign_key="author_id")


def make_session(n_authors: int) -> Session:
    session = Session(Database())
    session.create_all([Author, Book])
    for i in range(n_authors):
        session.add(Author(id=i, name=f"author{i}"))
        for j in range(BOOKS_PER_AUTHOR):
            session.add(Book(id=i * 10 + j, author_id=i, title=f"b{i}.{j}"))
    session.flush()
    return session


def traverse_lazy(session: Session) -> int:
    return sum(len(a.books) for a in session.query(Author).all())


def traverse_eager(session: Session) -> int:
    return sum(
        len(a.books) for a in session.query(Author).options(eager("books")).all()
    )


def raw_sql(session: Session) -> int:
    return session.execute("SELECT COUNT(*) FROM books").scalar()


@pytest.mark.parametrize("n", PARENT_COUNTS)
@pytest.mark.parametrize(
    "mode,fn", [("lazy", traverse_lazy), ("eager", traverse_eager), ("raw-sql", raw_sql)]
)
def test_e2_traversal(benchmark, n, mode, fn):
    session = make_session(n)

    def run():
        # Fresh identity/relationship caches each round: re-materialize.
        fresh = Session(session.db)
        fresh.reset_query_count()
        total = fn(fresh)
        return fresh.query_count, total

    (queries, total) = benchmark.pedantic(run, rounds=3, iterations=1)
    assert total == n * BOOKS_PER_AUTHOR
    benchmark.extra_info["queries"] = queries
    _RESULTS[(mode, n)] = (benchmark.stats.stats.min * 1e3, queries)


def test_e2_claim_check(benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for mode in ("lazy", "eager", "raw-sql"):
        for n in PARENT_COUNTS:
            ms, queries = _RESULTS[(mode, n)]
            rows.append([mode, n, queries, ms])
    print()
    print(
        format_table(
            ["mode", "authors", "queries", "best ms"],
            rows,
            title="E2: ORM N+1 vs eager vs raw SQL",
        )
    )
    # The defining shape: lazy issues 1+N queries, eager exactly 1.
    for n in PARENT_COUNTS:
        assert _RESULTS[("lazy", n)][1] == 1 + n
        assert _RESULTS[("eager", n)][1] == 1
        assert _RESULTS[("raw-sql", n)][1] == 1
    # And the time gap grows with N: at N=400 lazy is many times slower
    # than raw SQL for the same logical answer.
    lazy_ms = _RESULTS[("lazy", PARENT_COUNTS[-1])][0]
    raw_ms = _RESULTS[("raw-sql", PARENT_COUNTS[-1])][0]
    assert lazy_ms > 5 * raw_ms
