"""Tests for the plan cache and prepared statements."""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.core.errors import ExecutionError, ParseError
from repro.core.plancache import PlanCache, CachedPlan


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INTEGER, b TEXT, c DOUBLE)")
    database.execute(
        "INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', 2.5), (3, NULL, 3.5)"
    )
    return database


class TestPlanCache:
    def test_repeat_statement_hits(self, db):
        db.execute("SELECT a FROM t WHERE a >= 2")
        assert not db.last_stats.plan_cache_hit
        result = db.execute("SELECT a FROM t WHERE a >= 2")
        assert db.last_stats.plan_cache_hit
        assert result.rows == [(2,), (3,)]
        assert db.plan_cache.stats.hits == 1

    def test_whitespace_insensitive_key(self, db):
        db.execute("SELECT a FROM t WHERE a >= 2")
        db.execute("SELECT  a   FROM t\n WHERE a >= 2")
        assert db.last_stats.plan_cache_hit

    def test_hit_sees_fresh_data(self, db):
        db.execute("SELECT a FROM t WHERE a >= 2")
        db.execute("INSERT INTO t VALUES (4, 'z', 4.5)")
        result = db.execute("SELECT a FROM t WHERE a >= 2")
        assert db.last_stats.plan_cache_hit
        assert result.rows == [(2,), (3,), (4,)]

    def test_ddl_invalidates(self, db):
        db.execute("SELECT a FROM t WHERE a >= 2")
        db.execute("CREATE INDEX idx_a ON t (a)")
        db.execute("SELECT a FROM t WHERE a >= 2")
        assert not db.last_stats.plan_cache_hit  # re-planned (may use the index)
        assert db.plan_cache.stats.invalidations >= 1
        db.execute("SELECT a FROM t WHERE a >= 2")
        assert db.last_stats.plan_cache_hit

    def test_analyze_invalidates(self, db):
        db.execute("SELECT a FROM t WHERE a >= 2")
        db.execute("ANALYZE t")
        db.execute("SELECT a FROM t WHERE a >= 2")
        assert not db.last_stats.plan_cache_hit
        assert db.plan_cache.stats.invalidations >= 1

    def test_drop_table_clears_cache(self, db):
        db.execute("SELECT a FROM t WHERE a >= 2")
        assert len(db.plan_cache) == 1
        db.execute("DROP TABLE t")
        assert len(db.plan_cache) == 0

    def test_subqueries_are_never_cached(self, db):
        # Subqueries fold to constants at bind time; caching would freeze
        # data-dependent plans.
        sql = "SELECT a FROM t WHERE a = (SELECT MAX(a) FROM t)"
        assert db.execute(sql).rows == [(3,)]
        db.execute("INSERT INTO t VALUES (9, 'max', 0.0)")
        result = db.execute(sql)
        assert not db.last_stats.plan_cache_hit
        assert result.rows == [(9,)]

    def test_dml_is_not_cached(self, db):
        db.execute("UPDATE t SET b = 'q' WHERE a = 1")
        assert len(db.plan_cache) == 0

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        entry = lambda: CachedPlan(None, [], None, 0, 0, ())
        cache.put("q1", entry())
        cache.put("q2", entry())
        assert cache.get("q1", 0, 0, ()) is not None  # refresh q1
        cache.put("q3", entry())  # evicts q2 (least recent)
        assert cache.get("q2", 0, 0, ()) is None
        assert cache.get("q1", 0, 0, ()) is not None
        assert cache.get("q3", 0, 0, ()) is not None

    def test_stale_entry_is_evicted_on_lookup(self):
        cache = PlanCache(capacity=4)
        cache.put("q", CachedPlan(None, [], None, 0, 0, ()))
        assert cache.get("q", 1, 0, ()) is None  # newer catalog version
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_can_be_disabled(self):
        database = Database(plan_cache_size=0)
        assert database.plan_cache is None
        database.execute("CREATE TABLE u (a INTEGER)")
        database.execute("INSERT INTO u VALUES (1)")
        database.execute("SELECT a FROM u")
        database.execute("SELECT a FROM u")
        assert not database.last_stats.plan_cache_hit


class TestPreparedStatements:
    def test_select_uses_bound_plan(self, db):
        stmt = db.prepare("SELECT a, b FROM t WHERE a = ?")
        assert stmt.uses_bound_plan
        assert stmt.param_count == 1
        assert stmt.execute((2,)).rows == [(2, "y")]
        assert stmt.execute((3,)).rows == [(3, None)]
        assert stmt.execute((99,)).rows == []
        assert stmt.executions == 3
        assert stmt.replans == 1  # the initial plan only

    def test_null_parameter_matches_nothing(self, db):
        stmt = db.prepare("SELECT a FROM t WHERE a = ?")
        assert stmt.execute((None,)).rows == []  # a = NULL is never true

    def test_both_engines_give_same_answer(self, db):
        stmt = db.prepare("SELECT a FROM t WHERE c < ? ORDER BY a")
        assert (
            stmt.execute((3.0,), engine="volcano").rows
            == stmt.execute((3.0,), engine="vectorized").rows
            == [(1,), (2,)]
        )

    def test_replans_after_ddl(self, db):
        stmt = db.prepare("SELECT a FROM t WHERE a = ?")
        stmt.execute((1,))
        db.execute("CREATE INDEX idx_a ON t (a)")
        assert stmt.execute((2,)).rows == [(2,)]
        assert stmt.replans == 2

    def test_replans_after_analyze(self, db):
        stmt = db.prepare("SELECT a FROM t WHERE a = ?")
        stmt.execute((1,))
        db.analyze("t")
        assert stmt.execute((2,)).rows == [(2,)]
        assert stmt.replans == 2

    def test_sees_writes_between_executions(self, db):
        stmt = db.prepare("SELECT b FROM t WHERE a = ?")
        assert stmt.execute((8,)).rows == []
        db.execute("INSERT INTO t VALUES (8, 'new', 0.0)")
        assert stmt.execute((8,)).rows == [("new",)]

    def test_wrong_arity_raises(self, db):
        stmt = db.prepare("SELECT a FROM t WHERE a = ?")
        with pytest.raises(ExecutionError):
            stmt.execute((1, 2))

    def test_dml_falls_back_to_substitution(self, db):
        stmt = db.prepare("INSERT INTO t VALUES (?, ?, ?)")
        assert not stmt.uses_bound_plan
        stmt.execute((7, "o'brien", 7.5))  # quoting handled client-side
        assert db.execute("SELECT b FROM t WHERE a = 7").rows == [("o'brien",)]

    def test_subquery_falls_back_to_substitution(self, db):
        stmt = db.prepare("SELECT a FROM t WHERE a = (SELECT MAX(a) FROM t)")
        assert not stmt.uses_bound_plan
        assert stmt.execute(()).rows == [(3,)]
        db.execute("INSERT INTO t VALUES (11, 'max', 0.0)")
        assert stmt.execute(()).rows == [(11,)]

    def test_parameter_is_not_constant_folded(self, db):
        # The optimizer must not freeze the first-bound value into the plan.
        stmt = db.prepare("SELECT a FROM t WHERE a = ? + 1")
        assert stmt.execute((1,)).rows == [(2,)]
        assert stmt.execute((2,)).rows == [(3,)]
        assert stmt.replans == 1

    def test_bare_placeholder_without_prepare_raises(self, db):
        with pytest.raises(Exception, match="prepare"):
            db.execute("SELECT a FROM t WHERE a = ?")

    def test_params_kwarg_still_substitutes(self, db):
        result = db.execute("SELECT b FROM t WHERE a = ?", params=(2,))
        assert result.rows == [("y",)]

    def test_substitution_arity_mismatch_raises(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT a FROM t WHERE a = ?", params=(1, 2))
