"""Field descriptors for declarative models."""

from __future__ import annotations

from typing import Any, Optional

from repro.core.types import DataType


class Field:
    """A typed column on a model class."""

    dtype: DataType = DataType.TEXT

    def __init__(self, primary_key: bool = False, nullable: bool = True):
        self.primary_key = primary_key
        self.nullable = nullable and not primary_key
        self.name: Optional[str] = None  # set by the metaclass

    def __set_name__(self, owner, name):
        self.name = name

    def __get__(self, instance, owner):
        if instance is None:
            return self
        return instance.__dict__.get(self.name)

    def __set__(self, instance, value):
        instance.__dict__[self.name] = value

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class IntegerField(Field):
    dtype = DataType.INTEGER


class FloatField(Field):
    dtype = DataType.FLOAT


class TextField(Field):
    dtype = DataType.TEXT


class BooleanField(Field):
    dtype = DataType.BOOLEAN


class ForeignKeyField(IntegerField):
    """Integer column referencing ``"table.column"`` on another model."""

    def __init__(self, references: str, nullable: bool = True):
        super().__init__(primary_key=False, nullable=nullable)
        if "." not in references:
            raise ValueError("ForeignKeyField references must be 'table.column'")
        self.ref_table, self.ref_column = references.split(".", 1)
