"""Query optimization for AI data pipelines (the QWEN-3 anecdote).

A training-data prep pipeline written naively — expensive tokenization
first — is rebuilt by the cost-based rewriter using classic database rules:
selective-cheap filters first, dedup before the accelerator, map fusion.
Same output, a fraction of the "GPU" spend.

Run:  python examples/ai_pipeline.py
"""

from repro.pipelines import Pipeline, PipelineOptimizer, run_pipeline
from repro.workloads.corpus import make_corpus


def tokenize(record):
    record["tokens"] = record["text"].split()
    return record


def count_tokens(record):
    record["n_tokens"] = len(record["tokens"])
    return record


def main() -> None:
    corpus = [d.to_record() for d in make_corpus(5000, duplicate_fraction=0.3, seed=7)]

    naive = (
        Pipeline("training-data-prep")
        .map("tokenize", tokenize, reads={"text"}, writes={"tokens"},
             cost=60.0, gpu=True)
        .map("count", count_tokens, reads={"tokens"}, writes={"n_tokens"}, cost=0.5)
        .filter("english", lambda r: r["lang"] == "en", reads={"lang"},
                selectivity=0.5, cost=0.05)
        .filter("quality", lambda r: r["quality"] > 0.5, reads={"quality"},
                selectivity=0.55, cost=0.1)
        .dedup("by_url", key=lambda r: r["url"], reads={"url"},
               duplicate_fraction=0.3)
    )

    optimizer = PipelineOptimizer()
    optimized, trace = optimizer.optimize_traced(naive)

    print("naive plan:     ", naive.describe())
    print("optimized plan: ", optimized.describe())
    print("\nrewrites applied:")
    print(trace.summary())

    out_naive, report_naive = run_pipeline(naive, corpus)
    out_opt, report_opt = run_pipeline(optimized, corpus)

    assert sorted(r["id"] for r in out_naive) == sorted(r["id"] for r in out_opt)

    print("\n" + report_naive.pretty())
    print("\n" + report_opt.pretty())

    gpu_factor = report_naive.total_gpu / report_opt.total_gpu
    byte_factor = report_naive.total_bytes_processed / report_opt.total_bytes_processed
    print(
        f"\nidentical {len(out_opt)}-doc output; "
        f"GPU cost cut {gpu_factor:.1f}x, bytes processed cut {byte_factor:.1f}x "
        "— query optimization principles, applied to an AI pipeline."
    )


if __name__ == "__main__":
    main()
