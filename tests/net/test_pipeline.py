"""Pipelining, batched execution, and columnar negotiation suite.

The fast path stacks three mechanisms — client-side pipelining (many
requests in flight per connection), server-side batch collection (queued
compatible requests execute in one executor hop under one WAL group
commit), and columnar result frames.  None of them may be *observable*:
a pipelined session must produce exactly the answers a serial session
produces, statement by statement, error by error.

The differential section replays the seeded SQL sequences from
``tests.differential.sequences`` through ``pipeline()`` against a fresh
embedded engine — the same oracle the serial wire clients already pass —
so the composition ``pipelined wire == serial wire == embedded ==
sqlite3`` holds transitively.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.core.database import Database
from repro.core.errors import CatalogError, ProtocolError, ReproError
from repro.net import ServerThread, aconnect, connect
from repro.net import protocol as proto

from tests.differential.sequences import canon, num_sequences, sequence

SCHEMA = "CREATE TABLE t (id INTEGER, name TEXT, val FLOAT)"

# Every 4th seed of the serial differential corpus: the sequences are
# identical, only the transport discipline changes, so a quarter of the
# corpus re-run pipelined buys the composition proof without doubling
# suite wall time.
PIPELINE_SEEDS = range(0, num_sequences(), 4)


@pytest.fixture(scope="module")
def pipe_server():
    with ServerThread(max_connections=64) as srv:
        yield srv


def _reset(execute) -> None:
    try:
        execute("DROP TABLE t")
    except ReproError:
        pass
    execute(SCHEMA)


def _compare(seed: int, step: int, sql: str, handle, theirs) -> None:
    t_err = theirs if isinstance(theirs, BaseException) else None
    if handle.error is not None or t_err is not None:
        assert type(handle.error) is type(t_err), (
            f"error divergence at seed={seed} step={step}: {sql!r}\n"
            f"  pipelined: {type(handle.error).__name__ if handle.error else 'ok'}\n"
            f"  embedded:  {type(t_err).__name__ if t_err else 'ok'}"
        )
        return
    ours = handle.result()
    assert ours.columns == theirs.columns, f"seed={seed} step={step}: {sql!r}"
    assert ours.rowcount == theirs.rowcount, f"seed={seed} step={step}: {sql!r}"
    assert canon(ours.rows) == canon(theirs.rows), (
        f"row divergence at seed={seed} step={step}: {sql!r}"
    )


def _embedded_replay(seed: int):
    """Run the whole sequence embedded; return (per-step outcomes, final rows)."""
    db = Database()
    db.execute(SCHEMA)
    outcomes = []
    for sql in sequence(seed):
        try:
            outcomes.append(db.execute(sql))
        except ReproError as exc:
            outcomes.append(exc)
    final = db.execute("SELECT id, name, val FROM t").rows
    db.close()
    return outcomes, final


@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_sync_pipeline_matches_embedded(pipe_server, seed):
    statements = sequence(seed)
    theirs, final_theirs = _embedded_replay(seed)
    with connect(port=pipe_server.port) as conn:
        _reset(conn.execute)
        with conn.pipeline(window=8) as pipe:
            handles = [pipe.execute(sql) for sql in statements]
        for step, (sql, handle) in enumerate(zip(statements, handles)):
            _compare(seed, step, sql, handle, theirs[step])
        final_ours = conn.execute("SELECT id, name, val FROM t").rows
        assert canon(final_ours) == canon(final_theirs), f"seed={seed}"


@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_async_pipeline_matches_embedded(pipe_server, seed):
    statements = sequence(seed)
    theirs, final_theirs = _embedded_replay(seed)

    async def scenario():
        conn = await aconnect(port=pipe_server.port)
        try:
            try:
                await conn.execute("DROP TABLE t")
            except ReproError:
                pass
            await conn.execute(SCHEMA)
            async with conn.pipeline(window=8) as pipe:
                handles = [await pipe.execute(sql) for sql in statements]
            for step, (sql, handle) in enumerate(zip(statements, handles)):
                _compare(seed, step, sql, handle, theirs[step])
            final_ours = (await conn.execute("SELECT id, name, val FROM t")).rows
            assert canon(final_ours) == canon(final_theirs), f"seed={seed}"
        finally:
            await conn.close()

    asyncio.run(scenario())


# -- pipeline semantics ------------------------------------------------------


def test_execute_many_preserves_order(server):
    with connect(port=server.port) as conn:
        conn.execute("CREATE TABLE seq (i INTEGER)")
        conn.execute_many("INSERT INTO seq VALUES (?)", [(i,) for i in range(200)])
        rows = conn.execute("SELECT i FROM seq").rows
        assert sorted(r[0] for r in rows) == list(range(200))


def test_mid_pipeline_error_keeps_slot_and_connection(server):
    """A failing statement occupies its response slot; later statements
    still run and the connection stays usable afterwards."""
    with connect(port=server.port) as conn:
        conn.execute("CREATE TABLE ok (i INTEGER)")
        with conn.pipeline() as pipe:
            first = pipe.execute("INSERT INTO ok VALUES (1)")
            broken = pipe.execute("INSERT INTO missing VALUES (1)")
            last = pipe.execute("INSERT INTO ok VALUES (2)")
        assert first.error is None
        assert isinstance(broken.error, CatalogError)
        assert last.error is None
        with pytest.raises(CatalogError):
            broken.result()
        rows = conn.execute("SELECT i FROM ok").rows
        assert sorted(r[0] for r in rows) == [1, 2]


def test_execute_many_return_exceptions(server):
    with connect(port=server.port) as conn:
        conn.execute("CREATE TABLE em (i INTEGER)")
        results = conn.execute_many(
            "INSERT INTO em VALUES (?)",
            [(1,), ("not an int",), (3,)],
            return_exceptions=True,
        )
        assert results[0].rowcount == 1
        assert isinstance(results[1], ReproError)
        assert results[2].rowcount == 1


def test_plain_execute_inside_pipeline_is_rejected(server):
    with connect(port=server.port) as conn:
        conn.execute("CREATE TABLE g (i INTEGER)")
        with conn.pipeline() as pipe:
            pipe.execute("INSERT INTO g VALUES (1)")
            with pytest.raises(ProtocolError, match="pipeline"):
                conn.execute("SELECT i FROM g")
        assert conn.execute("SELECT i FROM g").rows == [(1,)]


def test_pipelined_transaction_rolls_back_atomically(server):
    """BEGIN/COMMIT/ROLLBACK frames never join a batch: txn control keeps
    its exact serial semantics even when submitted through a pipeline."""
    with connect(port=server.port) as conn:
        conn.execute("CREATE TABLE txn (i INTEGER)")
        with conn.pipeline() as pipe:
            pipe.execute("INSERT INTO txn VALUES (0)")
            pipe.execute("BEGIN")
            pipe.execute("INSERT INTO txn VALUES (1)")
            pipe.execute("INSERT INTO txn VALUES (2)")
            pipe.execute("ROLLBACK")
            pipe.execute("INSERT INTO txn VALUES (3)")
        rows = sorted(r[0] for r in conn.execute("SELECT i FROM txn").rows)
        assert rows == [0, 3], "rolled-back batch members leaked"


def test_async_pipeline_mixed_errors(server):
    async def scenario():
        conn = await aconnect(port=server.port)
        try:
            await conn.execute("CREATE TABLE am (i INTEGER)")
            async with conn.pipeline(window=4) as pipe:
                good = await pipe.execute("INSERT INTO am VALUES (?)", (7,))
                bad = await pipe.execute("SELECT * FROM nowhere")
            assert good.error is None
            assert isinstance(bad.error, CatalogError)
            assert (await conn.execute("SELECT i FROM am")).rows == [(7,)]
        finally:
            await conn.close()

    asyncio.run(scenario())


def test_autoprepare_cache_populates(server):
    """Repeated parameterized text gets promoted to a server-side prepared
    statement (the batch path's per-statement parse amortizer)."""
    with connect(port=server.port) as conn:
        conn.execute("CREATE TABLE ap (i INTEGER)")
        conn.execute_many("INSERT INTO ap VALUES (?)", [(i,) for i in range(64)])
        for _ in range(3):
            conn.execute_many(
                "SELECT i FROM ap WHERE i = ?", [(i,) for i in range(0, 64, 8)]
            )
    cached = list(server.server._auto_stmts)
    assert any("SELECT i FROM ap WHERE i = ?" == sql for sql in cached), cached


def test_group_commit_batches_are_durable(tmp_path):
    """Autocommit writes executed as one batch share one WAL flush — and
    every row must survive close/reopen (durability before ack)."""
    path = str(tmp_path / "pipe.db")
    with ServerThread(Database(path, durability="fsync")) as srv:
        with connect(port=srv.port) as conn:
            conn.execute("CREATE TABLE d (i INTEGER)")
            conn.execute_many("INSERT INTO d VALUES (?)", [(i,) for i in range(100)])
    db = Database(path)
    try:
        assert db.execute("SELECT COUNT(*) FROM d").rows == [(100,)]
    finally:
        db.close()


# -- columnar negotiation ----------------------------------------------------


def _raw_query_frames(port: int, columnar: bool):
    """Speak the protocol by hand and return the result frame types."""
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        options = {"columnar": True} if columnar else {}
        sock.sendall(proto.encode_message(proto.HELLO, {"user": "raw", "options": options}))
        sock.sendall(proto.encode_message(proto.QUERY, ["SELECT id FROM neg", []]))
        decoder = proto.FrameDecoder()
        seen = []
        while True:
            data = sock.recv(65536)
            assert data, "server hung up mid-result"
            decoder.feed(data)
            for frame_type, _payload in decoder.frames():
                if frame_type == proto.WELCOME:
                    continue
                seen.append(frame_type)
                if frame_type in (proto.RESULT_DONE, proto.ERROR):
                    return seen


def test_columnar_is_opt_in(server):
    server.db.execute("CREATE TABLE neg (id INTEGER)")
    for i in range(10):
        server.db.execute(f"INSERT INTO neg VALUES ({i})")
    classic = _raw_query_frames(server.port, columnar=False)
    assert proto.RESULT_BATCH in classic
    assert proto.RESULT_BATCH_COL not in classic
    negotiated = _raw_query_frames(server.port, columnar=True)
    assert proto.RESULT_BATCH_COL in negotiated
    assert proto.RESULT_BATCH not in negotiated
