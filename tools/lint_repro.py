#!/usr/bin/env python
"""AST-based self-lint for this repository.

Two checks, both motivated by real failure modes in this codebase:

* **bare-except** — ``except:`` / ``except BaseException:`` swallow
  *everything*, including ``storage.faults.CrashPoint`` (a BaseException
  the crash-matrix tests raise mid-operation to simulate power loss).  A
  handler that traps it silently turns a simulated crash into a normal
  return and invalidates the whole durability suite.  A handler that
  re-raises unconditionally (bare ``raise`` in its body) is allowed.
* **mutable-default-arg** — ``def f(x, acc=[])`` shares one list across
  calls; with a Database living for many statements this is a classic
  source of cross-query state leaks.
* **latch-coverage** — a field guarded by ``with self._latch:`` (or
  ``_store_lock`` / ``_mutex`` / ``_cond``) in one method but accessed
  bare in a sibling method is a data race waiting for a schedule
  (:func:`repro.analyze.concurrency.check_latch_coverage`).  Helpers that
  run under a caller's latch opt out with a ``_locked`` name suffix.
* **whole-program analyzers** — each lint root is also fed through the
  shared umbrella runner (:func:`repro.analyze.check.run_check`), which
  builds ONE call graph per root and hands it to both the async-safety
  analyzer (:mod:`repro.analyze.asyncsafe`: event-loop blocking reachable
  from coroutines, locks held across ``await``, missing awaits, task
  leaks) and the static race detector (:mod:`repro.analyze.racecheck`:
  unlocked shared writes, inconsistent locksets, ABBA lock orders,
  thread-escaping locals).  The PR 7 wedge (a blocking ``scheme.begin()``
  on the loop) and the PR 5 PlanCache race class are lint failures here,
  not production hangs.

Findings suppress with a trailing ``# lint: allow(rule)`` comment on the
flagged line, same syntax as the SQL linter; the whole-program passes use
``# asyncsafe: allow(rule)`` and ``# racecheck: allow(rule)``.

Usage: ``python tools/lint_repro.py [dir ...]`` (default: ``src``).
Prints ``path:line: [rule] message`` per finding; exit 1 if any.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

# CI runs this file as a script with no PYTHONPATH; the latch-coverage
# pass lives in the package, so put src/ on the path ourselves.
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"))

from repro.analyze.concurrency import check_latch_coverage  # noqa: E402
from repro.analyze.facts import parse_suppressions  # noqa: E402

Finding = Tuple[str, int, str, str]  # path, line, rule, message


def _is_bare_reraise(handler: ast.ExceptHandler) -> bool:
    """Does the handler body unconditionally re-raise?"""
    return any(
        isinstance(stmt, ast.Raise) and stmt.exc is None for stmt in handler.body
    )


def _check_excepts(tree: ast.AST, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            kind = "bare 'except:'"
        elif isinstance(node.type, ast.Name) and node.type.id == "BaseException":
            kind = "'except BaseException:'"
        else:
            continue
        if _is_bare_reraise(node):
            continue
        yield (
            path,
            node.lineno,
            "bare-except",
            f"{kind} swallows BaseException (including storage.faults.CrashPoint, "
            "breaking crash simulation); catch Exception or a specific type, "
            "or re-raise",
        )


_MUTABLE_CALLS = {"list", "dict", "set"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
        and not node.args
        and not node.keywords
    )


def _check_mutable_defaults(tree: ast.AST, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            if _is_mutable_default(default):
                yield (
                    path,
                    default.lineno,
                    "mutable-default-arg",
                    f"argument {arg.arg!r} defaults to a mutable object shared "
                    "across calls; default to None and build inside",
                )
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _is_mutable_default(default):
                yield (
                    path,
                    default.lineno,
                    "mutable-default-arg",
                    f"argument {arg.arg!r} defaults to a mutable object shared "
                    "across calls; default to None and build inside",
                )


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, "syntax", f"could not parse: {exc.msg}")]
    findings = list(_check_excepts(tree, path))
    findings.extend(_check_mutable_defaults(tree, path))
    findings.extend(
        (f.source or path, f.line, f.rule, f.message)
        for f in check_latch_coverage(tree, path)
    )
    suppressed = parse_suppressions(source)
    return [
        f for f in findings if f[2] not in suppressed.get(f[1], frozenset())
    ]


def _analyzer_findings(root: str) -> List[Finding]:
    """Whole-program passes (async-safety + race detection) over one root.

    Driven through the umbrella runner so the call graph is built ONCE per
    root (cross-module reachability needs every file at once) and shared
    by both analyzers; suppressions (`# asyncsafe: allow(rule)`,
    `# racecheck: allow(rule)`) are applied inside the analyzers.
    """
    from repro.analyze.check import run_check

    result = run_check([root], tools=("asynccheck", "racecheck"))
    return [
        (f.source, f.line, f.rule, f.message) for f in result.report.sorted()
    ]


def lint_tree(root: str) -> List[Finding]:
    if os.path.isfile(root):
        return lint_file(root) + _analyzer_findings(root)
    findings: List[Finding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith((".", "__pycache__")))
        for name in sorted(filenames):
            if name.endswith(".py"):
                findings.extend(lint_file(os.path.join(dirpath, name)))
    findings.extend(_analyzer_findings(root))
    return findings


def main(argv: List[str] = None) -> int:
    targets = list(sys.argv[1:] if argv is None else argv) or ["src"]
    findings: List[Finding] = []
    for target in targets:
        if not os.path.exists(target):
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2
        findings.extend(lint_tree(target))
    for path, line, rule, message in sorted(findings):
        print(f"{path}:{line}: [{rule}] {message}")
    print(
        f"{len(findings)} finding(s)" if findings else "clean: no findings",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
