-- Seeded lint positives: each query below trips exactly one rule class.
-- DDL/DML/ANALYZE run into the linter's scratch database so the
-- catalog-aware rules see real indexes and statistics.
CREATE TABLE users (id INTEGER NOT NULL, name TEXT, age INTEGER, city TEXT);
CREATE INDEX idx_users_age ON users (age);
CREATE INDEX idx_users_name ON users (name);
CREATE TABLE orders (oid INTEGER, uid INTEGER, amount FLOAT, note TEXT);
CREATE INDEX idx_orders_uid ON orders (uid);
INSERT INTO users VALUES
  (1, 'alice', 30, 'nyc'), (2, 'bob', 25, 'sf'), (3, 'carol', 35, 'nyc'),
  (4, 'dave', 41, 'chi'), (5, 'erin', 29, 'nyc'), (6, 'frank', 33, 'sf'),
  (7, 'grace', 27, 'nyc'), (8, 'heidi', 38, 'sf');
INSERT INTO orders VALUES
  (100, 1, 20.0, 'a'), (101, 2, 35.5, 'b'), (102, 3, 10.0, 'c'),
  (103, 1, 7.25, 'd'), (104, 5, 12.0, 'e'), (105, 7, 3.5, 'f');
ANALYZE;

-- select-star: every column decoded and carried for no reason
SELECT * FROM users;

-- implicit-cross-join: comma join, WHERE never connects the two sides
SELECT u.name, o.amount FROM users AS u, orders AS o WHERE u.age > 30;

-- non-sargable: arithmetic on the indexed age column blocks idx_users_age
SELECT name FROM users WHERE age + 1 > 30;

-- non-sargable: leading wildcard defeats idx_users_name
SELECT id FROM users WHERE name LIKE '%son';

-- non-sargable (in an UPDATE): function wraps the indexed name column
UPDATE users SET age = 0 WHERE UPPER(name) = 'ALICE';

-- mixed-type-comparison: INTEGER column against a FLOAT literal
SELECT name FROM users WHERE age = 30.5;

-- mixed-type-comparison: TEXT column against a number is an error
SELECT name FROM users WHERE name = 42;

-- missing-index: selective equality on unindexed users.id
SELECT name FROM users WHERE id = 3;
