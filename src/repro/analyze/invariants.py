"""Plan-invariant verification.

Every optimizer rewrite must preserve a set of typed invariants; this module
checks them on whole plan trees so the optimizer can assert correctness
after binding and *between every rewrite pass* instead of discovering a
broken rule through wrong query results.

Checked invariants:

* **schema preservation** — the plan's output schema (column count, names,
  types) matches the schema the binder produced;
* **column-reference resolution** — every :class:`BoundColumn` index inside
  a node's expressions falls inside that node's input row;
* **predicate typing** — Filter predicates, Join conditions, and HAVING
  filters are boolean (or the untyped NULL literal);
* **alias uniqueness** — no two base-table scans share an alias, which
  would make qualified references ambiguous after a rewrite;
* **cardinality sanity** (physical plans) — estimates are non-negative and
  finite, and row-reducing operators (Filter, Limit, Distinct) never claim
  more rows than their input.

The driver is :class:`PlanVerifier`: construct it with the bound plan (it
snapshots the baseline schema and checks the bound tree immediately), then
call :meth:`~PlanVerifier.check` after each rewrite and
:meth:`~PlanVerifier.check_physical` after lowering.  Violations raise
:class:`PlanInvariantViolation` carrying structured findings.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analyze.facts import ERROR, Finding
from repro.core.errors import ReproError
from repro.core.types import DataType, Schema
from repro.exec import physical as phys
from repro.plan import logical
from repro.plan.expressions import BoundColumn, BoundExpr

_RULE_SCHEMA = "plan-schema-preserved"
_RULE_COLUMNS = "plan-column-resolution"
_RULE_BOOLEAN = "plan-predicate-boolean"
_RULE_ALIASES = "plan-alias-unique"
_RULE_CARDINALITY = "plan-cardinality-monotone"

#: Estimates are floats built from independent per-node estimator calls;
#: allow a sliver of slack before calling a reducing operator non-monotone.
_CARDINALITY_SLACK = 1e-6


class PlanInvariantViolation(ReproError):
    """An optimizer rewrite (or the binder) produced an invalid plan."""

    def __init__(self, stage: str, findings: Sequence[Finding]):
        self.stage = stage
        self.findings = list(findings)
        details = "; ".join(f.message for f in self.findings[:5])
        more = f" (+{len(self.findings) - 5} more)" if len(self.findings) > 5 else ""
        super().__init__(
            f"plan invariant violated after {stage!r}: {details}{more}"
        )


def _finding(rule: str, message: str, stage: str) -> Finding:
    return Finding(rule, ERROR, message, source=f"<plan:{stage}>")


def _expr_columns(expr: BoundExpr) -> List[BoundColumn]:
    out: List[BoundColumn] = []

    def walk(node: BoundExpr) -> None:
        if isinstance(node, BoundColumn):
            out.append(node)
        for child in node.children():
            walk(child)

    walk(expr)
    return out


def _check_exprs(
    exprs: Sequence[Tuple[str, BoundExpr]],
    input_width: int,
    node_label: str,
    stage: str,
    findings: List[Finding],
) -> None:
    for role, expr in exprs:
        for col in _expr_columns(expr):
            if not 0 <= col.index < input_width:
                findings.append(
                    _finding(
                        _RULE_COLUMNS,
                        f"{node_label}: {role} references column "
                        f"{col.name}#{col.index} outside its input row "
                        f"(width {input_width})",
                        stage,
                    )
                )


def _check_boolean(
    expr: BoundExpr, node_label: str, role: str, stage: str, findings: List[Finding]
) -> None:
    if expr.dtype not in (DataType.BOOLEAN, DataType.NULL):
        findings.append(
            _finding(
                _RULE_BOOLEAN,
                f"{node_label}: {role} has type {expr.dtype.value}, expected BOOLEAN",
                stage,
            )
        )


# --------------------------------------------------------------------------
# Logical plan invariants
# --------------------------------------------------------------------------


def _alias_scopes(plan: logical.LogicalPlan) -> List[List[str]]:
    """Scan aliases grouped by join scope.

    Alias uniqueness only holds *within* one FROM clause's join tree; the
    arms of a set operation (or any subtree past a Project/Aggregate/...)
    are separate scopes that may legitimately scan the same tables.
    """
    scopes: List[List[str]] = []

    def collect(node: logical.LogicalPlan) -> List[str]:
        """Aliases of the contiguous Scan/Join/Filter subtree at ``node``."""
        if isinstance(node, logical.Scan):
            return [node.alias]
        if isinstance(node, logical.Filter):
            return collect(node.child)
        if isinstance(node, logical.Join):
            return collect(node.left) + collect(node.right)
        # Scope boundary: subtrees below start their own scopes.
        for child in node.children():
            enter(child)
        return []

    def enter(node: logical.LogicalPlan) -> None:
        scopes.append(collect(node))

    enter(plan)
    return scopes


def check_logical_invariants(
    plan: logical.LogicalPlan, stage: str = "plan"
) -> List[Finding]:
    """All structural findings for one logical plan tree (empty = valid)."""
    findings: List[Finding] = []

    def walk(node: logical.LogicalPlan) -> None:
        label = type(node).__name__
        if isinstance(node, logical.Filter):
            width = len(node.child.output_schema())
            _check_exprs([("predicate", node.predicate)], width, label, stage, findings)
            _check_boolean(node.predicate, label, "predicate", stage, findings)
        elif isinstance(node, logical.Project):
            width = len(node.child.output_schema())
            _check_exprs(
                [(f"expression {i}", e) for i, e in enumerate(node.exprs)],
                width,
                label,
                stage,
                findings,
            )
            if len(node.exprs) != len(node.names):
                findings.append(
                    _finding(
                        _RULE_SCHEMA,
                        f"{label}: {len(node.exprs)} expressions but "
                        f"{len(node.names)} output names",
                        stage,
                    )
                )
        elif isinstance(node, logical.Join):
            width = len(node.left.output_schema()) + len(node.right.output_schema())
            if node.condition is not None:
                _check_exprs([("condition", node.condition)], width, label, stage, findings)
                _check_boolean(node.condition, label, "condition", stage, findings)
        elif isinstance(node, logical.Aggregate):
            width = len(node.child.output_schema())
            exprs = [(f"group key {i}", e) for i, e in enumerate(node.group_exprs)]
            exprs.extend(
                (f"aggregate {spec.to_sql()}", spec.arg)
                for spec in node.aggregates
                if spec.arg is not None
            )
            _check_exprs(exprs, width, label, stage, findings)
        elif isinstance(node, logical.Sort):
            width = len(node.child.output_schema())
            _check_exprs(
                [(f"sort key {i}", e) for i, (e, _) in enumerate(node.keys)],
                width,
                label,
                stage,
                findings,
            )
        elif isinstance(node, logical.SetOp):
            left_width = len(node.left.output_schema())
            right_width = len(node.right.output_schema())
            if left_width != right_width:
                findings.append(
                    _finding(
                        _RULE_SCHEMA,
                        f"{label}: operands have {left_width} and {right_width} columns",
                        stage,
                    )
                )
        for child in node.children():
            walk(child)

    walk(plan)
    for scope in _alias_scopes(plan):
        seen = set()
        for alias in scope:
            if alias in seen:
                findings.append(
                    _finding(
                        _RULE_ALIASES,
                        f"duplicate scan alias {alias!r} makes qualified "
                        "references ambiguous",
                        stage,
                    )
                )
            seen.add(alias)
    return findings


def check_schema_preserved(
    baseline: Schema, schema: Schema, stage: str = "plan"
) -> List[Finding]:
    """Findings when ``schema`` drifted from the binder's ``baseline``."""
    findings: List[Finding] = []
    if len(baseline) != len(schema):
        findings.append(
            _finding(
                _RULE_SCHEMA,
                f"output width changed: {len(baseline)} columns became {len(schema)}",
                stage,
            )
        )
        return findings
    for i, (before, after) in enumerate(zip(baseline.columns, schema.columns)):
        if before.name != after.name:
            findings.append(
                _finding(
                    _RULE_SCHEMA,
                    f"output column {i} renamed: {before.name!r} became {after.name!r}",
                    stage,
                )
            )
        if not _types_compatible(before.dtype, after.dtype):
            findings.append(
                _finding(
                    _RULE_SCHEMA,
                    f"output column {i} ({before.name!r}) changed type: "
                    f"{before.dtype.value} became {after.dtype.value}",
                    stage,
                )
            )
    return findings


def _types_compatible(before: DataType, after: DataType) -> bool:
    """Exact match, modulo the untyped NULL literal on either side."""
    return before == after or DataType.NULL in (before, after)


# --------------------------------------------------------------------------
# Physical plan invariants
# --------------------------------------------------------------------------


def check_physical_invariants(
    plan: phys.PhysicalPlan, stage: str = "physical"
) -> List[Finding]:
    """Structural + cardinality findings for one physical plan tree."""
    findings: List[Finding] = []

    def walk(node: phys.PhysicalPlan) -> None:
        label = type(node).__name__
        rows = node.estimated_rows()
        if rows < 0 or rows != rows or rows == float("inf"):
            findings.append(
                _finding(
                    _RULE_CARDINALITY,
                    f"{label}: cardinality estimate {rows!r} is not a finite "
                    "non-negative number",
                    stage,
                )
            )
        if isinstance(node, (phys.PFilter, phys.PLimit, phys.PDistinct)):
            child_rows = node.child.estimated_rows()
            if rows > child_rows * (1.0 + _CARDINALITY_SLACK) + _CARDINALITY_SLACK:
                findings.append(
                    _finding(
                        _RULE_CARDINALITY,
                        f"{label}: claims {rows:.3f} rows from a child with "
                        f"{child_rows:.3f} — a row-reducing operator grew its input",
                        stage,
                    )
                )
        if isinstance(node, phys.PFilter):
            width = len(node.child.schema)
            _check_exprs([("predicate", node.predicate)], width, label, stage, findings)
            _check_boolean(node.predicate, label, "predicate", stage, findings)
        elif isinstance(node, phys.PProject):
            width = len(node.child.schema)
            _check_exprs(
                [(f"expression {i}", e) for i, e in enumerate(node.exprs)],
                width,
                label,
                stage,
                findings,
            )
        elif isinstance(node, phys.PIndexScan):
            width = len(node.schema)
            if not 0 <= node.column_index < width:
                findings.append(
                    _finding(
                        _RULE_COLUMNS,
                        f"{label}: index column #{node.column_index} outside "
                        f"schema of width {width}",
                        stage,
                    )
                )
            if node.residual is not None:
                _check_exprs([("residual", node.residual)], width, label, stage, findings)
                _check_boolean(node.residual, label, "residual", stage, findings)
        elif isinstance(node, phys.PHashJoin):
            left_width = len(node.left.schema)
            right_width = len(node.right.schema)
            _check_exprs(
                [(f"left key {i}", k) for i, k in enumerate(node.left_keys)],
                left_width,
                label,
                stage,
                findings,
            )
            _check_exprs(
                [(f"right key {i}", k) for i, k in enumerate(node.right_keys)],
                right_width,
                label,
                stage,
                findings,
            )
            if node.residual is not None:
                _check_exprs(
                    [("residual", node.residual)],
                    left_width + right_width,
                    label,
                    stage,
                    findings,
                )
        elif isinstance(node, phys.PNestedLoopJoin):
            if node.condition is not None:
                width = len(node.left.schema) + len(node.right.schema)
                _check_exprs([("condition", node.condition)], width, label, stage, findings)
                _check_boolean(node.condition, label, "condition", stage, findings)
        elif isinstance(node, phys.PAggregate):
            width = len(node.child.schema)
            exprs = [(f"group key {i}", e) for i, e in enumerate(node.group_exprs)]
            exprs.extend(
                (f"aggregate {spec.to_sql()}", spec.arg)
                for spec in node.aggregates
                if spec.arg is not None
            )
            _check_exprs(exprs, width, label, stage, findings)
        elif isinstance(node, phys.PSort):
            width = len(node.child.schema)
            _check_exprs(
                [(f"sort key {i}", e) for i, (e, _) in enumerate(node.keys)],
                width,
                label,
                stage,
                findings,
            )
        elif isinstance(node, phys.PParallelScan):
            # Fused filter/project bind against the *base table* schema, not
            # the (possibly projected) output schema.
            width = len(node.base_schema)
            if node.predicate is not None:
                _check_exprs([("predicate", node.predicate)], width, label, stage, findings)
                _check_boolean(node.predicate, label, "predicate", stage, findings)
            if node.exprs is not None:
                _check_exprs(
                    [(f"expression {i}", e) for i, e in enumerate(node.exprs)],
                    width,
                    label,
                    stage,
                    findings,
                )
                if len(node.exprs) != len(node.schema):
                    findings.append(
                        _finding(
                            _RULE_SCHEMA,
                            f"{label}: {len(node.exprs)} projection expressions "
                            f"but {len(node.schema)} output columns",
                            stage,
                        )
                    )
            elif len(node.base_schema) != len(node.schema):
                findings.append(
                    _finding(
                        _RULE_SCHEMA,
                        f"{label}: identity projection but base width "
                        f"{len(node.base_schema)} != output width {len(node.schema)}",
                        stage,
                    )
                )
            if node.workers < 1:
                findings.append(
                    _finding(
                        _RULE_CARDINALITY,
                        f"{label}: workers={node.workers} — a parallel operator "
                        "reached the executor with no workers",
                        stage,
                    )
                )
        elif isinstance(node, phys.PTwoPhaseAggregate):
            width = len(node.child.schema)
            exprs = [(f"group key {i}", e) for i, e in enumerate(node.group_exprs)]
            exprs.extend(
                (f"aggregate {spec.to_sql()}", spec.arg)
                for spec in node.aggregates
                if spec.arg is not None
            )
            _check_exprs(exprs, width, label, stage, findings)
            if node.workers < 1:
                findings.append(
                    _finding(
                        _RULE_CARDINALITY,
                        f"{label}: workers={node.workers} — a parallel operator "
                        "reached the executor with no workers",
                        stage,
                    )
                )
        elif isinstance(node, phys.PParallelSort):
            width = len(node.child.schema)
            _check_exprs(
                [(f"sort key {i}", e) for i, (e, _) in enumerate(node.keys)],
                width,
                label,
                stage,
                findings,
            )
            if node.workers < 1:
                findings.append(
                    _finding(
                        _RULE_CARDINALITY,
                        f"{label}: workers={node.workers} — a parallel operator "
                        "reached the executor with no workers",
                        stage,
                    )
                )
            if node.limit_hint is not None and node.limit_hint < 0:
                findings.append(
                    _finding(
                        _RULE_CARDINALITY,
                        f"{label}: negative top-N hint {node.limit_hint}",
                        stage,
                    )
                )
        elif isinstance(node, phys.PPartitionedHashJoin):
            left_width = len(node.left.schema)
            right_width = len(node.right.schema)
            _check_exprs(
                [(f"left key {i}", k) for i, k in enumerate(node.left_keys)],
                left_width,
                label,
                stage,
                findings,
            )
            _check_exprs(
                [(f"right key {i}", k) for i, k in enumerate(node.right_keys)],
                right_width,
                label,
                stage,
                findings,
            )
            if node.residual is not None:
                _check_exprs(
                    [("residual", node.residual)],
                    left_width + right_width,
                    label,
                    stage,
                    findings,
                )
            if node.workers < 1 or node.partitions < 1:
                findings.append(
                    _finding(
                        _RULE_CARDINALITY,
                        f"{label}: workers={node.workers}, "
                        f"partitions={node.partitions} — a parallel join needs "
                        "at least one of each",
                        stage,
                    )
                )
        for child in node.children():
            walk(child)

    walk(plan)
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


class PlanVerifier:
    """Asserts invariants across one query's optimization pipeline.

    Construct with the freshly bound plan; the constructor snapshots the
    baseline output schema and validates the bound tree itself (stage
    ``"bind"``), so a binder bug is caught before any rewrite runs.
    """

    def __init__(self, bound_plan: logical.LogicalPlan):
        self.baseline: Schema = bound_plan.output_schema()
        self.stages_checked: List[str] = []
        self.check("bind", bound_plan)

    def check(self, stage: str, plan: logical.LogicalPlan) -> None:
        """Validate a logical plan; raises :class:`PlanInvariantViolation`."""
        findings = check_logical_invariants(plan, stage)
        findings.extend(check_schema_preserved(self.baseline, plan.output_schema(), stage))
        self.stages_checked.append(stage)
        if findings:
            raise PlanInvariantViolation(stage, findings)

    def check_physical(self, stage: str, plan: phys.PhysicalPlan) -> None:
        """Validate the lowered physical plan."""
        findings = check_physical_invariants(plan, stage)
        findings.extend(check_schema_preserved(self.baseline, plan.schema, stage))
        self.stages_checked.append(stage)
        if findings:
            raise PlanInvariantViolation(stage, findings)
