"""Fixture: threading locks held across await points (rule 2).

A ``threading.Lock`` held while the coroutine suspends blocks every other
thread contending for it for as long as the event loop takes to resume —
and deadlocks outright if the resumption needs the lock.  Both the
``with`` form and the manual acquire/release form must be flagged.
"""

import asyncio
import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data = {}

    async def refresh(self, key: str) -> None:
        with self._lock:  # MARK: with-held-across-await
            value = await fetch_remote(key)
            self._data[key] = value

    async def refresh_manual(self, key: str) -> None:
        self._lock.acquire()  # MARK: manual-held-across-await
        value = await fetch_remote(key)
        self._data[key] = value
        self._lock.release()


async def fetch_remote(key: str) -> str:
    await asyncio.sleep(0.01)
    return key.upper()
