"""Lock manager with shared/exclusive modes and deadlock detection.

Locks are keyed by arbitrary hashable resources.  Blocked acquirers register
edges in a waits-for graph; before sleeping (and periodically while waiting)
the requester runs a cycle check and aborts itself with
:class:`~repro.core.errors.DeadlockError` if it closes a cycle — a
detect-and-abort-self policy, which keeps victims deterministic for tests.
The exception carries the victim id, the contested key, the victim's held
keys, and the waits-for cycle, so sanitizer findings and user errors can
name the actual conflict instead of just "deadlock".

Lock upgrades (S → X by the sole shared holder) are supported, since
read-modify-write is the OLTP workload's bread and butter.

When a :class:`~repro.txn.trace.ScheduleRecorder` is attached, every grant
and early (single-key) release is logged from inside the lock table's own
latch, so event order matches grant order — the input the lock-order
inversion analysis needs.  End-of-transaction ``release_all`` logs nothing;
the scheme's COMMIT/ABORT event already marks the release point.
"""

from __future__ import annotations

import enum
import threading
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Set

from repro.core.errors import DeadlockError, LockTimeoutError
from repro.txn.trace import LOCK, UNLOCK, ScheduleRecorder


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class _LockState:
    __slots__ = ("holders",)

    def __init__(self):
        # txn_id -> mode currently held
        self.holders: Dict[int, LockMode] = {}


class LockManager:
    """S/X lock table with waits-for deadlock detection."""

    def __init__(self, wait_timeout: float = 10.0):
        self.wait_timeout = wait_timeout
        self._locks: Dict[Hashable, _LockState] = {}
        self._waits_for: Dict[int, Set[int]] = defaultdict(set)
        self._held: Dict[int, Set[Hashable]] = defaultdict(set)
        self._cond = threading.Condition()
        self.deadlocks_detected = 0
        self.recorder: Optional[ScheduleRecorder] = None

    # -- public API -----------------------------------------------------------

    def acquire(self, txn_id: int, key: Hashable, mode: LockMode) -> None:
        """Block until the lock is granted; raises DeadlockError on cycles
        and LockTimeoutError when the wait exceeds ``wait_timeout``."""
        waited = 0.0
        step = 0.05
        with self._cond:
            while True:
                state = self._locks.get(key)
                if state is None:
                    state = _LockState()
                    self._locks[key] = state
                blockers = self._blockers(state, txn_id, mode)
                if not blockers:
                    self._grant(state, txn_id, mode, key)
                    self._waits_for.pop(txn_id, None)
                    return
                self._waits_for[txn_id] = set(blockers)
                cycle = self._find_cycle(txn_id)
                if cycle is not None:
                    self._waits_for.pop(txn_id, None)
                    self.deadlocks_detected += 1
                    self._cond.notify_all()
                    raise DeadlockError(
                        f"txn {txn_id} aborted: deadlock on {key!r} "
                        f"(cycle {' -> '.join(str(t) for t in cycle)}; "
                        f"held {sorted(map(repr, self._held.get(txn_id, ())))})",
                        txn_id=txn_id,
                        key=key,
                        held_keys=set(self._held.get(txn_id, ())),
                        cycle=cycle,
                    )
                if not self._cond.wait(timeout=step):
                    waited += step
                    if waited >= self.wait_timeout:
                        self._waits_for.pop(txn_id, None)
                        raise LockTimeoutError(
                            f"txn {txn_id} timed out waiting for {key!r} "
                            f"(held by {sorted(blockers)}; "
                            f"held {sorted(map(repr, self._held.get(txn_id, ())))})",
                            txn_id=txn_id,
                            key=key,
                            held_keys=set(self._held.get(txn_id, ())),
                            blockers=sorted(blockers),
                        )

    def would_block(self, txn_id: int, key: Hashable, mode: LockMode) -> bool:
        """Whether ``acquire`` would have to wait right now.

        Used by the deterministic schedule fuzzer to interleave transactions
        from a single driver thread: a request that would block is deferred
        instead of deadlocking the driver."""
        with self._cond:
            state = self._locks.get(key)
            if state is None:
                return False
            return bool(self._blockers(state, txn_id, mode))

    def release(self, txn_id: int, key: Hashable) -> None:
        """Release one lock early (non-strict schemes; also used by tests to
        build deliberately broken 2PL variants)."""
        with self._cond:
            state = self._locks.get(key)
            if state is not None and txn_id in state.holders:
                del state.holders[txn_id]
                if not state.holders:
                    del self._locks[key]
                self._held[txn_id].discard(key)
                if self.recorder is not None:
                    self.recorder.record(txn_id, UNLOCK, key)
            self._cond.notify_all()

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by a transaction (commit/abort).

        Deliberately records no UNLOCK events: end-of-transaction release
        is implied by the COMMIT/ABORT event the scheme logs, and the
        lock-order analyzer clears its held-set there — per-key events
        here would double the trace volume of every 2PL transaction.
        """
        with self._cond:
            for key in list(self._held.get(txn_id, ())):
                state = self._locks.get(key)
                if state is not None:
                    state.holders.pop(txn_id, None)
                    if not state.holders:
                        del self._locks[key]
            self._held.pop(txn_id, None)
            self._waits_for.pop(txn_id, None)
            self._cond.notify_all()

    def holds(self, txn_id: int, key: Hashable) -> Optional[LockMode]:
        with self._cond:
            state = self._locks.get(key)
            if state is None:
                return None
            return state.holders.get(txn_id)

    def held_keys(self, txn_id: int) -> Set[Hashable]:
        with self._cond:
            return set(self._held.get(txn_id, ()))

    # -- internals --------------------------------------------------------------

    def _blockers(
        self, state: _LockState, txn_id: int, mode: LockMode
    ) -> List[int]:
        """Transactions that prevent ``txn_id`` from taking ``mode`` now."""
        current = state.holders.get(txn_id)
        if mode is LockMode.SHARED:
            if current is not None:
                return []  # S under S or X: already compatible
            return [t for t, m in state.holders.items() if m is LockMode.EXCLUSIVE]
        # EXCLUSIVE request:
        if current is LockMode.EXCLUSIVE:
            return []
        # Upgrade or fresh X: everyone else must be gone.
        return [t for t in state.holders if t != txn_id]

    def _grant(
        self, state: _LockState, txn_id: int, mode: LockMode, key: Hashable
    ) -> None:
        current = state.holders.get(txn_id)
        if current is LockMode.EXCLUSIVE:
            return  # X subsumes everything
        granted = mode if current is None or mode is LockMode.EXCLUSIVE else current
        state.holders[txn_id] = granted
        self._held[txn_id].add(key)
        rec = self.recorder
        if rec is not None and granted is not current:
            rec.buffer.append((txn_id, LOCK, key, granted.value))

    def _find_cycle(self, start: int) -> Optional[List[int]]:
        """DFS from ``start`` through the waits-for graph; returns the cycle
        path ``[start, ..., start]`` if one closes, else None."""
        path: List[int] = [start]
        seen: Set[int] = set()

        def visit(node: int) -> Optional[List[int]]:
            for nxt in self._waits_for.get(node, ()):
                if nxt == start:
                    return path + [start]
                if nxt in seen:
                    continue
                seen.add(nxt)
                path.append(nxt)
                found = visit(nxt)
                if found is not None:
                    return found
                path.pop()
            return None

        return visit(start)
