"""Declarative model base and relationships."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Type

from repro.core.errors import ReproError
from repro.core.types import Column, Schema
from repro.orm.fields import Field, ForeignKeyField


class ModelMeta(type):
    """Collects Field descriptors into ``__fields__`` and a table schema."""

    def __new__(mcls, name, bases, namespace):
        cls = super().__new__(mcls, name, bases, namespace)
        if namespace.get("__abstract__"):
            return cls
        fields: Dict[str, Field] = {}
        for base in reversed(cls.__mro__[1:]):
            fields.update(getattr(base, "__fields__", {}))
        for key, value in namespace.items():
            if isinstance(value, Field):
                fields[key] = value
        cls.__fields__ = fields
        if fields:
            if not getattr(cls, "__tablename__", None):
                cls.__tablename__ = name.lower() + "s"
            primary = [f for f in fields.values() if f.primary_key]
            if len(primary) != 1:
                raise ReproError(
                    f"model {name} needs exactly one primary-key field, "
                    f"found {len(primary)}"
                )
            cls.__pk__ = primary[0].name
        return cls


class Model(metaclass=ModelMeta):
    """Base class for mapped objects."""

    __abstract__ = True
    __fields__: Dict[str, Field] = {}
    __tablename__: Optional[str] = None
    __pk__: str = ""

    def __init__(self, **values: Any):
        unknown = set(values) - set(self.__fields__)
        if unknown:
            raise ReproError(f"unknown fields for {type(self).__name__}: {sorted(unknown)}")
        for name in self.__fields__:
            setattr(self, name, values.get(name))
        self._session = None

    # -- mapping helpers ----------------------------------------------------

    @classmethod
    def schema(cls) -> Schema:
        columns = [
            Column(f.name, f.dtype, nullable=f.nullable)
            for f in cls.__fields__.values()
        ]
        return Schema(columns)

    @classmethod
    def field_names(cls) -> List[str]:
        return list(cls.__fields__)

    def to_row(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__fields__)

    @classmethod
    def from_row(cls, row: tuple) -> "Model":
        obj = cls(**dict(zip(cls.field_names(), row)))
        return obj

    @property
    def pk(self) -> Any:
        return getattr(self, self.__pk__)

    @classmethod
    def relate(cls, name: str, target: Type["Model"], foreign_key: str) -> None:
        """Attach a one-to-many relationship after both classes exist::

            Author.relate("books", Book, foreign_key="author_id")
        """
        descriptor = HasMany(target, foreign_key, name)
        setattr(cls, name, descriptor)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{n}={getattr(self, n)!r}" for n in self.__fields__)
        return f"{type(self).__name__}({pairs})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.to_row() == other.to_row()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.pk))


class HasMany:
    """One-to-many relationship descriptor.

    Default loading is **lazy**: the first attribute access issues one
    ``SELECT ... WHERE fk = pk`` per parent object — the N+1 pattern.  The
    session's ``eager`` option pre-populates ``_loaded`` from a single JOIN.
    """

    def __init__(self, target: Type[Model], foreign_key: str, name: str = ""):
        self.target = target
        self.foreign_key = foreign_key
        self.name = name

    def __set_name__(self, owner, name):
        self.name = name

    def cache_key(self) -> str:
        return f"_loaded_{self.name}"

    def __get__(self, instance, owner):
        if instance is None:
            return self
        cached = instance.__dict__.get(self.cache_key())
        if cached is not None:
            return cached
        session = getattr(instance, "_session", None)
        if session is None:
            raise ReproError(
                f"{owner.__name__}.{self.name} accessed outside a session"
            )
        children = session.query(self.target).filter(
            **{self.foreign_key: instance.pk}
        ).all()
        instance.__dict__[self.cache_key()] = children
        return children

    def populate(self, instance, children: List[Model]) -> None:
        instance.__dict__[self.cache_key()] = children


def has_many(target: Type[Model], foreign_key: str) -> HasMany:
    """Declare a one-to-many relationship on the parent model."""
    return HasMany(target, foreign_key)
