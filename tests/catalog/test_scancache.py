"""Decoded-row scan cache: reuse, invalidation, and partial-scan safety."""

import pytest

from repro.core.database import Database
from repro.core.types import Column, DataType, Schema


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    d.insert_rows("t", [(i, f"row-{i}") for i in range(20)])
    return d


def _table(db):
    return db.catalog.get_table("t")


class TestScanCache:
    def test_completed_scan_installs_cache(self, db):
        table = _table(db)
        assert table._scan_cache is None
        rows = list(table.scan_rows())
        assert len(rows) == 20
        assert table._scan_cache is not None

    def test_second_scan_served_from_cache(self, db):
        table = _table(db)
        list(table.scan_rows())
        cached = table._scan_cache
        assert list(table.scan()) == cached
        assert table._scan_cache is cached  # not rebuilt

    def test_abandoned_scan_does_not_install(self, db):
        table = _table(db)
        it = table.scan_rows()
        next(it)
        it.close()
        assert table._scan_cache is None

    @pytest.mark.parametrize("write", ["insert", "delete", "update"])
    def test_writes_invalidate(self, db, write):
        table = _table(db)
        list(table.scan_rows())
        assert table._scan_cache is not None
        if write == "insert":
            table.insert((99, "new"))
        elif write == "delete":
            db.execute("DELETE FROM t WHERE a = 0")
        else:
            db.execute("UPDATE t SET b = 'x' WHERE a = 1")
        assert table._scan_cache is None

    def test_write_during_scan_blocks_install(self, db):
        table = _table(db)
        it = table.scan()
        next(it)
        table.insert((99, "mid-scan"))
        list(it)  # drain to completion
        assert table._scan_cache is None  # snapshot raced a write

    def test_queries_see_fresh_data_after_cached_scan(self, db):
        for engine in ("volcano", "vectorized"):
            before = db.execute("SELECT COUNT(*) FROM t", engine=engine).rows[0][0]
            db.execute("INSERT INTO t VALUES (1000, 'fresh')")
            after = db.execute("SELECT COUNT(*) FROM t", engine=engine).rows[0][0]
            assert after == before + 1

    def test_large_tables_are_not_cached(self, db, monkeypatch):
        from repro.catalog import catalog as catalog_mod

        monkeypatch.setattr(catalog_mod, "SCAN_CACHE_MAX_ROWS", 5)
        table = _table(db)
        assert list(table.scan_rows())  # 20 rows > cap
        assert table._scan_cache is None

    def test_column_layout_also_cached(self):
        db = Database()
        schema = Schema(
            (Column("a", DataType.INTEGER), Column("b", DataType.TEXT))
        )
        table = db.catalog.create_table("c", schema, layout="column")
        table.insert_many([(i, str(i)) for i in range(5)])
        assert list(table.scan_rows()) == [(i, str(i)) for i in range(5)]
        assert table._scan_cache is not None
        table.insert((5, "5"))
        assert table._scan_cache is None
