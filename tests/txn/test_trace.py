"""Schedule recorder: event log, logical clock, trace persistence."""

import json
import threading

import pytest

from repro.txn import trace
from repro.txn.trace import ScheduleEvent, ScheduleRecorder, load_trace


def test_record_assigns_increasing_seq():
    rec = ScheduleRecorder(scheme="2pl")
    s1 = rec.record(1, trace.BEGIN)
    s2 = rec.record(1, trace.READ, key="x")
    s3 = rec.record(1, trace.COMMIT)
    assert (s1, s2, s3) == (1, 2, 3)
    events = rec.events()
    assert [e.op for e in events] == [trace.BEGIN, trace.READ, trace.COMMIT]
    assert [e.seq for e in events] == [1, 2, 3]
    assert events[1].key == "x"


def test_clear_resets_clock():
    rec = ScheduleRecorder()
    rec.record(1, trace.BEGIN)
    rec.clear()
    assert len(rec) == 0
    assert rec.record(2, trace.BEGIN) == 1


def test_event_format_mentions_everything():
    event = ScheduleEvent(seq=7, txn_id=3, op=trace.LOCK, key="x", mode="X")
    text = event.format()
    assert "@7" in text and "txn 3" in text and "lock" in text and "[X]" in text


def test_concurrent_recording_keeps_seq_unique():
    rec = ScheduleRecorder()
    barrier = threading.Barrier(4)

    def hammer(txn_id):
        barrier.wait()
        for _ in range(200):
            rec.record(txn_id, trace.READ, key="k")

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seqs = [e.seq for e in rec.events()]
    assert len(seqs) == 800
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 800


def test_dump_load_roundtrip(tmp_path):
    rec = ScheduleRecorder(scheme="database")
    rec.record(1, trace.BEGIN)
    rec.record(1, trace.WRITE, key=("t", (0, 0)))
    rec.record(1, trace.LOCK, key="x", mode="S")
    rec.record(1, trace.COMMIT)
    path = str(tmp_path / "trace.jsonl")
    assert rec.dump(path) == 4
    scheme, events = load_trace(path)
    assert scheme == "database"
    assert events == rec.events()
    # tuple keys survive (JSON has no tuples; they are tagged)
    assert events[1].key == ("t", (0, 0))


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(ValueError, match="not JSON"):
        load_trace(str(path))
    path.write_text(json.dumps({"format": 1, "scheme": "2pl"}) + "\n" + json.dumps({"seq": 1, "txn": 1, "op": "teleport"}) + "\n")
    with pytest.raises(ValueError, match="unknown op"):
        load_trace(str(path))


def test_sanitize_enabled_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not trace.sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not trace.sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert trace.sanitize_enabled()
