"""Differential testing against sqlite3 as the ground-truth oracle.

Hundreds of randomized INSERT/UPDATE/DELETE/SELECT sequences run twice —
once through this engine, once through the stdlib ``sqlite3`` — and every
SELECT's result multiset must match.  Bugs in predicate evaluation, update
targeting, transaction rollback, or aggregate math surface as a divergence
long before a handwritten test would have caught them.

Sequences are seeded, so a failure reproduces exactly: the assertion names
the seed and the statement that diverged.

The default run covers ``NUM_SEQUENCES`` seeds per engine; set
``REPRO_NIGHTLY=1`` to multiply the coverage (the CI nightly job does).
"""

import sqlite3

import pytest

from repro.core.database import Database

from tests.differential.sequences import canon as _canon
from tests.differential.sequences import num_sequences as _num_sequences
from tests.differential.sequences import sequence


def _run_sequence(seed: int, engine: str):
    db = Database(engine=engine)
    db.execute("CREATE TABLE t (id INTEGER, name TEXT, val FLOAT)")
    lite = sqlite3.connect(":memory:", isolation_level=None)
    lite.execute("CREATE TABLE t (id INTEGER, name TEXT, val FLOAT)")
    try:
        for step, sql in enumerate(sequence(seed)):
            ours = db.execute(sql)
            theirs = lite.execute(sql).fetchall()
            if sql.startswith("SELECT"):
                assert _canon(ours.rows) == _canon(theirs), (
                    f"divergence at seed={seed} step={step} engine={engine}: "
                    f"{sql!r}\n  ours:   {_canon(ours.rows)[:10]}\n"
                    f"  sqlite: {_canon(theirs)[:10]}"
                )
        # Final full-table check: the cumulative effect of every DML agrees.
        # (sequence() already closes any trailing open transaction.)
        final_ours = db.execute("SELECT id, name, val FROM t").rows
        final_theirs = lite.execute("SELECT id, name, val FROM t").fetchall()
        assert _canon(final_ours) == _canon(final_theirs), (
            f"final state diverged at seed={seed} engine={engine}"
        )
    finally:
        lite.close()


@pytest.mark.parametrize("seed", range(_num_sequences()))
def test_volcano_matches_sqlite(seed):
    _run_sequence(seed, "volcano")


@pytest.mark.parametrize("seed", range(_num_sequences()))
def test_vectorized_matches_sqlite(seed):
    _run_sequence(seed, "vectorized")


def test_known_tricky_statements():
    """Deterministic spot-checks the fuzzer statistically covers."""
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER, name TEXT, val FLOAT)")
    lite = sqlite3.connect(":memory:", isolation_level=None)
    lite.execute("CREATE TABLE t (id INTEGER, name TEXT, val FLOAT)")
    statements = [
        "INSERT INTO t VALUES (1, 'alpha', 1.5), (2, 'beta', 2.5), (1, 'alpha', 1.5)",
        "UPDATE t SET id = id + 1 WHERE id >= 1",  # self-referential shift
        "DELETE FROM t WHERE id = 2 AND name = 'alpha'",
        "BEGIN",
        "INSERT INTO t VALUES (9, 'omega', 9.5)",
        "ROLLBACK",
        "SELECT COUNT(*), SUM(val) FROM t WHERE id >= 0",
        "SELECT id, name, val FROM t WHERE id > 0 OR val < 100.5",
    ]
    for sql in statements:
        ours = db.execute(sql)
        theirs = lite.execute(sql).fetchall()
        if sql.startswith("SELECT"):
            assert _canon(ours.rows) == _canon(theirs), sql
    assert _canon(db.execute("SELECT id, name, val FROM t").rows) == _canon(
        lite.execute("SELECT id, name, val FROM t").fetchall()
    )
    lite.close()
