"""End-to-end crash recovery through the live transaction path.

Unlike ``test_durability.py`` (which drives ``restore_from_wal`` by hand),
these tests exercise the wired-in path: every committed DML is logged
automatically, and reopening a database after an unclean exit runs
analyze/redo/undo inside ``Database.__init__``.
"""

import os

import pytest

from repro.core.database import Database
from repro.core.errors import TransactionError
from repro.storage.wal import LogRecordType


def _crash(db):
    """Abandon a database without close(): flush nothing, drop handles."""
    db.wal.close()
    db.disk.close()


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "data.db")


class TestLiveRecovery:
    def test_committed_rows_survive_unclean_exit(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        _crash(db)
        recovered = Database(path=db_path)
        assert recovered.recovery_stats == {"t": 2}
        assert recovered.execute("SELECT a, b FROM t ORDER BY a").rows == [
            (1, "x"),
            (2, "y"),
        ]
        recovered.close()

    def test_uncommitted_txn_rolled_back_by_recovery(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (2)")
        db.wal.flush()  # even durable records of an open txn must not apply
        _crash(db)
        recovered = Database(path=db_path)
        assert recovered.execute("SELECT a FROM t").rows == [(1,)]
        recovered.close()

    def test_update_and_delete_replay(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        db.execute("UPDATE t SET b = 'updated' WHERE a = 1")
        db.execute("DELETE FROM t WHERE a = 2")
        _crash(db)
        recovered = Database(path=db_path)
        assert recovered.execute("SELECT a, b FROM t ORDER BY a").rows == [
            (1, "updated"),
            (3, "z"),
        ]
        recovered.close()

    def test_moved_row_update_not_duplicated(self, db_path):
        # An update that grows a row past its slot moves it to a new rid.
        # Replay must not resurrect both the old and the new image.
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'small')")
        db.execute("INSERT INTO t VALUES (2, 'pad'), (3, 'pad')")
        db.execute(f"UPDATE t SET b = '{'x' * 2000}' WHERE a = 1")
        _crash(db)
        recovered = Database(path=db_path)
        assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == 3
        assert (
            recovered.execute("SELECT COUNT(*) FROM t WHERE a = 1").scalar() == 1
        )
        assert recovered.execute(
            "SELECT b FROM t WHERE a = 1"
        ).scalar() == "x" * 2000
        recovered.close()

    def test_explicit_rollback_not_replayed(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (99)")
        db.execute("ROLLBACK")
        db.execute("INSERT INTO t VALUES (1)")
        _crash(db)
        recovered = Database(path=db_path)
        assert recovered.execute("SELECT a FROM t").rows == [(1,)]
        recovered.close()

    def test_indexes_rebuilt_by_recovery(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.insert_rows("t", [(i, f"r{i}") for i in range(200)])
        db.execute("CREATE INDEX idx_a ON t (a)")
        _crash(db)
        recovered = Database(path=db_path)
        recovered.analyze()
        assert "IndexScan" in recovered.explain("SELECT b FROM t WHERE a = 7")
        assert recovered.execute("SELECT b FROM t WHERE a = 7").scalar() == "r7"
        recovered.close()

    def test_ddl_after_crash_recovery(self, db_path):
        # DROP + CREATE sequences must replay in LSN order.
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute("INSERT INTO t VALUES (5, 'new')")
        _crash(db)
        recovered = Database(path=db_path)
        assert recovered.execute("SELECT a, b FROM t").rows == [(5, "new")]
        recovered.close()

    def test_recovery_after_checkpoint(self, db_path):
        db = Database(path=db_path, checkpoint_interval=5)
        db.execute("CREATE TABLE t (a INTEGER)")
        for i in range(20):  # crosses several checkpoint boundaries
            db.execute(f"INSERT INTO t VALUES ({i})")
        _crash(db)
        recovered = Database(path=db_path)
        assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == 20
        recovered.close()

    def test_repeated_crash_recover_cycles(self, db_path):
        for round_no in range(4):
            db = Database(path=db_path)
            if round_no == 0:
                db.execute("CREATE TABLE t (a INTEGER)")
            db.execute(f"INSERT INTO t VALUES ({round_no})")
            _crash(db)
        final = Database(path=db_path)
        assert final.execute("SELECT a FROM t ORDER BY a").rows == [
            (0,),
            (1,),
            (2,),
            (3,),
        ]
        final.close()

    def test_clean_close_fast_attaches(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.close()
        reopened = Database(path=db_path)
        assert reopened.recovery_stats is None  # no recovery ran
        assert reopened.execute("SELECT a FROM t").rows == [(1,)]
        reopened.close()

    def test_statement_atomicity_on_failure(self, db_path):
        # A multi-row INSERT that fails half-way must leave nothing behind.
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        with pytest.raises(Exception):
            db.insert_rows("t", [(1,), (2,), (None,)])
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0
        _crash(db)
        recovered = Database(path=db_path)
        assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == 0
        recovered.close()


class TestDurabilityModes:
    def test_durability_none_disables_wal(self, db_path):
        db = Database(path=db_path, durability="none")
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.wal.records() == []
        assert not os.path.exists(db_path + ".wal")
        db.close()

    def test_unknown_durability_rejected(self, db_path):
        with pytest.raises(Exception, match="durability"):
            Database(path=db_path, durability="paranoid")

    def test_file_backed_defaults_to_fsync(self, db_path):
        db = Database(path=db_path)
        assert db.durability == "fsync"
        db.close()

    def test_memory_database_defaults_to_commit(self):
        db = Database()
        assert db.durability == "commit"
        db.close()


class TestCheckpoint:
    def test_checkpoint_compacts_log(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER)")
        for i in range(100):
            db.execute(f"INSERT INTO t VALUES ({i})")
        size_before = os.path.getsize(db_path + ".wal")
        db.checkpoint()
        size_after = os.path.getsize(db_path + ".wal")
        assert size_after < size_before
        db.close()
        reopened = Database(path=db_path)
        assert reopened.execute("SELECT COUNT(*) FROM t").scalar() == 100
        reopened.close()

    def test_checkpoint_marker_written(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.checkpoint()
        assert any(
            r.type is LogRecordType.CHECKPOINT for r in db.wal.records()
        )
        db.close()

    def test_checkpoint_inside_txn_rejected(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("BEGIN")
        with pytest.raises(TransactionError, match="checkpoint"):
            db.checkpoint()
        db.execute("ROLLBACK")
        db.close()

    def test_crash_right_after_checkpoint_recovers(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.checkpoint()
        db.execute("INSERT INTO t VALUES (2)")  # tail past the checkpoint
        _crash(db)
        recovered = Database(path=db_path)
        assert recovered.execute("SELECT a FROM t ORDER BY a").rows == [(1,), (2,)]
        recovered.close()


class TestCacheInvalidation:
    """Regression tests: stale caches after rollback / recovery replay."""

    def test_result_cache_invalidated_by_restore_from_wal(self, tmp_path):
        wal_file = str(tmp_path / "x.wal")
        db = Database(wal_path=wal_file, result_cache_size=32)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.wal.flush()

        fresh = Database(wal_path=str(tmp_path / "y.wal"), result_cache_size=32)
        fresh.execute("CREATE TABLE t (a INTEGER)")
        # Populate the result cache against the empty table...
        assert fresh.execute("SELECT COUNT(*) FROM t").scalar() == 0
        # ...then replay rewrites the table underneath it.
        fresh.restore_from_wal(wal_file)
        assert fresh.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_plan_cache_invalidated_by_restore_from_wal(self, tmp_path):
        wal_file = str(tmp_path / "x.wal")
        db = Database(wal_path=wal_file)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(i,) for i in range(10)])
        db.wal.flush()

        fresh = Database(wal_path=str(tmp_path / "y.wal"))
        fresh.execute("CREATE TABLE t (a INTEGER)")
        assert fresh.execute("SELECT a FROM t WHERE a >= 0").rows == []
        assert len(fresh.plan_cache) > 0
        fresh.restore_from_wal(wal_file)
        rows = fresh.execute("SELECT a FROM t WHERE a >= 0").rows
        assert sorted(rows) == [(i,) for i in range(10)]

    def test_plan_cache_invalidated_by_rollback(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (2)")
        # Cache a plan (and run it) while the uncommitted row is visible.
        assert sorted(db.execute("SELECT a FROM t WHERE a > 0").rows) == [
            (1,),
            (2,),
        ]
        db.execute("ROLLBACK")
        assert db.execute("SELECT a FROM t WHERE a > 0").rows == [(1,)]

    def test_result_cache_invalidated_by_rollback(self):
        db = Database(result_cache_size=32)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (7)")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0
