"""Vectorized (batch-at-a-time) execution engine.

Interprets the same physical plans as the Volcano engine but moves data in
column-major batches (default 1024 rows), amortizing interpretation overhead
and unlocking numpy kernels for numeric predicates.  Together the two
engines demonstrate physical data independence: one logical query, two
physical executions, identical answers (a tested invariant, and experiment
E8's subject).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.core.errors import ExecutionError
from repro.core.types import Row
from repro.exec import parallel
from repro.exec import physical as phys
from repro.exec.compile import evaluator
from repro.exec.vector_eval import Batch, eval_batch, normalize_mask
from repro.exec.volcano import _Accumulator, sort_rows

DEFAULT_BATCH_SIZE = 1024


def execute_vectorized(
    plan: phys.PhysicalPlan, catalog: Catalog, batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[Row]:
    """Run a physical plan with batch execution, yielding result rows."""
    for batch, n in _execute(plan, catalog, batch_size):
        for i in range(n):
            yield tuple(col[i] for col in batch)


def _execute(
    plan: phys.PhysicalPlan, catalog: Catalog, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    if isinstance(plan, phys.PSeqScan):
        yield from _seq_scan(plan, catalog, batch_size)
    elif isinstance(plan, phys.PIndexScan):
        yield from _rows_to_batches(_index_scan_rows(plan, catalog), len(plan.schema), batch_size)
    elif isinstance(plan, phys.PValues):
        yield from _rows_to_batches(iter(plan.rows), len(plan.schema), batch_size)
    elif isinstance(plan, phys.PFilter):
        yield from _filter(plan, catalog, batch_size)
    elif isinstance(plan, phys.PProject):
        yield from _project(plan, catalog, batch_size)
    elif isinstance(plan, phys.PHashJoin):
        yield from _hash_join(plan, catalog, batch_size)
    elif isinstance(plan, phys.PNestedLoopJoin):
        yield from _nested_loop_join(plan, catalog, batch_size)
    elif isinstance(plan, phys.PAggregate):
        yield from _aggregate(plan, catalog, batch_size)
    elif isinstance(plan, phys.PSetOp):
        # Set semantics are row-identity logic over materialized inputs.
        rows = _set_op_vectorized(plan, catalog, batch_size)
        yield from _rows_to_batches(iter(rows), len(plan.schema), batch_size)
    elif isinstance(plan, phys.PSort):
        rows = _materialize(plan.child, catalog, batch_size)
        ordered = sort_rows(rows, plan.keys, plan.limit_hint)
        yield from _rows_to_batches(iter(ordered), len(plan.schema), batch_size)
    elif isinstance(plan, phys.PLimit):
        yield from _limit(plan, catalog, batch_size)
    elif isinstance(plan, phys.PDistinct):
        yield from _distinct(plan, catalog, batch_size)
    elif isinstance(plan, phys.PParallelScan):
        yield from parallel.scan_batches(plan, catalog)
    elif isinstance(plan, phys.PTwoPhaseAggregate):
        rows = parallel.aggregate_rows(plan, catalog)
        yield from _rows_to_batches(iter(rows), len(plan.schema), batch_size)
    elif isinstance(plan, phys.PPartitionedHashJoin):
        right_rows = _materialize(plan.right, catalog, batch_size)
        rows = parallel.join_rows(plan, catalog, right_rows)
        yield from _rows_to_batches(iter(rows), len(plan.schema), batch_size)
    elif isinstance(plan, phys.PParallelSort):
        rows = parallel.sorted_rows(plan, catalog)
        yield from _rows_to_batches(iter(rows), len(plan.schema), batch_size)
    else:
        raise ExecutionError(f"vectorized engine cannot execute {type(plan).__name__}")


# -- sources -----------------------------------------------------------------


def _seq_scan(
    plan: phys.PSeqScan, catalog: Catalog, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    table = catalog.get_table(plan.table)
    if table.column_table is not None:
        # Native columnar path: no row pivot at all.
        for _, columns in table.column_table.batches(batch_size):
            n = len(columns[0]) if columns else 0
            if n:
                yield columns, n
        return
    yield from _rows_to_batches(table.scan_rows(), len(plan.schema), batch_size)


def _index_scan_rows(plan: phys.PIndexScan, catalog: Catalog) -> Iterator[Row]:
    from repro.exec.volcano import _index_scan

    yield from _index_scan(plan, catalog)


def _rows_to_batches(
    rows: Iterator[Row], width: int, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    # Accumulate rows and pivot each chunk with one zip(*...) call — the
    # transpose happens in C instead of a per-cell Python append loop.
    chunk: List[Row] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= batch_size:
            yield _pivot(chunk, width), len(chunk)
            chunk = []
    if chunk:
        yield _pivot(chunk, width), len(chunk)


def _materialize(plan: phys.PhysicalPlan, catalog: Catalog, batch_size: int) -> List[Row]:
    rows: List[Row] = []
    for batch, n in _execute(plan, catalog, batch_size):
        for i in range(n):
            rows.append(tuple(col[i] for col in batch))
    return rows


# -- pipeline operators ------------------------------------------------------------


def _filter(
    plan: phys.PFilter, catalog: Catalog, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    for batch, n in _execute(plan.child, catalog, batch_size):
        mask = normalize_mask(eval_batch(plan.predicate, batch, n))
        selected = [i for i in range(n) if mask[i]]
        if not selected:
            continue
        if len(selected) == n:
            yield batch, n
            continue
        yield [[col[i] for i in selected] for col in batch], len(selected)


def _project(
    plan: phys.PProject, catalog: Catalog, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    for batch, n in _execute(plan.child, catalog, batch_size):
        yield [list(eval_batch(e, batch, n)) for e in plan.exprs], n


def _hash_join(
    plan: phys.PHashJoin, catalog: Catalog, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    right_rows = _materialize(plan.right, catalog, batch_size)
    table: Dict[Tuple, List[Row]] = {}
    right_keys = [evaluator(k) for k in plan.right_keys]
    for right_row in right_rows:
        key = tuple(k(right_row) for k in right_keys)
        if any(v is None for v in key):
            continue
        table.setdefault(key, []).append(right_row)
    right_width = len(plan.right.schema)
    null_pad = (None,) * right_width
    out_width = len(plan.schema)
    residual = evaluator(plan.residual)

    out_rows: List[Row] = []
    for batch, n in _execute(plan.left, catalog, batch_size):
        key_cols = [eval_batch(k, batch, n) for k in plan.left_keys]
        for i in range(n):
            key = tuple(col[i] for col in key_cols)
            left_row = tuple(col[i] for col in batch)
            matched = False
            if not any(v is None for v in key):
                for right_row in table.get(key, ()):
                    combined = left_row + right_row
                    if residual is None or residual(combined) is True:
                        matched = True
                        out_rows.append(combined)
            if plan.is_outer and not matched:
                out_rows.append(left_row + null_pad)
            if len(out_rows) >= batch_size:
                yield _pivot(out_rows, out_width), len(out_rows)
                out_rows = []
    if out_rows:
        yield _pivot(out_rows, out_width), len(out_rows)


def _nested_loop_join(
    plan: phys.PNestedLoopJoin, catalog: Catalog, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    right_rows = _materialize(plan.right, catalog, batch_size)
    right_width = len(plan.right.schema)
    null_pad = (None,) * right_width
    out_width = len(plan.schema)
    condition = evaluator(plan.condition)
    out_rows: List[Row] = []
    for batch, n in _execute(plan.left, catalog, batch_size):
        for i in range(n):
            left_row = tuple(col[i] for col in batch)
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if condition is None or condition(combined) is True:
                    matched = True
                    out_rows.append(combined)
            if plan.is_outer and not matched:
                out_rows.append(left_row + null_pad)
            if len(out_rows) >= batch_size:
                yield _pivot(out_rows, out_width), len(out_rows)
                out_rows = []
    if out_rows:
        yield _pivot(out_rows, out_width), len(out_rows)


def _set_op_vectorized(plan, catalog: Catalog, batch_size: int) -> List[Row]:
    left_rows = _materialize(plan.left, catalog, batch_size)
    right_rows = _materialize(plan.right, catalog, batch_size)
    if plan.kind == "union":
        if plan.all:
            return left_rows + right_rows
        out, seen = [], set()
        for row in left_rows + right_rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out
    right_set = set(right_rows)
    out, emitted = [], set()
    if plan.kind == "intersect":
        for row in left_rows:
            if row in right_set and row not in emitted:
                emitted.add(row)
                out.append(row)
        return out
    for row in left_rows:  # except
        if row not in right_set and row not in emitted:
            emitted.add(row)
            out.append(row)
    return out


def _aggregate(
    plan: phys.PAggregate, catalog: Catalog, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    groups: Dict[Tuple, List[_Accumulator]] = {}
    order: List[Tuple] = []
    key_width = len(plan.group_exprs)
    for batch, n in _execute(plan.child, catalog, batch_size):
        key_cols = [eval_batch(e, batch, n) for e in plan.group_exprs]
        for i in range(n):
            key = tuple(col[i] for col in key_cols)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(spec) for spec in plan.aggregates]
                groups[key] = accs
                order.append(key)
            row = tuple(col[i] for col in batch)
            for acc in accs:
                acc.add(row)
    rows: List[Row] = []
    if not groups and not plan.group_exprs:
        rows.append(tuple(_Accumulator(spec).result() for spec in plan.aggregates))
    else:
        for key in order:
            rows.append(key + tuple(acc.result() for acc in groups[key]))
    yield from _rows_to_batches(iter(rows), key_width + len(plan.aggregates), batch_size)


def _limit(
    plan: phys.PLimit, catalog: Catalog, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    to_skip = plan.offset
    remaining = plan.limit
    for batch, n in _execute(plan.child, catalog, batch_size):
        start = 0
        if to_skip:
            if to_skip >= n:
                to_skip -= n
                continue
            start = to_skip
            to_skip = 0
        end = n
        if remaining is not None:
            end = min(end, start + remaining)
        if end <= start:
            return
        taken = end - start
        if start == 0 and end == n:
            yield batch, n
        else:
            yield [col[start:end] for col in batch], taken
        if remaining is not None:
            remaining -= taken
            if remaining <= 0:
                return


def _distinct(
    plan: phys.PDistinct, catalog: Catalog, batch_size: int
) -> Iterator[Tuple[Batch, int]]:
    seen = set()
    width = len(plan.schema)
    out_rows: List[Row] = []
    for batch, n in _execute(plan.child, catalog, batch_size):
        for i in range(n):
            row = tuple(col[i] for col in batch)
            if row in seen:
                continue
            seen.add(row)
            out_rows.append(row)
        if len(out_rows) >= batch_size:
            yield _pivot(out_rows, width), len(out_rows)
            out_rows = []
    if out_rows:
        yield _pivot(out_rows, width), len(out_rows)


def _pivot(rows: List[Row], width: int) -> Batch:
    if not rows:
        return [[] for _ in range(width)]
    return [list(col) for col in zip(*rows)]
