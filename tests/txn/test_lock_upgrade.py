"""Lock upgrades (S → X) and the metadata carried by lock-wait errors."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import DeadlockError, LockTimeoutError, TransactionError
from repro.txn.locks import LockManager, LockMode
from repro.txn.trace import ScheduleRecorder


class TestUpgrade:
    def test_sole_holder_upgrades_in_place(self):
        locks = LockManager()
        locks.acquire(1, "x", LockMode.SHARED)
        locks.acquire(1, "x", LockMode.EXCLUSIVE)
        assert locks.holds(1, "x") is LockMode.EXCLUSIVE
        # X subsumes a later S request from the same txn.
        locks.acquire(1, "x", LockMode.SHARED)
        assert locks.holds(1, "x") is LockMode.EXCLUSIVE

    def test_upgrade_records_both_grants(self):
        locks = LockManager()
        locks.recorder = ScheduleRecorder(scheme="2pl")
        locks.acquire(1, "x", LockMode.SHARED)
        locks.acquire(1, "x", LockMode.EXCLUSIVE)
        locks.acquire(1, "x", LockMode.EXCLUSIVE)  # reacquire: no new event
        modes = [e.mode for e in locks.recorder.events()]
        assert modes == ["S", "X"]

    def test_upgrade_waits_for_other_readers(self):
        locks = LockManager()
        locks.acquire(1, "x", LockMode.SHARED)
        locks.acquire(2, "x", LockMode.SHARED)
        assert locks.would_block(1, "x", LockMode.EXCLUSIVE)

        upgraded = threading.Event()

        def upgrader():
            locks.acquire(1, "x", LockMode.EXCLUSIVE)
            upgraded.set()

        thread = threading.Thread(target=upgrader)
        thread.start()
        assert not upgraded.wait(timeout=0.2)  # still parked behind txn 2
        locks.release_all(2)
        assert upgraded.wait(timeout=5.0)
        thread.join()
        assert locks.holds(1, "x") is LockMode.EXCLUSIVE

    def test_upgrade_deadlock_between_two_readers(self):
        # Both hold S on x and both want X: each waits on the other —
        # the classic upgrade deadlock.  Exactly one aborts.
        locks = LockManager()
        locks.acquire(1, "x", LockMode.SHARED)
        locks.acquire(2, "x", LockMode.SHARED)
        errors = []
        done = []
        barrier = threading.Barrier(2)

        def upgrader(txn_id):
            barrier.wait()
            try:
                locks.acquire(txn_id, "x", LockMode.EXCLUSIVE)
                done.append(txn_id)
            except DeadlockError as exc:
                errors.append(exc)
                locks.release_all(txn_id)

        threads = [
            threading.Thread(target=upgrader, args=(t,)) for t in (1, 2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(errors) == 1 and len(done) == 1
        assert locks.deadlocks_detected == 1
        victim = errors[0]
        assert victim.txn_id in (1, 2)
        assert victim.key == "x"
        assert victim.held_keys == {"x"}
        # The cycle closes back on the victim: [victim, other, victim].
        assert victim.cycle[0] == victim.cycle[-1] == victim.txn_id


class TestErrorMetadata:
    def test_deadlock_error_names_the_conflict(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        blocked = threading.Event()

        def waiter():
            blocked.set()
            try:
                locks.acquire(2, "a", LockMode.EXCLUSIVE)
            except TransactionError:
                pass
            finally:
                locks.release_all(2)

        thread = threading.Thread(target=waiter)
        thread.start()
        blocked.wait()
        # Let txn 2 register its wait on a before txn 1 closes the cycle.
        deadline = 50
        while deadline and not locks.would_block(3, "a", LockMode.SHARED):
            deadline -= 1
        with pytest.raises(DeadlockError) as excinfo:
            for _ in range(200):
                locks.acquire(1, "b", LockMode.EXCLUSIVE)
                locks.release(1, "b")
        locks.release_all(1)
        thread.join(timeout=10.0)
        err = excinfo.value
        assert err.txn_id == 1
        assert err.key == "b"
        assert "a" in err.held_keys
        assert set(err.cycle) == {1, 2}
        assert isinstance(err, TransactionError)

    def test_timeout_error_names_the_blockers(self):
        locks = LockManager(wait_timeout=0.15)
        locks.acquire(1, "x", LockMode.EXCLUSIVE)
        locks.acquire(2, "held", LockMode.SHARED)
        with pytest.raises(LockTimeoutError, match="timed out") as excinfo:
            locks.acquire(2, "x", LockMode.SHARED)
        err = excinfo.value
        assert err.txn_id == 2
        assert err.key == "x"
        assert err.blockers == [1]
        assert err.held_keys == {"held"}
        assert isinstance(err, TransactionError)
