"""Tests for hybrid multi-modal search (repro.multimodal)."""

import random

import numpy as np
import pytest

from repro.core.types import Column, DataType
from repro.multimodal import (
    DocumentStore,
    FederatedHybridEngine,
    HybridQuery,
    UnifiedHybridEngine,
    fuse_rrf,
    fuse_weighted,
    ground_truth,
    recall_at_k,
    to_similarity,
)
from repro.workloads.embeddings import embed_text


@pytest.fixture(scope="module")
def store():
    """100 docs, two topics, price/category attributes."""
    rng = random.Random(0)
    s = DocumentStore(
        dim=16,
        attr_columns=[
            Column("price", DataType.FLOAT),
            Column("category", DataType.TEXT),
        ],
    )
    db_words = ["database", "query", "index", "join", "optimizer", "storage"]
    ml_words = ["neural", "training", "gradient", "model", "embedding", "loss"]
    for i in range(100):
        words = db_words if i % 2 == 0 else ml_words
        text = " ".join(rng.choices(words, k=8))
        s.add(
            i,
            text,
            embed_text(text, dim=16),
            (round(rng.uniform(1, 100), 2), "even" if i % 2 == 0 else "odd"),
        )
    s.finalize()
    return s


class TestFusion:
    def test_to_similarity_monotone(self):
        assert to_similarity(0.0) == 1.0
        assert to_similarity(1.0) < to_similarity(0.5)

    def test_weighted_prefers_documents_good_in_both(self):
        vector_scores = {1: 0.9, 2: 0.5, 4: 0.1}
        text_scores = {1: 0.8, 3: 0.9, 4: 0.1}
        fused = fuse_weighted(vector_scores, text_scores)
        assert fused[1] > fused[2]
        assert fused[1] > fused[3]
        assert fused[1] > fused[4]

    def test_weighted_respects_weights(self):
        fused = fuse_weighted({1: 1.0, 2: 0.0}, {1: 0.0, 2: 1.0}, 1.0, 0.0)
        assert fused[1] > fused[2]

    def test_weighted_handles_missing_modalities(self):
        assert fuse_weighted(None, {1: 0.5}) == {1: 0.5}
        assert fuse_weighted({}, None) == {}

    def test_rrf_rewards_consistent_rank(self):
        fused = fuse_rrf([[1, 2, 3], [1, 3, 2]])
        assert fused[1] > fused[2]
        assert fused[1] > fused[3]

    def test_rrf_single_list(self):
        fused = fuse_rrf([[5, 6]])
        assert fused[5] > fused[6]


class TestHybridQuery:
    def test_requires_a_modality(self):
        with pytest.raises(ValueError):
            HybridQuery()

    def test_validates_k_and_fusion(self):
        with pytest.raises(ValueError):
            HybridQuery(keywords="x", k=0)
        with pytest.raises(ValueError):
            HybridQuery(keywords="x", fusion="borda")


class TestDocumentStore:
    def test_len_and_get(self, store):
        assert len(store) == 100
        doc = store.get(0)
        assert doc.attrs[1] == "even"

    def test_duplicate_id_rejected(self, store):
        with pytest.raises(Exception):
            store.add(0, "x", np.zeros(16), (1.0, "even"))

    def test_filter_ids_match_predicate(self, store):
        ids = store.filter_ids("category = 'even' AND price < 50")
        assert ids
        for doc_id in ids:
            price, category = store.get(doc_id).attrs
            assert category == "even" and price < 50

    def test_bound_filter_agrees_with_sql(self, store):
        predicate = store.bind_filter("price < 30")
        sql_ids = set(store.filter_ids("price < 30"))
        eval_ids = {i for i in store.all_ids() if store.matches(predicate, i)}
        assert sql_ids == eval_ids

    def test_selectivity_estimate_reasonable(self, store):
        selective = store.estimate_selectivity("price < 5")
        loose = store.estimate_selectivity("price < 95")
        assert selective < loose


class TestUnifiedEngine:
    def test_selective_filter_chooses_prefilter(self, store):
        engine = UnifiedHybridEngine(store)
        query = HybridQuery(keywords="database query", filter_sql="price < 5", k=5)
        assert engine.choose_strategy(query) == "prefilter"

    def test_loose_filter_chooses_postfilter(self, store):
        engine = UnifiedHybridEngine(store)
        query = HybridQuery(keywords="database query", filter_sql="price < 95", k=5)
        assert engine.choose_strategy(query) == "postfilter"

    def test_no_filter_is_postfilter(self, store):
        engine = UnifiedHybridEngine(store)
        assert engine.choose_strategy(HybridQuery(keywords="x")) == "postfilter"

    @pytest.mark.parametrize(
        "filter_sql", [None, "price < 10", "price < 60", "category = 'even'"]
    )
    def test_matches_ground_truth(self, store, filter_sql):
        engine = UnifiedHybridEngine(store)
        query = HybridQuery(
            keywords="database index",
            vector=embed_text("database index", dim=16).tolist(),
            filter_sql=filter_sql,
            k=5,
        )
        result = engine.search(query)
        truth = ground_truth(store, query)
        assert recall_at_k(result.ids(), truth) >= 0.8
        # Every hit satisfies the filter.
        if filter_sql:
            predicate = store.bind_filter(filter_sql)
            for doc_id in result.ids():
                assert store.matches(predicate, doc_id)

    def test_prefilter_scores_only_survivors(self, store):
        engine = UnifiedHybridEngine(store)
        query = HybridQuery(keywords="database", filter_sql="price < 5", k=5)
        result = engine.search(query)
        assert result.docs_scored < 20  # far fewer than the corpus

    def test_filter_only_query(self, store):
        engine = UnifiedHybridEngine(store)
        result = engine.search(HybridQuery(filter_sql="price < 50", k=100))
        expected = set(store.filter_ids("price < 50"))
        assert set(result.ids()) == expected

    def test_rrf_fusion_runs(self, store):
        engine = UnifiedHybridEngine(store)
        query = HybridQuery(
            keywords="database",
            vector=embed_text("database", dim=16).tolist(),
            fusion="rrf",
            k=5,
        )
        assert len(engine.search(query).hits) == 5

    def test_vector_only_query(self, store):
        engine = UnifiedHybridEngine(store)
        query_vec = embed_text("neural gradient", dim=16).tolist()
        result = engine.search(HybridQuery(vector=query_vec, k=5))
        # Top hits should be ML-topic (odd) documents.
        odd = sum(1 for i in result.ids() if i % 2 == 1)
        assert odd >= 4


class TestFederatedBaseline:
    def test_same_answer_when_filter_is_loose(self, store):
        query = HybridQuery(keywords="database index", k=5)
        unified = UnifiedHybridEngine(store).search(query)
        federated = FederatedHybridEngine(store, service_top_k=100).search(query)
        truth = ground_truth(store, query)
        assert recall_at_k(federated.ids(), truth) == recall_at_k(unified.ids(), truth)

    def test_recall_collapses_under_selective_filter(self, store):
        """The federated glue misses results outside the services' fixed K."""
        query = HybridQuery(
            keywords="database index",
            vector=embed_text("database index", dim=16).tolist(),
            filter_sql="price < 10",
            k=5,
        )
        truth = ground_truth(store, query)
        federated = FederatedHybridEngine(store, service_top_k=10).search(query)
        unified = UnifiedHybridEngine(store).search(query)
        assert recall_at_k(unified.ids(), truth) > recall_at_k(federated.ids(), truth)

    def test_federated_always_scans_everything(self, store):
        query = HybridQuery(
            keywords="database",
            vector=embed_text("database", dim=16).tolist(),
            filter_sql="price < 5",
            k=5,
        )
        federated = FederatedHybridEngine(store).search(query)
        assert federated.docs_scored >= 3 * len(store) * 0.9

    def test_filter_only(self, store):
        result = FederatedHybridEngine(store).search(
            HybridQuery(filter_sql="price < 50", k=200)
        )
        assert set(result.ids()) == set(store.filter_ids("price < 50"))


class TestRecallMetric:
    def test_recall_basics(self):
        assert recall_at_k([1, 2, 3], [1, 2, 3]) == 1.0
        assert recall_at_k([1, 9, 8], [1, 2, 3]) == pytest.approx(1 / 3)
        assert recall_at_k([], [1]) == 0.0
        assert recall_at_k([1], []) == 1.0
