"""Tests for the HNSW index (repro.vector.hnsw)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.vector.flat import FlatIndex
from repro.vector.hnsw import HNSWIndex


def build(n=300, dim=8, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, dim))
    index = HNSWIndex(dim, seed=seed, **kwargs)
    for i, vec in enumerate(vectors):
        index.add(i, vec)
    return index, vectors


class TestConstruction:
    def test_validation(self):
        with pytest.raises(IndexError_):
            HNSWIndex(0)
        with pytest.raises(IndexError_):
            HNSWIndex(4, m=1)

    def test_duplicate_key_rejected(self):
        index, __ = build(n=5)
        with pytest.raises(IndexError_, match="duplicate"):
            index.add(0, np.zeros(8))

    def test_dimension_checked(self):
        index = HNSWIndex(4)
        with pytest.raises(IndexError_):
            index.add("x", [1.0, 2.0])

    def test_invariants_after_build(self):
        index, __ = build(n=400)
        index.check_invariants()
        assert index.levels >= 1
        assert len(index) == 400

    def test_deterministic_for_seed(self):
        a, vectors = build(n=100, seed=7)
        b, __ = build(n=100, seed=7)
        query = vectors[3] + 0.01
        assert a.search(query, 5) == b.search(query, 5)


class TestSearch:
    def test_empty_index(self):
        assert HNSWIndex(4).search([0, 0, 0, 0], 3) == []

    def test_single_element(self):
        index = HNSWIndex(4)
        index.add("only", [1.0, 2.0, 3.0, 4.0])
        assert index.search([1, 2, 3, 4], 5) == [("only", 0.0)]

    def test_self_query_finds_self(self):
        index, vectors = build(n=200)
        for probe in (0, 57, 199):
            got = index.search(vectors[probe], 1, ef_search=64)
            assert got[0][0] == probe

    def test_distances_ascending(self):
        index, vectors = build(n=150)
        result = index.search(vectors[0], 10)
        distances = [d for __, d in result]
        assert distances == sorted(distances)

    def test_k_capped_by_size(self):
        index, __ = build(n=7)
        assert len(index.search(np.zeros(8), 50)) == 7

    def test_bad_k(self):
        index, __ = build(n=5)
        with pytest.raises(IndexError_):
            index.search(np.zeros(8), 0)

    def test_recall_grows_with_ef(self):
        index, vectors = build(n=600, seed=3)
        flat = FlatIndex(8)
        for i, vec in enumerate(vectors):
            flat.add(i, vec)
        rng = np.random.default_rng(5)
        recalls = {}
        for ef in (10, 40, 200):
            total = 0.0
            for __ in range(25):
                query = rng.normal(size=8)
                truth = {k for k, __ in flat.search(query, 10)}
                got = {k for k, __ in index.search(query, 10, ef_search=ef)}
                total += len(truth & got) / 10
            recalls[ef] = total / 25
        assert recalls[10] <= recalls[40] <= recalls[200]
        assert recalls[200] >= 0.95

    def test_cosine_metric(self):
        index = HNSWIndex(2, metric="cosine", seed=1)
        index.add("east", [1.0, 0.0])
        index.add("north", [0.0, 1.0])
        index.add("west", [-1.0, 0.0])
        assert index.search([0.9, 0.1], 1)[0][0] == "east"


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_hnsw_high_ef_matches_exact_property(seed):
    """With ef ~ corpus size, HNSW degenerates to (almost) exact search."""
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(80, 4))
    index = HNSWIndex(4, seed=seed)
    flat = FlatIndex(4)
    for i, vec in enumerate(vectors):
        index.add(i, vec)
        flat.add(i, vec)
    query = rng.normal(size=4)
    truth = {k for k, __ in flat.search(query, 5)}
    got = {k for k, __ in index.search(query, 5, ef_search=80)}
    assert len(truth & got) >= 4  # allow one stray on adversarial graphs
