"""The simulated LLM oracle.

A GPT-class matcher is, for cost/accuracy-frontier purposes, a noisy binary
oracle with a per-token price.  :class:`SimulatedLLM` models exactly that:

* answers are correct with probability ``accuracy`` — per-pair noise is
  *deterministic* given the seed (seeded hash of the pair), so experiments
  reproduce bit-for-bit;
* every call is metered (calls, tokens, cost), which is the resource the
  cascade optimizer economizes.

The ground truth lives behind :class:`MatchOracle`, so matcher code can
only reach it through a metered LLM call — no accidental cheating.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Optional, Set, Tuple


@dataclass
class LLMUsage:
    """Metering for a SimulatedLLM instance."""

    calls: int = 0
    input_tokens: int = 0
    cost: float = 0.0


class SimulatedLLM:
    """Deterministic noisy oracle with token-metered cost."""

    def __init__(
        self,
        accuracy: float = 0.95,
        cost_per_1k_tokens: float = 1.0,
        seed: int = 0,
    ):
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        self.accuracy = accuracy
        self.cost_per_1k_tokens = cost_per_1k_tokens
        self.seed = seed
        self.usage = LLMUsage()

    def _flip(self, payload: str, difficulty: float) -> bool:
        """True when this call should answer *incorrectly* (deterministic).

        The error rate is ``(1 - accuracy)`` for maximally difficult inputs
        and falls off quadratically as inputs get easier — a capable model
        almost never misjudges an obvious case, and its mistakes cluster on
        genuinely ambiguous ones.
        """
        difficulty = max(0.0, min(1.0, difficulty))
        p_error = (1.0 - self.accuracy) * difficulty * difficulty
        digest = hashlib.sha256(f"{self.seed}:{payload}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < p_error

    def _meter(self, text: str) -> None:
        tokens = max(1, len(text) // 4)  # ~4 chars per token
        self.usage.calls += 1
        self.usage.input_tokens += tokens
        self.usage.cost += tokens / 1000.0 * self.cost_per_1k_tokens

    def judge(self, prompt: str, true_answer: bool, difficulty: float = 1.0) -> bool:
        """Answer a yes/no prompt; wrong with difficulty-scaled probability."""
        self._meter(prompt)
        if self._flip(prompt, difficulty):
            return not true_answer
        return true_answer

    def reset_usage(self) -> None:
        self.usage = LLMUsage()


class MatchOracle:
    """Ground truth + LLM, exposed only as a metered judgment call.

    Matchers receive this object instead of the truth set; the only way to
    learn a label is to pay for an LLM call.
    """

    def __init__(
        self,
        llm: SimulatedLLM,
        true_pairs: Set[Tuple[int, int]],
        render: Callable[[int], str],
        difficulty: Optional[Callable[[int, int], float]] = None,
    ):
        self._llm = llm
        self._truth: FrozenSet[Tuple[int, int]] = frozenset(
            tuple(sorted(p)) for p in true_pairs
        )
        self._render = render
        self._difficulty = difficulty

    def ask_match(self, id_a: int, id_b: int) -> bool:
        """One metered LLM judgment: are these two records the same entity?"""
        pair = tuple(sorted((id_a, id_b)))
        prompt = (
            "Are these two records the same real-world entity?\n"
            f"A: {self._render(pair[0])}\nB: {self._render(pair[1])}"
        )
        difficulty = self._difficulty(*pair) if self._difficulty else 1.0
        return self._llm.judge(prompt, pair in self._truth, difficulty)

    @property
    def usage(self) -> LLMUsage:
        return self._llm.usage
