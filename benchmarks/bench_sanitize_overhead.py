"""Schedule-recorder overhead on a contended 2PL transfer workload.

Measures wall-clock time for a fixed number of multi-threaded transfer
transactions through :class:`repro.txn.schemes.TwoPLScheme`, with schedule
recording off vs. on.  Transfers hit a small account set from several
threads, so the lock manager is genuinely contended — the regime where the
recorder's extra work (one buffer append per read/write/commit) is most
visible.

Acceptance: recording costs <= 10% throughput.  Writes
``BENCH_sanitize.json`` next to this script.

Usage: python benchmarks/bench_sanitize_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import threading
import time
from typing import Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_json import write_report  # noqa: E402
from repro.core.errors import TransactionError  # noqa: E402
from repro.txn.schemes import TwoPLScheme  # noqa: E402

OVERHEAD_BUDGET_PCT = 10.0  # acceptance: recording overhead <= 10%


def _run_transfers(
    scheme: TwoPLScheme, threads: int, transfers: int, accounts: int
) -> int:
    """`threads` workers each push `transfers` transfers; returns retries."""
    retries = [0] * threads
    barrier = threading.Barrier(threads)

    def worker(worker_id: int) -> None:
        rng_state = worker_id * 2654435761 + 1
        barrier.wait()
        done = 0
        while done < transfers:
            rng_state = (rng_state * 1103515245 + 12345) & 0x7FFFFFFF
            src = rng_state % accounts
            dst = (src + 1 + (rng_state >> 8) % (accounts - 1)) % accounts
            first, second = sorted((src, dst))
            txn = scheme.begin()
            try:
                a = scheme.read(txn, first)
                b = scheme.read(txn, second)
                scheme.write(txn, first, a - 1)
                scheme.write(txn, second, b + 1)
                scheme.commit(txn)
                done += 1
            except TransactionError:
                if txn.active:
                    scheme.abort(txn)
                retries[worker_id] += 1

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return sum(retries)


def _one_sample(
    record: bool, threads: int, transfers: int, accounts: int
) -> Tuple[float, int]:
    scheme = TwoPLScheme(record_schedule=record)
    scheme.load({account: 1000 for account in range(accounts)})
    if record:
        scheme.recorder.clear()
    start = time.perf_counter()
    _run_transfers(scheme, threads, transfers, accounts)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    events = len(scheme.recorder) if record else 0
    # Invariant either way: transfers conserve the total balance.
    audit = scheme.begin()
    total = sum(scheme.read(audit, account) for account in range(accounts))
    scheme.commit(audit)
    assert total == 1000 * accounts, f"balance leaked: {total}"
    return elapsed_ms, events


def run(threads: int, transfers: int, accounts: int, repeats: int) -> dict:
    # Interleave off/on samples: this workload's wall-clock is noisy
    # (thread scheduling, CPU frequency drift), and alternating regimes
    # cancels slow drift that back-to-back blocks would bake into the
    # comparison.  The budget check uses the MIN of each regime's samples —
    # the noise-robust estimator timeit's docs recommend, since scheduling
    # hiccups only ever add time — with one warmup pair discarded; the
    # medians are reported alongside for transparency.
    base_samples, recorded_samples = [], []
    events = 0
    for _ in range(repeats + 1):
        base_samples.append(
            _one_sample(False, threads, transfers, accounts)[0]
        )
        sample_ms, events = _one_sample(True, threads, transfers, accounts)
        recorded_samples.append(sample_ms)
    base_samples, recorded_samples = base_samples[1:], recorded_samples[1:]
    base_ms, recorded_ms = min(base_samples), min(recorded_samples)
    overhead_pct = (recorded_ms / base_ms - 1.0) * 100.0
    return {
        "workload": {
            "scheme": "2pl",
            "threads": threads,
            "transfers_per_thread": transfers,
            "accounts": accounts,
            "repeats": repeats,
        },
        "baseline_ms": round(base_ms, 2),
        "recording_ms": round(recorded_ms, 2),
        "baseline_median_ms": round(statistics.median(base_samples), 2),
        "recording_median_ms": round(statistics.median(recorded_samples), 2),
        "events_recorded": events,
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "within_budget": overhead_pct <= OVERHEAD_BUDGET_PCT,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer transfers/repeats")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--accounts", type=int, default=8)
    parser.add_argument("--transfers", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    # Long samples matter more than many samples here: per-run thread
    # scheduling varies wall-clock by several percent, and 3000 transfers
    # per thread amortizes it below the effect being measured.
    transfers = args.transfers or (500 if args.quick else 3000)
    repeats = args.repeats or (3 if args.quick else 5)

    results = run(args.threads, transfers, args.accounts, repeats)
    out_path = write_report("sanitize", results)

    print(
        f"2pl transfers ({args.threads} threads x {transfers}): "
        f"baseline {results['baseline_ms']:.1f} ms, "
        f"recording {results['recording_ms']:.1f} ms "
        f"({results['overhead_pct']:+.1f}%, "
        f"{results['events_recorded']} events)"
    )
    status = "PASS" if results["within_budget"] else "FAIL"
    print(f"budget (<= {OVERHEAD_BUDGET_PCT:.0f}%): {status} -> {out_path}")
    return 0 if results["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
