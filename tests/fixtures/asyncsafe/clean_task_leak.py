"""Fixture: task-spawn shapes that must NOT trip unawaited-task-leak.

Awaiting the task, storing it (set/list/attribute) for later management,
and gathering a comprehension of tasks all keep strong references.
"""

import asyncio


async def worker(n: int) -> None:
    await asyncio.sleep(0)


async def awaited_task() -> None:
    task = asyncio.create_task(worker(1))
    await task


class Supervisor:
    def __init__(self) -> None:
        self._tasks = set()

    async def spawn(self) -> None:
        task = asyncio.create_task(worker(2))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)


async def fan_out() -> None:
    tasks = [asyncio.create_task(worker(n)) for n in range(4)]
    await asyncio.gather(*tasks)
