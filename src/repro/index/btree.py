"""An in-memory B+tree with full structural maintenance.

Keys are arbitrary mutually comparable Python values; each key maps to a
list of values (so secondary indexes can hold several record ids per key).
Leaves are chained for range scans.  Deletes rebalance by borrowing from or
merging with siblings, so the occupancy invariant (every non-root node holds
at least ``ceil(order/2) - 1`` keys) is maintained — the property-based
tests check this after random workloads.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from repro.core.errors import IndexError_

DEFAULT_ORDER = 32


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "parent")

    def __init__(self, leaf: bool):
        self.keys: List[Any] = []
        # Internal nodes use `children`; leaves use `values` and `next_leaf`.
        self.children: Optional[List["_Node"]] = None if leaf else []
        self.values: Optional[List[List[Any]]] = [] if leaf else None
        self.next_leaf: Optional["_Node"] = None
        self.parent: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class BPlusTree:
    """B+tree mapping comparable keys to lists of values.

    Args:
        order: maximum number of children of an internal node; leaves hold at
            most ``order - 1`` keys.
        unique: when True, inserting a duplicate key raises.
    """

    def __init__(self, order: int = DEFAULT_ORDER, unique: bool = False):
        if order < 3:
            raise IndexError_("B+tree order must be >= 3")
        self.order = order
        self.unique = unique
        self._root = _Node(leaf=True)
        self._size = 0  # number of (key, value) pairs

    # -- lookup ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def key_count(self) -> int:
        """Number of distinct keys."""
        return sum(1 for _ in self.keys())

    def search(self, key: Any) -> List[Any]:
        """All values stored under ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs with low <= key <= high, in key order.

        ``None`` bounds are open on that side.
        """
        if low is None:
            leaf = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(low)
            idx = (
                bisect.bisect_left(leaf.keys, low)
                if include_low
                else bisect.bisect_right(leaf.keys, low)
            )
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None:
                    if include_high and key > high:
                        return
                    if not include_high and key >= high:
                        return
                for value in leaf.values[idx]:
                    yield key, value
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        """Distinct keys in order."""
        leaf: Optional[_Node] = self._leftmost_leaf()
        while leaf is not None:
            for key in leaf.keys:
                yield key
            leaf = leaf.next_leaf

    def min_key(self) -> Any:
        leaf = self._leftmost_leaf()
        if not leaf.keys:
            raise IndexError_("min_key on empty tree")
        return leaf.keys[0]

    def max_key(self) -> Any:
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        if not node.keys:
            raise IndexError_("max_key on empty tree")
        return node.keys[-1]

    # -- insert -------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert one (key, value) pair."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if self.unique:
                raise IndexError_(f"duplicate key {key!r} in unique index")
            leaf.values[idx].append(value)
            self._size += 1
            return
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, [value])
        self._size += 1
        if len(leaf.keys) > self.order - 1:
            self._split_leaf(leaf)

    def _split_leaf(self, leaf: _Node) -> None:
        mid = len(leaf.keys) // 2
        right = _Node(leaf=True)
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        self._insert_into_parent(leaf, right.keys[0], right)

    def _split_internal(self, node: _Node) -> None:
        mid = len(node.keys) // 2
        push_key = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        for child in right.children:
            child.parent = right
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._insert_into_parent(node, push_key, right)

    def _insert_into_parent(self, left: _Node, key: Any, right: _Node) -> None:
        parent = left.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.keys = [key]
            new_root.children = [left, right]
            left.parent = new_root
            right.parent = new_root
            self._root = new_root
            return
        idx = parent.children.index(left)
        parent.keys.insert(idx, key)
        parent.children.insert(idx + 1, right)
        right.parent = parent
        if len(parent.keys) > self.order - 1:
            self._split_internal(parent)

    # -- delete ---------------------------------------------------------------------

    def delete(self, key: Any, value: Any = None) -> int:
        """Delete entries for ``key``.

        With ``value`` given, removes that single (key, value) pair (first
        occurrence); otherwise removes the key with all its values.  Returns
        the number of pairs removed.  Raises :class:`IndexError_` when the
        key (or pair) is absent.
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise IndexError_(f"key {key!r} not in index")
        bucket = leaf.values[idx]
        if value is not None:
            if value not in bucket:
                raise IndexError_(f"pair ({key!r}, {value!r}) not in index")
            bucket.remove(value)
            self._size -= 1
            if bucket:
                return 1
            removed = 1
        else:
            removed = len(bucket)
            self._size -= removed
        # Bucket is now empty: remove the key slot and rebalance.
        leaf.keys.pop(idx)
        leaf.values.pop(idx)
        self._rebalance(leaf)
        return removed

    def _min_keys(self) -> int:
        # ceil(order / 2) children  ->  that many minus one keys.
        return (self.order + 1) // 2 - 1

    def _rebalance(self, node: _Node) -> None:
        if node.parent is None:
            # Root: collapse when an internal root loses all keys.
            if not node.is_leaf and len(node.keys) == 0:
                self._root = node.children[0]
                self._root.parent = None
            return
        if len(node.keys) >= self._min_keys():
            return
        parent = node.parent
        idx = parent.children.index(node)
        # Try borrowing from the left sibling.
        if idx > 0:
            left = parent.children[idx - 1]
            if len(left.keys) > self._min_keys():
                self._borrow_from_left(parent, idx, left, node)
                return
        # Try borrowing from the right sibling.
        if idx < len(parent.children) - 1:
            right = parent.children[idx + 1]
            if len(right.keys) > self._min_keys():
                self._borrow_from_right(parent, idx, node, right)
                return
        # Merge with a sibling.
        if idx > 0:
            self._merge(parent, idx - 1)
        else:
            self._merge(parent, idx)
        self._rebalance(parent)

    def _borrow_from_left(self, parent: _Node, idx: int, left: _Node, node: _Node) -> None:
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            node.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = node.keys[0]
        else:
            node.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child = left.children.pop()
            child.parent = node
            node.children.insert(0, child)

    def _borrow_from_right(self, parent: _Node, idx: int, node: _Node, right: _Node) -> None:
        if node.is_leaf:
            node.keys.append(right.keys.pop(0))
            node.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            node.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child = right.children.pop(0)
            child.parent = node
            node.children.append(child)

    def _merge(self, parent: _Node, left_idx: int) -> None:
        """Merge children[left_idx + 1] into children[left_idx]."""
        left = parent.children[left_idx]
        right = parent.children[left_idx + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            for child in right.children:
                child.parent = left
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)

    # -- invariants (used by property tests) -------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation."""
        min_keys = self._min_keys()

        def walk(node: _Node, lo: Any, hi: Any, depth: int) -> int:
            assert node.keys == sorted(node.keys), "keys out of order"
            for key in node.keys:
                if lo is not None:
                    assert key >= lo, "key below subtree bound"
                if hi is not None:
                    assert key < hi, "key above subtree bound"
            if node.parent is not None:
                assert len(node.keys) >= min_keys, (
                    f"underfull node: {len(node.keys)} < {min_keys}"
                )
            assert len(node.keys) <= self.order - 1, "overfull node"
            if node.is_leaf:
                assert len(node.values) == len(node.keys)
                for bucket in node.values:
                    assert bucket, "empty value bucket"
                return 1
            assert len(node.children) == len(node.keys) + 1
            depths = set()
            bounds = [lo] + list(node.keys) + [hi]
            for i, child in enumerate(node.children):
                assert child.parent is node, "broken parent pointer"
                depths.add(walk(child, bounds[i], bounds[i + 1], depth + 1))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop() + 1

        walk(self._root, None, None, 0)
        # Leaf chain must enumerate exactly the keys in order.
        chained = list(self.keys())
        assert chained == sorted(set(chained)), "leaf chain corrupt"
        assert self._size == sum(len(b) for b in self._iter_buckets())

    def _iter_buckets(self):
        leaf: Optional[_Node] = self._leftmost_leaf()
        while leaf is not None:
            for bucket in leaf.values:
                yield bucket
            leaf = leaf.next_leaf

    # -- internals ---------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def height(self) -> int:
        """Levels in the tree (1 = a single leaf)."""
        node, h = self._root, 1
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h
