"""Concurrency sanitizer: serializability checker, lock order, latches, CLI."""

from __future__ import annotations

import textwrap

from repro.analyze.concurrency import (
    ANOMALY_DIRTY_READ,
    ANOMALY_GENERIC,
    ANOMALY_LOST_UPDATE,
    ANOMALY_NON_REPEATABLE,
    ANOMALY_WRITE_SKEW,
    INCOMPLETE_RULE,
    LOCK_ORDER_RULE,
    RW,
    WR,
    WW,
    ConflictEdge,
    Schedule,
    build_conflict_graph,
    check_latch_coverage_source,
    check_lock_order,
    check_schedule,
    classify_cycle,
)
from repro.analyze.sanitize_cli import main as sanitize_main
from repro.txn import trace
from repro.txn.trace import ScheduleEvent, ScheduleRecorder


def _events(*specs):
    """Compact schedule builder: specs are (txn, op[, key[, mode]])."""
    out = []
    for seq, spec in enumerate(specs, start=1):
        txn, op = spec[0], spec[1]
        key = spec[2] if len(spec) > 2 else None
        mode = spec[3] if len(spec) > 3 else None
        out.append(ScheduleEvent(seq, txn, op, key, mode))
    return out


B, R, W, C, A = trace.BEGIN, trace.READ, trace.WRITE, trace.COMMIT, trace.ABORT
L, U = trace.LOCK, trace.UNLOCK


def _rules(report):
    return [f.rule for f in report.findings]


class TestSerializability:
    def test_serial_history_is_clean(self):
        report = check_schedule(
            _events(
                (1, B), (1, R, "x"), (1, W, "x"), (1, C),
                (2, B), (2, R, "x"), (2, W, "x"), (2, C),
            ),
            scheme="2pl",
        )
        assert not report.findings

    def test_lost_update_cycle(self):
        # Both read x before either writes: the second write clobbers the
        # first without having seen it.
        report = check_schedule(
            _events(
                (1, B), (2, B),
                (1, R, "x"), (2, R, "x"),
                (1, W, "x"), (1, C),
                (2, W, "x"), (2, C),
            ),
            scheme="2pl",
        )
        assert _rules(report) == [ANOMALY_LOST_UPDATE]
        message = report.findings[0].message
        assert "txn 1" in message and "txn 2" in message and "@" in message

    def test_non_repeatable_read_cycle(self):
        # txn 1 reads x before and after txn 2's committed write.
        report = check_schedule(
            _events(
                (1, B), (2, B),
                (1, R, "x"),
                (2, W, "x"), (2, C),
                (1, R, "x"), (1, C),
            ),
            scheme="2pl",
        )
        assert _rules(report) == [ANOMALY_NON_REPEATABLE]

    def test_dirty_read_from_aborted_writer(self):
        # txn 2 reads txn 1's write, commits; txn 1 aborts afterwards.
        report = check_schedule(
            _events(
                (1, B), (2, B),
                (1, W, "x"),
                (2, R, "x"), (2, C),
                (1, A),
            ),
            scheme="2pl",
        )
        assert ANOMALY_DIRTY_READ in _rules(report)
        assert "uncommitted write" in report.findings[0].message

    def test_aborted_writer_is_not_a_conflict(self):
        # The same history minus the read: the aborted write must not
        # create edges against committed transactions.
        schedule = Schedule.from_events(
            _events(
                (1, B), (2, B),
                (1, W, "x"), (1, A),
                (2, W, "x"), (2, C),
            ),
            scheme="2pl",
        )
        assert build_conflict_graph(schedule) == []

    def test_write_skew_under_mvcc(self):
        # Overlapping snapshots, disjoint writes: r1(x,y) r2(x,y) w1(x) w2(y).
        report = check_schedule(
            _events(
                (1, B), (2, B),
                (1, R, "x"), (1, R, "y"),
                (2, R, "x"), (2, R, "y"),
                (1, W, "x"), (2, W, "y"),
                (1, C), (2, C),
            ),
            scheme="mvcc",
        )
        assert _rules(report) == [ANOMALY_WRITE_SKEW]

    def test_mvcc_snapshot_read_is_not_non_repeatable(self):
        # Under snapshot semantics a re-read inside one txn sees the same
        # version even after a concurrent commit: WR must point at the
        # *begin* snapshot, yielding a single RW edge, no cycle.
        report = check_schedule(
            _events(
                (1, B), (2, B),
                (1, R, "x"),
                (2, W, "x"), (2, C),
                (1, R, "x"), (1, C),
            ),
            scheme="mvcc",
        )
        assert not report.findings

    def test_mvcc_wr_edge_from_earlier_commit(self):
        # A commit that lands before the reader begins is in its snapshot.
        schedule = Schedule.from_events(
            _events(
                (1, B), (1, W, "x"), (1, C),
                (2, B), (2, R, "x"), (2, C),
            ),
            scheme="mvcc",
        )
        edges = build_conflict_graph(schedule)
        assert [(e.src, e.dst, e.kind) for e in edges] == [(1, 2, WR)]

    def test_incomplete_txn_reported_as_info(self):
        report = check_schedule(
            _events((1, B), (1, W, "x")), scheme="2pl"
        )
        assert _rules(report) == [INCOMPLETE_RULE]
        assert report.findings[0].severity == "info"


class TestClassifyCycle:
    def _edge(self, src, dst, kind, key="x"):
        return ConflictEdge(src, dst, kind, key, 0, 0)

    def test_pure_rw_cycle_is_write_skew(self):
        cycle = [self._edge(1, 2, RW, "x"), self._edge(2, 1, RW, "y")]
        assert classify_cycle(cycle, cycle) == ANOMALY_WRITE_SKEW

    def test_mixed_cycle_with_single_rw_is_generic(self):
        cycle = [
            self._edge(1, 2, WW, "x"),
            self._edge(2, 3, WW, "y"),
            self._edge(3, 1, RW, "z"),
        ]
        assert classify_cycle(cycle, cycle) == ANOMALY_GENERIC


class TestLockOrder:
    def test_consistent_order_is_clean(self):
        events = _events(
            (1, L, "a", "X"), (1, L, "b", "X"), (1, U, "a"), (1, U, "b"),
            (2, L, "a", "X"), (2, L, "b", "X"), (2, U, "a"), (2, U, "b"),
        )
        assert check_lock_order(events) == []

    def test_inverted_order_is_flagged(self):
        events = _events(
            (1, L, "a", "X"), (1, L, "b", "X"), (1, U, "a"), (1, U, "b"),
            (2, L, "b", "X"), (2, L, "a", "X"), (2, U, "a"), (2, U, "b"),
        )
        findings = check_lock_order(events, source="t")
        assert [f.rule for f in findings] == [LOCK_ORDER_RULE]
        message = findings[0].message
        assert "txn 1 took 'a' then 'b'" in message
        assert "txn 2 took 'b' then 'a'" in message

    def test_release_breaks_the_held_set(self):
        # b is taken only after a is released: no a→b ordering exists.
        events = _events(
            (1, L, "a", "X"), (1, U, "a"), (1, L, "b", "X"), (1, U, "b"),
            (2, L, "b", "X"), (2, U, "b"), (2, L, "a", "X"), (2, U, "a"),
        )
        assert check_lock_order(events) == []


class TestLatchCoverage:
    def test_bare_access_to_guarded_field_flagged(self):
        findings = check_latch_coverage_source(
            textwrap.dedent(
                """
                import threading

                class Store:
                    def __init__(self):
                        self._latch = threading.Lock()
                        self._data = {}

                    def put(self, k, v):
                        with self._latch:
                            self._data[k] = v

                    def peek(self, k):
                        return self._data.get(k)
                """
            ),
            "sample.py",
        )
        assert len(findings) == 1
        assert findings[0].rule == "latch-coverage"
        assert "Store.peek" in findings[0].message
        assert "self._data" in findings[0].message

    def test_fully_latched_class_is_clean(self):
        findings = check_latch_coverage_source(
            textwrap.dedent(
                """
                import threading

                class Store:
                    def __init__(self):
                        self._latch = threading.Lock()
                        self._data = {}

                    def put(self, k, v):
                        with self._latch:
                            self._data[k] = v

                    def peek(self, k):
                        with self._latch:
                            return self._data.get(k)
                """
            )
        )
        assert findings == []

    def test_locked_suffix_convention_exempts(self):
        findings = check_latch_coverage_source(
            textwrap.dedent(
                """
                import threading

                class Store:
                    def __init__(self):
                        self._latch = threading.Lock()
                        self._clock = 0

                    def tick(self):
                        with self._latch:
                            self._bump_locked()

                    def _bump_locked(self):
                        self._clock += 1
                """
            )
        )
        assert findings == []

    def test_callgraph_fixpoint_exempts_latched_only_helpers(self):
        findings = check_latch_coverage_source(
            textwrap.dedent(
                """
                import threading

                class Store:
                    def __init__(self):
                        self._latch = threading.Lock()
                        self._clock = 0

                    def tick(self):
                        with self._latch:
                            self._clock += 1
                            return self.helper()

                    def helper(self):
                        return self._clock
                """
            )
        )
        assert findings == []

    def test_unguarded_fields_stay_quiet(self):
        findings = check_latch_coverage_source(
            textwrap.dedent(
                """
                class Plain:
                    def __init__(self):
                        self.n = 0

                    def bump(self):
                        self.n += 1
                """
            )
        )
        assert findings == []


class TestSanitizeCli:
    def _dump(self, tmp_path, events, scheme="2pl"):
        rec = ScheduleRecorder(scheme=scheme)
        for event in events:
            rec.record(event.txn_id, event.op, key=event.key, mode=event.mode)
        path = str(tmp_path / "trace.jsonl")
        rec.dump(path)
        return path

    def test_clean_trace_exits_zero(self, tmp_path, capsys):
        path = self._dump(
            tmp_path, _events((1, B), (1, W, "x"), (1, C))
        )
        assert sanitize_main([path]) == 0
        assert "clean" in capsys.readouterr().err

    def test_racy_trace_exits_one(self, tmp_path, capsys):
        path = self._dump(
            tmp_path,
            _events(
                (1, B), (2, B),
                (1, R, "x"), (2, R, "x"),
                (1, W, "x"), (1, C),
                (2, W, "x"), (2, C),
            ),
        )
        assert sanitize_main([path]) == 1
        assert ANOMALY_LOST_UPDATE in capsys.readouterr().out

    def test_missing_trace_is_usage_error(self, tmp_path):
        assert sanitize_main([str(tmp_path / "nope.jsonl")]) == 2

    def test_fuzz_mode_smoke(self, capsys):
        assert sanitize_main(["--fuzz", "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "global-lock" in out and "2pl" in out and "mvcc" in out

    def test_fuzz_rejects_unknown_scheme(self):
        assert sanitize_main(["--fuzz", "--schemes", "optimistic"]) == 2


class TestDatabaseRecording:
    def test_database_records_statement_txns(self):
        from repro.core.database import Database

        db = Database(record_schedule=True)
        db.execute("CREATE TABLE t (id INT, n INT)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.execute("SELECT n FROM t")
        db.execute("COMMIT")
        db.execute("BEGIN")
        db.execute("UPDATE t SET n = 11 WHERE id = 1")
        db.execute("ROLLBACK")
        ops = [(e.txn_id, e.op) for e in db.schedule_recorder.events()]
        assert ops[0] == (1, B) and (1, C) in ops and (2, A) in ops
        writes = [e for e in db.schedule_recorder.events() if e.op == W]
        assert all(e.key[0] == "t" for e in writes)
        reads = [e for e in db.schedule_recorder.events() if e.op == R]
        assert [e.key for e in reads] == ["t"]
        report = check_schedule(
            db.schedule_recorder.events(), scheme="database"
        )
        assert not report.findings

    def test_recording_off_by_default(self, monkeypatch):
        from repro.core.database import Database

        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert Database().schedule_recorder is None

    def test_env_var_enables_recording(self, monkeypatch):
        from repro.core.database import Database

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Database().schedule_recorder is not None
