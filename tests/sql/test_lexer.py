"""Tests for the SQL lexer (repro.sql.lexer)."""

import pytest

from repro.core.errors import ParseError
from repro.sql.lexer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]  # drop EOF


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select") == [(TokenType.KEYWORD, "SELECT")]
        assert kinds("SeLeCt") == [(TokenType.KEYWORD, "SELECT")]

    def test_identifiers_preserve_case(self):
        assert kinds("myTable") == [(TokenType.IDENT, "myTable")]

    def test_quoted_identifier(self):
        assert kinds('"weird name"') == [(TokenType.IDENT, "weird name")]

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_integer_and_float(self):
        assert kinds("42") == [(TokenType.NUMBER, 42)]
        assert kinds("3.5") == [(TokenType.NUMBER, 3.5)]
        assert kinds(".5") == [(TokenType.NUMBER, 0.5)]
        assert kinds("1e3") == [(TokenType.NUMBER, 1000.0)]
        assert kinds("2.5e-2") == [(TokenType.NUMBER, 0.025)]

    def test_string_literals(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_string_escape_doubles_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_operators_longest_match(self):
        assert [v for _, v in kinds("a <= b <> c != d")] == ["a", "<=", "b", "<>", "c", "!=", "d"]

    def test_concat_operator(self):
        assert kinds("||") == [(TokenType.OPERATOR, "||")]

    def test_punct_and_brackets(self):
        values = [v for _, v in kinds("( ) , . ; [ ] ?")]
        assert values == ["(", ")", ",", ".", ";", "[", "]", "?"]

    def test_parameter_placeholder_is_punct(self):
        assert kinds("a = ?") == [
            (TokenType.IDENT, "a"),
            (TokenType.OPERATOR, "="),
            (TokenType.PUNCT, "?"),
        ]

    def test_line_comment_skipped(self):
        assert kinds("a -- comment\n b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a @ b")

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("select 1")[-1].type is TokenType.EOF
