"""OLTP workload: short read-modify-write transactions over hot keys.

The transaction mix is NewOrder-flavored: each transaction reads a few
account-style rows and writes most of them, with Zipf-skewed key popularity
so contention is realistic.  The driver runs the mix over any
:class:`~repro.txn.schemes.ConcurrencyScheme` with a configurable thread
count and reports throughput and abort rates — experiment E6's engine.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import TransactionAborted, TransactionError
from repro.txn.schemes import ConcurrencyScheme


@dataclass(frozen=True)
class TxnSpec:
    """One transaction: ordered (key, is_write) accesses."""

    accesses: Tuple[Tuple[int, bool], ...]


@dataclass
class OLTPWorkload:
    """A key space plus a deterministic stream of transactions."""

    num_keys: int
    transactions: List[TxnSpec] = field(default_factory=list)
    seed: int = 0

    def initial_state(self) -> Dict[int, int]:
        return {key: 1000 for key in range(self.num_keys)}


def _zipf_key(rng: random.Random, n: int, skew: float) -> int:
    weights_total = sum(1.0 / (i + 1) ** skew for i in range(n))
    point = rng.random() * weights_total
    cumulative = 0.0
    for i in range(n):
        cumulative += 1.0 / (i + 1) ** skew
        if point <= cumulative:
            return i
    return n - 1


def make_oltp_workload(
    num_transactions: int = 400,
    num_keys: int = 200,
    accesses_per_txn: int = 4,
    write_fraction: float = 0.75,
    zipf_skew: float = 0.9,
    seed: int = 0,
) -> OLTPWorkload:
    """Generate a deterministic transaction stream.

    Keys within a transaction are sorted ascending — the standard
    application-side deadlock-avoidance discipline; contention then shows up
    as blocking (2PL) or write conflicts (MVCC) rather than constant
    deadlocks, matching how real systems behave.
    """
    rng = random.Random(seed)
    workload = OLTPWorkload(num_keys=num_keys, seed=seed)
    for _ in range(num_transactions):
        chosen: Dict[int, bool] = {}
        for _ in range(accesses_per_txn):
            key = _zipf_key(rng, num_keys, zipf_skew)
            write = rng.random() < write_fraction
            chosen[key] = chosen.get(key, False) or write
        accesses = tuple(sorted(chosen.items()))
        workload.transactions.append(TxnSpec(accesses))
    return workload


@dataclass
class OLTPResult:
    """Throughput + abort accounting for one run."""

    scheme: str
    threads: int
    committed: int
    aborted: int
    elapsed_s: float
    retries: int

    @property
    def throughput(self) -> float:
        return self.committed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def abort_rate(self) -> float:
        attempts = self.committed + self.aborted
        return self.aborted / attempts if attempts else 0.0


def _execute_spec(
    scheme: ConcurrencyScheme, spec: TxnSpec, work_s: float = 0.0
) -> None:
    txn = scheme.begin()
    try:
        for key, is_write in spec.accesses:
            value = scheme.read(txn, key)
            if work_s > 0:
                # Simulated per-access application work (parsing, business
                # logic, I/O).  time.sleep releases the GIL, so this is
                # where concurrency-control quality becomes visible: the
                # global lock serializes this work, 2PL serializes it only
                # on conflicting keys, and MVCC readers never wait at all.
                time.sleep(work_s)
            if is_write:
                scheme.write(txn, key, (value or 0) + 1)
        scheme.commit(txn)
    except TransactionAborted:
        raise
    except TransactionError:
        scheme.abort(txn)
        raise


def run_oltp(
    scheme: ConcurrencyScheme,
    workload: OLTPWorkload,
    threads: int = 4,
    max_retries: int = 10,
    work_per_access_s: float = 0.0005,
) -> OLTPResult:
    """Replay the workload with a thread pool; aborted txns are retried."""
    scheme.load(workload.initial_state())
    base_commits = scheme.commits
    base_aborts = scheme.aborts
    queue = list(workload.transactions)
    queue_lock = threading.Lock()
    retries = [0]

    def worker() -> None:
        while True:
            with queue_lock:
                if not queue:
                    return
                spec = queue.pop()
            attempt = 0
            while True:
                try:
                    _execute_spec(scheme, spec, work_per_access_s)
                    break
                except (TransactionAborted, TransactionError):
                    attempt += 1
                    with queue_lock:
                        retries[0] += 1
                    if attempt >= max_retries:
                        break
                    time.sleep(0.0005 * attempt)

    started = time.perf_counter()
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    return OLTPResult(
        scheme=scheme.name,
        threads=threads,
        committed=scheme.commits - base_commits,
        aborted=scheme.aborts - base_aborts,
        elapsed_s=elapsed,
        retries=retries[0],
    )
