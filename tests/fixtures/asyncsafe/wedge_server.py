"""Fixture: reconstruction of the PR 7 event-loop wedge.

The original bug: ``net/server.py`` called ``self.scheme.begin()``
directly inside the ``kv_begin`` coroutine handler.  Under the
global-lock scheme, ``begin()`` blocks until the single database lock is
free — but the coroutine holding the loop is the only thing that could
ever release it, so one in-flight transaction wedged the whole server.
Rule 1 must flag the marked line (the exact shape that shipped).
"""

from concurrent.futures import ThreadPoolExecutor

from repro.txn.schemes import ConcurrencyScheme, make_scheme


class MiniServer:
    def __init__(self, scheme: str = "global-lock") -> None:
        self.scheme: ConcurrencyScheme = make_scheme(scheme)
        self._executor = ThreadPoolExecutor(max_workers=1)
        self._sessions = {}

    async def handle_kv_begin(self, session_id: int) -> int:
        handle = self.scheme.begin()  # MARK: wedge-begin
        self._sessions[session_id] = handle
        return handle.txn_id

    async def handle_kv_commit(self, session_id: int) -> None:
        handle = self._sessions.pop(session_id)
        self.scheme.commit(handle)  # MARK: wedge-commit
