"""Schedule-fuzz contract: real schemes sanitize clean, broken ones don't.

Every seed drives one deterministic interleaving of a small multi-txn
workload through a real scheme with recording on, then runs the full
sanitizer over the trace (:func:`repro.analyze.concurrency.check_schedule`).
The contract:

* ``global-lock`` and ``2pl`` — conflict-serializable, no dirty reads, no
  lock-order inversions, across every seed;
* ``mvcc`` — only the documented snapshot-isolation anomaly (write skew),
  and the fuzzer must actually *witness* it at least once (a vacuous pass
  would also accept a checker that finds nothing).

Deliberately-broken variants prove the detectors detect: a 2PL that
releases read locks early (non-two-phase) must produce classified
precedence cycles, and reordered lock acquisition must trip the
lock-order analyzer.  100 seeds per scheme on every push;
``REPRO_NIGHTLY=1`` multiplies the sweep.
"""

from __future__ import annotations

import os

import pytest

from repro.analyze.concurrency import (
    ANOMALY_LOST_UPDATE,
    ANOMALY_WRITE_SKEW,
    LOCK_ORDER_RULE,
    check_lock_order,
    check_schedule,
)
from repro.txn.fuzz import TxnProgram, fuzz_one, fuzz_summary, run_interleaving
from repro.txn.locks import LockManager, LockMode
from repro.txn.schemes import TwoPLScheme
from repro.txn.trace import ScheduleRecorder

NIGHTLY = bool(os.environ.get("REPRO_NIGHTLY"))
SEEDS = 1000 if NIGHTLY else 100


class EarlyReleaseTwoPL(TwoPLScheme):
    """Broken on purpose: drops the shared lock right after each read.

    Releasing before commit violates the two-phase rule, so other writers
    can slip between a read and the transaction's own later operations —
    the textbook recipe for lost updates and non-repeatable reads.
    """

    name = "2pl"  # analyzed with in-place edge semantics

    def read(self, txn, key):
        value = super().read(txn, key)
        self.locks.release(txn.txn_id, key)
        return value


class TestRealSchemesFuzzClean:
    @pytest.mark.parametrize("scheme_name", ["global-lock", "2pl"])
    def test_locking_schemes_are_serializable(self, scheme_name):
        summary = fuzz_summary(scheme_name, range(SEEDS))
        assert summary["violations"] == []
        assert summary["witnessed"] == {}

    def test_mvcc_shows_only_write_skew(self):
        summary = fuzz_summary("mvcc", range(SEEDS))
        assert summary["violations"] == []
        assert set(summary["witnessed"]) <= {ANOMALY_WRITE_SKEW}
        # The contract must not pass vacuously: across this many seeds the
        # fuzzer reliably constructs the skew shape.
        assert summary["witnessed"].get(ANOMALY_WRITE_SKEW, 0) > 0

    def test_interleavings_are_deterministic(self):
        first = fuzz_one("2pl", seed=42)
        second = fuzz_one("2pl", seed=42)
        assert first.events == second.events
        assert (first.committed, first.aborted) == (
            second.committed,
            second.aborted,
        )


class TestBrokenSchemeIsCaught:
    def test_early_release_yields_classified_cycles(self):
        witnessed = {}
        for seed in range(SEEDS):
            outcome = fuzz_one(
                "2pl", seed, scheme=EarlyReleaseTwoPL(record_schedule=True)
            )
            report = check_schedule(outcome.events, scheme="2pl")
            for finding in report.findings:
                if finding.severity != "info":
                    witnessed[finding.rule] = witnessed.get(finding.rule, 0) + 1
        # Non-two-phase locking must be caught, and caught repeatedly.
        assert sum(witnessed.values()) >= 5, witnessed

    def test_early_release_lost_update_deterministic(self):
        scheme = EarlyReleaseTwoPL(record_schedule=True)
        scheme.load({"x": 100})
        scheme.recorder.clear()
        t1, t2 = scheme.begin(), scheme.begin()
        v1 = scheme.read(t1, "x")
        v2 = scheme.read(t2, "x")
        scheme.write(t1, "x", v1 + 1)
        scheme.commit(t1)
        scheme.write(t2, "x", v2 + 1)  # clobbers t1's increment
        scheme.commit(t2)
        report = check_schedule(scheme.recorder.events(), scheme="2pl")
        assert [f.rule for f in report.findings] == [ANOMALY_LOST_UPDATE]

    def test_correct_2pl_blocks_the_same_interleaving(self):
        # The same program through the real scheme: t2's read blocks until
        # t1 finishes, so the schedule stays serializable.
        programs = [
            TxnProgram([("read", "x"), ("write", "x")]),
            TxnProgram([("read", "x"), ("write", "x")]),
        ]
        scheme = TwoPLScheme(record_schedule=True)
        scheme.load({"x": 100})
        scheme.recorder.clear()
        outcome = run_interleaving(scheme, programs, seed=7)
        report = check_schedule(outcome.events, scheme="2pl")
        errors = [f for f in report.findings if f.severity != "info"]
        assert errors == []
        assert outcome.committed + outcome.aborted == 2


class TestLockOrderScenario:
    def test_reordered_acquisition_trips_the_analyzer(self):
        recorder = ScheduleRecorder(scheme="2pl")
        locks = LockManager()
        locks.recorder = recorder
        # Two sequential transactions that disagree on lock order: no
        # deadlock fires (they never overlap), but the hazard is real.
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        locks.release_all(1)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        locks.acquire(2, "a", LockMode.EXCLUSIVE)
        locks.release_all(2)
        findings = check_lock_order(recorder.events())
        assert [f.rule for f in findings] == [LOCK_ORDER_RULE]

    def test_fuzzed_real_schemes_never_invert(self):
        # Programs visit keys in sorted order, so any inversion finding on
        # a real scheme is a lock-manager bug, not workload noise.
        for seed in range(0, SEEDS, 10):
            outcome = fuzz_one("2pl", seed)
            assert check_lock_order(outcome.events, implicit_locks=True) == []
