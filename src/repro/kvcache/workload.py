"""Synthetic LLM serving traces.

Requests share structure the way production serving does:

* a small set of **system prompts** with Zipf-distributed popularity
  (agents/products reuse the same long preamble);
* optional **multi-turn conversations** whose follow-ups extend an earlier
  request's exact token sequence;
* a fresh user suffix per request.

Tokens are integers; content never matters, only prefix-sharing structure,
which is exactly what the KV cache sees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ServingRequest:
    """One inference request: the full prompt token sequence."""

    request_id: int
    tokens: Tuple[int, ...]
    system_prompt_id: int
    turn: int = 0

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass
class ServingTrace:
    """A request stream plus the parameters that produced it."""

    requests: List[ServingRequest] = field(default_factory=list)
    num_system_prompts: int = 0
    seed: int = 0

    def __iter__(self):
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    def total_tokens(self) -> int:
        return sum(len(r) for r in self.requests)


def _zipf_choice(rng: random.Random, n: int, skew: float) -> int:
    """Sample 0..n-1 with probability ∝ 1/(rank+1)^skew."""
    weights = [1.0 / (i + 1) ** skew for i in range(n)]
    total = sum(weights)
    point = rng.random() * total
    cumulative = 0.0
    for i, w in enumerate(weights):
        cumulative += w
        if point <= cumulative:
            return i
    return n - 1


def make_trace(
    num_requests: int = 500,
    num_system_prompts: int = 8,
    system_prompt_tokens: int = 128,
    user_tokens_mean: int = 48,
    zipf_skew: float = 1.1,
    continuation_probability: float = 0.3,
    max_turns: int = 4,
    seed: int = 0,
) -> ServingTrace:
    """Generate a serving trace with shared prefixes.

    ``continuation_probability`` is the chance a request extends a previous
    conversation (sharing its entire token sequence as a prefix) instead of
    starting fresh.
    """
    rng = random.Random(seed)
    vocabulary = 50_000
    system_prompts = [
        tuple(rng.randrange(vocabulary) for _ in range(system_prompt_tokens))
        for _ in range(num_system_prompts)
    ]
    trace = ServingTrace(num_system_prompts=num_system_prompts, seed=seed)
    open_conversations: List[ServingRequest] = []
    for request_id in range(num_requests):
        continued: Optional[ServingRequest] = None
        if open_conversations and rng.random() < continuation_probability:
            continued = rng.choice(open_conversations)
        if continued is not None:
            base = continued.tokens
            prompt_id = continued.system_prompt_id
            turn = continued.turn + 1
        else:
            prompt_id = _zipf_choice(rng, num_system_prompts, zipf_skew)
            base = system_prompts[prompt_id]
            turn = 0
        suffix_len = max(4, int(rng.gauss(user_tokens_mean, user_tokens_mean / 3)))
        suffix = tuple(rng.randrange(vocabulary) for _ in range(suffix_len))
        request = ServingRequest(request_id, base + suffix, prompt_id, turn)
        trace.requests.append(request)
        if turn < max_turns:
            open_conversations.append(request)
        if len(open_conversations) > 64:
            open_conversations.pop(0)
    return trace
