"""Disk managers: the page-granular persistence layer under the buffer pool.

Two implementations share one interface:

* :class:`InMemoryDiskManager` — a dict of page images.  Used by tests and
  benchmarks; still counts "I/O" so cost models see identical behaviour.
* :class:`FileDiskManager` — a single file of ``PAGE_SIZE``-byte pages with
  real ``seek``/``read``/``write`` calls.

Both count reads and writes so the benchmark harness and the energy model
(:mod:`repro.bench.energy`) can report I/O work.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from typing import Dict, Optional

from repro.core.errors import StorageError
from repro.storage.page import PAGE_SIZE


class DiskManager(ABC):
    """Abstract page store with I/O accounting."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self._lock = threading.Lock()

    @abstractmethod
    def allocate_page(self) -> int:
        """Reserve a new page id (contents undefined until first write)."""

    @abstractmethod
    def read_page(self, page_id: int) -> bytes:
        """Read a page image; raises :class:`StorageError` for bad ids."""

    @abstractmethod
    def write_page(self, page_id: int, data: bytes) -> None:
        """Persist a page image."""

    @abstractmethod
    def num_pages(self) -> int:
        """Number of allocated pages."""

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release resources (no-op by default)."""


class InMemoryDiskManager(DiskManager):
    """Page store backed by a dict; zero real I/O, full accounting."""

    def __init__(self) -> None:
        super().__init__()
        self._pages: Dict[int, bytes] = {}
        self._next_id = 0

    def allocate_page(self) -> int:
        with self._lock:
            page_id = self._next_id
            self._next_id += 1
            self._pages[page_id] = bytes(PAGE_SIZE)
            return page_id

    def read_page(self, page_id: int) -> bytes:
        with self._lock:
            if page_id not in self._pages:
                raise StorageError(f"read of unallocated page {page_id}")
            self.reads += 1
            return self._pages[page_id]

    def write_page(self, page_id: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageError(f"page image must be {PAGE_SIZE} bytes")
        with self._lock:
            if page_id not in self._pages:
                raise StorageError(f"write to unallocated page {page_id}")
            self.writes += 1
            self._pages[page_id] = bytes(data)

    def num_pages(self) -> int:
        with self._lock:
            return self._next_id


class FileDiskManager(DiskManager):
    """Page store backed by a single file of PAGE_SIZE-byte pages."""

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        # "r+b" requires the file to exist; create it if missing.
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._file = open(path, "r+b")
        size = os.path.getsize(path)
        if size % PAGE_SIZE != 0:
            raise StorageError(
                f"{path} has size {size}, not a multiple of {PAGE_SIZE}"
            )
        self._next_id = size // PAGE_SIZE

    def allocate_page(self) -> int:
        with self._lock:
            page_id = self._next_id
            self._next_id += 1
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(bytes(PAGE_SIZE))
            return page_id

    def read_page(self, page_id: int) -> bytes:
        with self._lock:
            if page_id < 0 or page_id >= self._next_id:
                raise StorageError(f"read of unallocated page {page_id}")
            self.reads += 1
            self._file.seek(page_id * PAGE_SIZE)
            data = self._file.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_id}")
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageError(f"page image must be {PAGE_SIZE} bytes")
        with self._lock:
            if page_id < 0 or page_id >= self._next_id:
                raise StorageError(f"write to unallocated page {page_id}")
            self.writes += 1
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(data)

    def num_pages(self) -> int:
        with self._lock:
            return self._next_id

    def sync(self) -> None:
        """fsync the backing file."""
        with self._lock:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()
