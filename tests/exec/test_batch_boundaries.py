"""Batch-boundary sweep for the vectorized engine.

Vectorized operators carry state across batch edges (sort and set-op
materialization, aggregate accumulators, join build/probe chunking); the
classic failure mode is an operator that is only correct when all its input
arrives in one batch.  This sweep runs representative plans at batch sizes
that straddle the default (1024): 1, 2, 1023, 1024, 1025 — so every operator
sees single-row batches, off-by-one edges, and inputs split mid-group —
and checks results against the volcano engine's output.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.exec.vectorized import execute_vectorized
from repro.optimizer.optimizer import Optimizer
from repro.sql.parser import parse

BATCH_SIZES = (1, 2, 1023, 1024, 1025)

# 1500 rows: spans a 1024 batch edge, and 1023/1025 put the edge mid-group.
N_ROWS = 1500

QUERIES = [
    "SELECT id, grp FROM a WHERE id % 3 = 0",
    "SELECT grp, COUNT(*), COUNT(val), SUM(val), AVG(val), MIN(val), MAX(val) "
    "FROM a GROUP BY grp",
    "SELECT COUNT(DISTINCT grp), SUM(DISTINCT grp) FROM a",
    "SELECT id FROM a ORDER BY val, id",
    "SELECT id FROM a ORDER BY val DESC, id LIMIT 10",
    "SELECT DISTINCT grp FROM a",
    "SELECT grp FROM a UNION SELECT grp FROM b",
    "SELECT grp FROM a UNION ALL SELECT grp FROM b",
    "SELECT grp FROM a INTERSECT SELECT grp FROM b",
    "SELECT grp FROM a EXCEPT SELECT grp FROM b",
    "SELECT a.id, b.val FROM a JOIN b ON a.id = b.id WHERE b.val > 100.0",
    "SELECT a.id, b.val FROM a LEFT JOIN b ON a.id = b.id",
]


def load(db: Database) -> None:
    db.execute("CREATE TABLE a (id INTEGER NOT NULL, grp INTEGER, val FLOAT)")
    db.execute("CREATE TABLE b (id INTEGER NOT NULL, grp INTEGER, val FLOAT)")
    db.insert_rows(
        "a",
        [
            (i, i % 7, None if i % 97 == 0 else float((i * 31) % 1000))
            for i in range(N_ROWS)
        ],
    )
    db.insert_rows(
        "b",
        [(i, i % 5, float((i * 17) % 500)) for i in range(0, N_ROWS, 2)],
    )


@pytest.fixture(scope="module")
def db():
    database = Database(engine="volcano", default_layout="column")
    load(database)
    return database


@pytest.fixture(scope="module")
def reference(db):
    return {sql: db.execute(sql).rows for sql in QUERIES}


def run_at_batch_size(db: Database, sql: str, batch_size: int):
    logical_plan = db._binder.bind_query(parse(sql))
    optimizer = Optimizer(db.catalog, db.cost_model, db.optimizer_options)
    _, physical = optimizer.optimize(logical_plan)
    return list(execute_vectorized(physical, db.catalog, batch_size=batch_size))


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("sql", QUERIES)
def test_batch_size_does_not_change_results(db, reference, sql, batch_size):
    assert run_at_batch_size(db, sql, batch_size) == reference[sql]


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_tiny_tables_at_every_batch_size(batch_size):
    # Inputs smaller than, equal to, and one-off the batch size.
    db = Database(engine="vectorized", default_layout="column")
    db.execute("CREATE TABLE t (v INTEGER)")
    for n in (0, 1, 2):
        rows = db.execute("SELECT COUNT(*), SUM(v) FROM t").rows
        assert rows == [(n, sum(range(n)) if n else None)]
        got = run_at_batch_size(db, "SELECT v FROM t ORDER BY v", batch_size)
        assert got == [(i,) for i in range(n)]
        db.execute(f"INSERT INTO t VALUES ({n})")
