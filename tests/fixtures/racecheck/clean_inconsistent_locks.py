"""Clean counterpart to ``bad_inconsistent_locks``: both writers agree on
one lock, so every pair of racing accessors intersects on it."""

import threading
from concurrent.futures import ThreadPoolExecutor


class Registry:
    def __init__(self):
        self.lock = threading.Lock()
        self.items = {}

    def put(self, key):
        with self.lock:
            if key not in self.items:
                self.items[key] = 1

    def drop(self, key):
        with self.lock:
            if key in self.items:
                del self.items[key]


def run():
    registry = Registry()
    with ThreadPoolExecutor(2) as pool:
        for key in ("a", "b", "c"):
            pool.submit(registry.put, key)
            pool.submit(registry.drop, key)
