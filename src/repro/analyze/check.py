"""One-pass umbrella over every static analyzer: ``python -m repro check``.

``lint`` (catalog/ORM rules), ``asynccheck`` (async-safety), and
``racecheck`` (static race detection) each used to be separate CLI
invocations.  The two whole-program analyzers both run over the same
:class:`~repro.analyze.callgraph.CallGraph`, and parsing the package is
the dominant cost of either pass — so the umbrella builds the graph
**once** and hands it to both, then merges all findings into one report
with the shared exit-code contract (0 clean / 1 findings / 2 usage).

:func:`run_check` is also the programmatic entry point
``tools/lint_repro.py`` drives, so the self-lint, CI, and the CLI all
agree on what "the analyzers" are.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyze.asyncsafe import DEFAULT_RETURNS
from repro.analyze.callgraph import CallGraph, build_callgraph
from repro.analyze.facts import AnalysisReport, Finding

#: Umbrella tool names, in run order.
ALL_TOOLS = ("lint", "asynccheck", "racecheck")

#: Tools that need the whole-program call graph.
GRAPH_TOOLS = ("asynccheck", "racecheck")


@dataclass
class CheckResult:
    """Merged findings from one umbrella pass."""

    report: AnalysisReport
    #: ``[(tool, finding)]`` in report order — lets callers label output.
    tagged: List[Tuple[str, Finding]] = field(default_factory=list)
    #: findings per tool (zero entries included for every tool that ran).
    tool_counts: Dict[str, int] = field(default_factory=dict)
    #: the shared graph (None when no graph-based tool ran).
    graph: Optional[CallGraph] = None

    def tool_for(self, finding: Finding) -> str:
        for tool, tagged in self.tagged:
            if tagged is finding:
                return tool
        return "unknown"


def _lint_findings(paths: Sequence[str]) -> List[Finding]:
    # Imported lazily: the SQL linter pulls in the parser/optimizer stack,
    # which graph-only callers (tools/lint_repro.py) don't need.
    from repro.analyze.cli import (
        _lint_directory,
        _lint_python_file,
        _lint_sql_file,
    )

    findings: List[Finding] = []
    for target in paths:
        if os.path.isdir(target):
            findings.extend(_lint_directory(target))
        elif target.endswith(".py"):
            findings.extend(_lint_python_file(target))
        else:
            findings.extend(_lint_sql_file(target))
    return findings


def run_check(
    paths: Sequence[str],
    tools: Sequence[str] = ALL_TOOLS,
    suppress: bool = True,
    graph: Optional[CallGraph] = None,
) -> CheckResult:
    """Run the requested analyzers over ``paths`` with one shared graph.

    ``graph`` lets a caller that already built a :class:`CallGraph` for the
    same paths reuse it; otherwise one is built if any graph-based tool is
    requested.  Findings are merged and sorted by (source, line, rule).
    """
    unknown = [tool for tool in tools if tool not in ALL_TOOLS]
    if unknown:
        raise ValueError(f"unknown tool(s) {unknown}; known: {list(ALL_TOOLS)}")
    if graph is None and any(tool in tools for tool in GRAPH_TOOLS):
        graph = build_callgraph(paths, returns=DEFAULT_RETURNS)

    tagged: List[Tuple[str, Finding]] = []
    tool_counts: Dict[str, int] = {}
    if "lint" in tools:
        lint_findings = _lint_findings(paths)
        tool_counts["lint"] = len(lint_findings)
        tagged.extend(("lint", finding) for finding in lint_findings)
    if "asynccheck" in tools:
        from repro.analyze import asyncsafe

        report = asyncsafe.analyze_graph(graph, suppress=suppress)
        tool_counts["asynccheck"] = len(report)
        tagged.extend(("asynccheck", finding) for finding in report.findings)
    if "racecheck" in tools:
        from repro.analyze import racecheck

        report = racecheck.analyze_graph(graph, suppress=suppress)
        tool_counts["racecheck"] = len(report)
        tagged.extend(("racecheck", finding) for finding in report.findings)

    tagged.sort(key=lambda item: (item[1].source, item[1].line, item[1].rule))
    report = AnalysisReport([finding for _, finding in tagged])
    return CheckResult(
        report=report, tagged=tagged, tool_counts=tool_counts, graph=graph
    )
