"""Tests for the ORM (repro.orm)."""

import pytest

from repro.core.database import Database
from repro.core.errors import ReproError
from repro.orm import (
    FloatField,
    ForeignKeyField,
    IntegerField,
    Model,
    Session,
    TextField,
    eager,
)


class Author(Model):
    __tablename__ = "authors"
    id = IntegerField(primary_key=True)
    name = TextField()
    country = TextField()


class Book(Model):
    __tablename__ = "books"
    id = IntegerField(primary_key=True)
    author_id = ForeignKeyField("authors.id")
    title = TextField()
    price = FloatField()


Author.relate("books", Book, foreign_key="author_id")


@pytest.fixture
def session():
    s = Session(Database())
    s.create_all([Author, Book])
    for i in range(4):
        s.add(Author(id=i, name=f"author{i}", country="US" if i % 2 else "UK"))
        for j in range(3):
            s.add(Book(id=i * 10 + j, author_id=i, title=f"book{i}.{j}", price=9.99 + j))
    s.flush()
    s.reset_query_count()
    return s


class TestModelBasics:
    def test_fields_collected(self):
        assert set(Author.field_names()) == {"id", "name", "country"}
        assert Author.__pk__ == "id"

    def test_default_tablename(self):
        class Widget(Model):
            id = IntegerField(primary_key=True)

        assert Widget.__tablename__ == "widgets"

    def test_unknown_kwargs_rejected(self):
        with pytest.raises(ReproError, match="unknown fields"):
            Author(id=1, nme="typo")

    def test_missing_fields_default_none(self):
        author = Author(id=1)
        assert author.name is None

    def test_requires_exactly_one_pk(self):
        with pytest.raises(ReproError, match="primary-key"):
            class NoPk(Model):
                x = IntegerField()

    def test_round_trip(self):
        author = Author(id=7, name="x", country="DE")
        assert Author.from_row(author.to_row()) == author

    def test_foreign_key_parses_reference(self):
        field = Book.__fields__["author_id"]
        assert field.ref_table == "authors"
        assert field.ref_column == "id"


class TestQueries:
    def test_all(self, session):
        authors = session.query(Author).all()
        assert len(authors) == 4

    def test_filter(self, session):
        uk = session.query(Author).filter(country="UK").all()
        assert {a.id for a in uk} == {0, 2}

    def test_filter_unknown_field(self, session):
        with pytest.raises(ReproError):
            session.query(Author).filter(nope=1)

    def test_get(self, session):
        assert session.query(Author).get(2).name == "author2"
        assert session.query(Author).get(99) is None

    def test_order_and_limit(self, session):
        books = session.query(Book).order_by("price").limit(2).all()
        assert [b.price for b in books] == sorted(b.price for b in books)
        assert len(books) == 2

    def test_count(self, session):
        assert session.query(Book).count() == 12
        assert session.query(Book).filter(author_id=1).count() == 3

    def test_identity_map(self, session):
        a1 = session.query(Author).get(1)
        a2 = session.query(Author).get(1)
        assert a1 is a2


class TestRelationshipLoading:
    def test_lazy_returns_children(self, session):
        author = session.query(Author).get(0)
        titles = {b.title for b in author.books}
        assert titles == {"book0.0", "book0.1", "book0.2"}

    def test_lazy_is_cached_per_instance(self, session):
        author = session.query(Author).get(0)
        __ = author.books
        count = session.query_count
        __ = author.books  # second access: no new query
        assert session.query_count == count

    def test_lazy_issues_n_plus_one_queries(self, session):
        authors = session.query(Author).all()  # 1 query
        for author in authors:
            __ = author.books  # +1 per author
        assert session.query_count == 1 + len(authors)

    def test_eager_issues_single_query(self, session):
        authors = session.query(Author).options(eager("books")).all()
        assert session.query_count == 1
        for author in authors:
            assert len(author.books) == 3

    def test_eager_equals_lazy_results(self, session):
        lazy = {a.id: sorted(b.id for b in a.books) for a in session.query(Author).all()}
        fresh = Session(session.db)
        eager_map = {
            a.id: sorted(b.id for b in a.books)
            for a in fresh.query(Author).options(eager("books")).all()
        }
        assert lazy == eager_map

    def test_eager_with_childless_parent(self, session):
        session.add(Author(id=99, name="loner", country="FR"))
        session.flush()
        authors = session.query(Author).options(eager("books")).all()
        loner = [a for a in authors if a.id == 99][0]
        assert loner.books == []

    def test_eager_with_filter(self, session):
        authors = session.query(Author).filter(country="UK").options(eager("books")).all()
        assert {a.id for a in authors} == {0, 2}
        assert all(len(a.books) == 3 for a in authors)

    def test_eager_unknown_relationship(self, session):
        with pytest.raises(ReproError, match="not a relationship"):
            session.query(Author).options(eager("name"))

    def test_detached_access_raises(self):
        author = Author(id=1, name="x", country="y")
        with pytest.raises(ReproError, match="outside a session"):
            __ = author.books

    def test_query_amplification_grows_with_n(self):
        """The defining N+1 curve: queries scale with parent count."""
        counts = {}
        for n in (5, 20):
            s = Session(Database())
            s.create_all([Author, Book])
            for i in range(n):
                s.add(Author(id=i, name=f"a{i}", country="US"))
                s.add(Book(id=i, author_id=i, title="t", price=1.0))
            s.flush()
            s.reset_query_count()
            for author in s.query(Author).all():
                __ = author.books
            counts[n] = s.query_count
        assert counts[20] - counts[5] == 15  # exactly one extra query per parent


class TestMutations:
    def test_save_updates_row(self, session):
        author = session.query(Author).get(1)
        author.name = "renamed"
        session.save(author)
        fresh = Session(session.db)
        assert fresh.query(Author).get(1).name == "renamed"

    def test_save_unpersisted_rejected(self, session):
        ghost = Author(id=999, name="x", country="y")
        with pytest.raises(ReproError, match="no stored row"):
            session.save(ghost)

    def test_delete_object(self, session):
        author = session.query(Author).get(2)
        session.delete(author)
        assert session.query(Author).get(2) is None
        assert session.query(Author).count() == 3

    def test_delete_unpersisted_rejected(self, session):
        with pytest.raises(ReproError, match="no stored row"):
            session.delete(Author(id=999, name="x", country="y"))

    def test_query_bulk_delete(self, session):
        removed = session.query(Book).filter(author_id=0).delete()
        assert removed == 3
        assert session.query(Book).count() == 9
        # Identity map was evicted: re-querying sees fresh rows.
        assert session.query(Book).filter(author_id=0).all() == []
