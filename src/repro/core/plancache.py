"""Plan caching and prepared statements.

``Database.execute`` used to re-lex, re-parse, re-bind, and re-optimize
every SQL string it saw — for repeated OLTP-style statements that pipeline
costs more than running the plan.  This module caches the *compiled* side
of a statement:

* :class:`PlanCache` — an LRU of bound + optimized physical plans, logically
  keyed on ``(normalized SQL text, catalog version, stats epoch, optimizer
  options)``.  DDL bumps the catalog version, ``ANALYZE`` bumps the stats
  epoch, so any schema or statistics change makes every dependent key miss.
  Physically the cache indexes by text and validates version/epoch on
  lookup, which also evicts stale entries eagerly instead of letting them
  squat in the LRU.

* :class:`PreparedStatement` — ``db.prepare(sql)`` parses once, binds ``?``
  placeholders to a shared :class:`~repro.plan.expressions.ParamVector`,
  optimizes once, and then every ``execute(params)`` just writes the new
  values into the vector and re-runs the cached physical plan (compiled
  expression closures included).  Statements the bound path cannot host —
  DML, or queries whose subqueries fold at bind time — transparently fall
  back to client-side substitution via :mod:`repro.sql.params`.

Cached plans retain their compiled expression closures (memoized on the
expression nodes by :mod:`repro.exec.compile`), so a plan-cache hit skips
codegen as well as planning.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from repro.sql import ast


@dataclass
class PlanCacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class CachedPlan:
    """One bound + optimized physical plan and what it was built against."""

    physical: Any  # exec.physical.PhysicalPlan (untyped to avoid the import cycle)
    columns: List[str]
    tables: Optional[FrozenSet[str]]  # base tables read; None = unknown
    catalog_version: int
    stats_epoch: int
    options_key: Tuple


class PlanCache:
    """LRU of optimized plans with version/epoch validation on lookup.

    Thread-safe: even a "read" reorders the LRU list (``move_to_end``) and
    may evict a stale entry, so concurrent lookups from worker threads would
    corrupt the ``OrderedDict`` without the lock.  All operations are
    dict-sized, so one plain mutex is cheaper than any copy-on-read scheme.
    """

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        normalized_sql: str,
        catalog_version: int,
        stats_epoch: int,
        options_key: Tuple,
    ) -> Optional[CachedPlan]:
        with self._lock:
            entry = self._entries.get(normalized_sql)
            if entry is None:
                self.stats.misses += 1
                return None
            if (
                entry.catalog_version != catalog_version
                or entry.stats_epoch != stats_epoch
                or entry.options_key != options_key
            ):
                # Built against an older schema/statistics world: evict.
                del self._entries[normalized_sql]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self._entries.move_to_end(normalized_sql)
            return entry

    def put(self, normalized_sql: str, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[normalized_sql] = entry
            self._entries.move_to_end(normalized_sql)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_all(self) -> None:
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    def invalidate_tables(self, tables) -> None:
        """Drop plans touching any of ``tables`` (case-insensitive).

        Used on transaction rollback and WAL recovery replay: those paths
        rewrite table contents underneath any plan whose physical operators
        may pin per-table state, so dependent plans must be rebuilt.  Plans
        with unknown table sets are dropped conservatively.
        """
        with self._lock:
            lowered = {t.lower() for t in tables}
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.tables is None
                or any(t.lower() in lowered for t in entry.tables)
            ]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)


def normalize_sql(sql: str) -> str:
    """Whitespace-insensitive cache key for one statement's text."""
    return " ".join(sql.split())


def has_subquery(statement: ast.Statement) -> bool:
    """Whether any expression in the statement contains a subquery.

    Subqueries fold to constants at bind time, which makes their plans
    depend on table *data*, not just schema — such plans must never be
    reused across statements.
    """

    def expr_has(expr: Optional[ast.Expr]) -> bool:
        if expr is None:
            return False
        return any(
            isinstance(node, (ast.Subquery, ast.ExistsExpr))
            for node in ast.walk_expr(expr)
        )

    def from_has(item) -> bool:
        if item is None:
            return False
        if isinstance(item, ast.Join):
            return from_has(item.left) or from_has(item.right) or expr_has(item.condition)
        return False

    def select_has(stmt: ast.SelectStmt) -> bool:
        exprs = [i.expr for i in stmt.items]
        exprs.append(stmt.where)
        exprs.append(stmt.having)
        exprs.extend(stmt.group_by)
        exprs.extend(i.expr for i in stmt.order_by)
        return any(expr_has(e) for e in exprs) or from_has(stmt.from_item)

    def walk(stmt) -> bool:
        if isinstance(stmt, ast.SelectStmt):
            return select_has(stmt)
        if isinstance(stmt, ast.SetOpStmt):
            return (
                walk(stmt.left)
                or walk(stmt.right)
                or any(expr_has(i.expr) for i in stmt.order_by)
            )
        return True  # unknown statement shapes are conservatively "has"

    return walk(statement)


def is_plan_cacheable(statement: ast.Statement) -> bool:
    """SELECT-shaped, and safe to reuse across executions."""
    if not isinstance(statement, (ast.SelectStmt, ast.SetOpStmt)):
        return False
    return not has_subquery(statement)


class PreparedStatement:
    """A statement parsed, bound, and optimized once, executed many times.

    Obtained from ``Database.prepare``.  For SELECT statements without
    subqueries the physical plan (and its compiled expression closures) is
    built at prepare time and reused by every ``execute``; parameters bind
    through a shared ParamVector, so changing them costs a list assignment.
    Other statements fall back to parameter substitution + the normal
    execute path (which still benefits from the textual plan cache).
    """

    def __init__(self, database, sql: str):
        self._db = database
        self.sql = sql
        self.statement = None  # parsed AST (set by database during prepare)
        self.param_count = 0
        self.uses_bound_plan = False
        # Bound-plan state (SELECT fast path only):
        self.param_vector = None  # plan.expressions.ParamVector
        self.physical = None
        self.columns: List[str] = []
        self.catalog_version = -1
        self.stats_epoch = -1
        self.options_key: Tuple = ()
        self.executions = 0
        self.replans = 0

    def execute(self, params: Sequence[Any] = (), engine: Optional[str] = None):
        """Run with the given parameter values; returns a Result."""
        return self._db._execute_prepared(self, params, engine)

    def __repr__(self) -> str:
        mode = "bound-plan" if self.uses_bound_plan else "text-fallback"
        return (
            f"PreparedStatement({self.sql!r}, params={self.param_count}, "
            f"mode={mode}, executions={self.executions})"
        )
