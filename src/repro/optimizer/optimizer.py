"""Optimizer driver: rewrites to fixpoint, join ordering, physical planning.

Every phase can be switched off through :class:`OptimizerOptions`, which is
how experiment E9 measures the value of each optimization (and how the
"naive" baseline plans are produced: all phases off, nested-loop joins and
sequential scans only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.exec import physical as phys
from repro.optimizer.cardinality import Estimator
from repro.optimizer.cost import CostModel
from repro.optimizer.join_order import is_reorderable, reorder_joins
from repro.optimizer.physical_planner import PhysicalPlanner, PlannerFlags
from repro.optimizer.rules import fold_plan, push_down_filters
from repro.plan import logical

_MAX_REWRITE_PASSES = 10


@dataclass
class OptimizerOptions:
    """Feature switches for each optimizer phase."""

    enable_folding: bool = True
    enable_pushdown: bool = True
    enable_join_reorder: bool = True
    enable_index_scan: bool = True
    enable_hash_join: bool = True
    enable_topn_sort: bool = True
    #: Intra-query parallelism: 0 = serial plans, 1 = exchange operators run
    #: inline (overhead measurement), >= 2 = morsels on the worker pool.
    #: Participates in the plan-cache key (via astuple), so serial and
    #: parallel plans never collide in the cache.
    workers: int = 0
    morsel_size: int = 8192
    parallel_min_rows: int = 2048
    #: Radix partition count for parallel joins (0 = auto: workers * 4).
    #: Also part of the plan-cache key, like every knob here.
    join_partitions: int = 0

    @staticmethod
    def naive() -> "OptimizerOptions":
        """Everything off: the straight-line interpretation of the query."""
        return OptimizerOptions(
            enable_folding=False,
            enable_pushdown=False,
            enable_join_reorder=False,
            enable_index_scan=False,
            enable_hash_join=False,
            enable_topn_sort=False,
        )


class Optimizer:
    """Full optimization pipeline from logical plan to physical plan."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        options: Optional[OptimizerOptions] = None,
        verify: bool = False,
    ):
        self.catalog = catalog
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.options = options if options is not None else OptimizerOptions()
        self.estimator = Estimator(catalog)
        #: When set, plan invariants (schema preservation, column-ref bounds,
        #: predicate typing, cardinality sanity) are asserted after binding
        #: and between every rewrite phase; violations raise
        #: :class:`repro.analyze.invariants.PlanInvariantViolation`.
        self.verify = verify

    def _make_verifier(self, plan: logical.LogicalPlan):
        if not self.verify:
            return None
        from repro.analyze.invariants import PlanVerifier

        return PlanVerifier(plan)

    def optimize_logical(
        self, plan: logical.LogicalPlan, _verifier=None
    ) -> logical.LogicalPlan:
        """Run rewrite phases; returns the optimized logical plan."""
        verifier = _verifier if _verifier is not None else self._make_verifier(plan)
        options = self.options
        if options.enable_folding:
            plan = fold_plan(plan)
            if verifier is not None:
                verifier.check("fold", plan)
        if options.enable_pushdown:
            for pass_no in range(_MAX_REWRITE_PASSES):
                rewritten = push_down_filters(plan)
                if verifier is not None:
                    verifier.check(f"pushdown[{pass_no}]", rewritten)
                if rewritten.pretty() == plan.pretty():
                    plan = rewritten
                    break
                plan = rewritten
        if options.enable_join_reorder:
            plan = self._reorder(plan)
            if verifier is not None:
                verifier.check("join_order", plan)
        return plan

    def plan_physical(
        self, plan: logical.LogicalPlan, _verifier=None
    ) -> phys.PhysicalPlan:
        """Lower a logical plan using the configured planner flags."""
        flags = PlannerFlags(
            enable_index_scan=self.options.enable_index_scan,
            enable_hash_join=self.options.enable_hash_join,
            enable_topn_sort=self.options.enable_topn_sort,
            workers=self.options.workers,
            morsel_size=self.options.morsel_size,
            parallel_min_rows=self.options.parallel_min_rows,
            join_partitions=self.options.join_partitions,
        )
        planner = PhysicalPlanner(self.catalog, self.cost_model, flags)
        physical = planner.parallelize(planner.plan(plan))
        verifier = _verifier if _verifier is not None else self._make_verifier(plan)
        if verifier is not None:
            verifier.check_physical("physical", physical)
        return physical

    def optimize(
        self, plan: logical.LogicalPlan
    ) -> Tuple[logical.LogicalPlan, phys.PhysicalPlan]:
        """Rewrite + lower; returns (logical, physical)."""
        verifier = self._make_verifier(plan)
        optimized = self.optimize_logical(plan, _verifier=verifier)
        return optimized, self.plan_physical(optimized, _verifier=verifier)

    # -- join reordering traversal ------------------------------------------

    def _reorder(self, plan: logical.LogicalPlan) -> logical.LogicalPlan:
        if is_reorderable(plan):
            return reorder_joins(plan, self.estimator, leaf_transform=self._reorder)
        return self._rebuild(plan)

    def _rebuild(self, plan: logical.LogicalPlan) -> logical.LogicalPlan:
        if isinstance(plan, logical.Filter):
            return logical.Filter(self._reorder(plan.child), plan.predicate)
        if isinstance(plan, logical.Project):
            return logical.Project(self._reorder(plan.child), plan.exprs, plan.names)
        if isinstance(plan, logical.Join):  # left outer: sides handled separately
            return logical.Join(
                self._reorder(plan.left),
                self._reorder(plan.right),
                plan.kind,
                plan.condition,
            )
        if isinstance(plan, logical.Aggregate):
            return logical.Aggregate(
                self._reorder(plan.child),
                plan.group_exprs,
                plan.aggregates,
                plan.group_names,
            )
        if isinstance(plan, logical.Sort):
            return logical.Sort(self._reorder(plan.child), plan.keys)
        if isinstance(plan, logical.Limit):
            return logical.Limit(self._reorder(plan.child), plan.limit, plan.offset)
        if isinstance(plan, logical.Distinct):
            return logical.Distinct(self._reorder(plan.child))
        if isinstance(plan, logical.SetOp):
            return logical.SetOp(
                self._reorder(plan.left), self._reorder(plan.right), plan.kind, plan.all
            )
        return plan
