"""Expression → closure compilation (the engine's tiny JIT).

``BoundExpr.eval`` walks the expression tree for every row: each node costs
a virtual dispatch, attribute loads, and a Python frame.  On filter-heavy
scans that walk dominates execution time.  ``compile_expr`` lowers a bound
expression tree once into a single Python function — straight-line code
with one frame per *row* instead of one per *node* — and ``evaluator``
memoizes the result on the expression object so a plan (and the plan
cache that retains it) compiles each expression exactly once.

Semantics are bit-for-bit those of the interpreter, which stays in place
as the reference implementation for differential testing:

* three-valued logic: NULL propagates through comparisons, arithmetic,
  NOT, and scalar functions; AND/OR keep their short-circuit behavior
  (``FALSE AND (1/0 = 1)`` must not raise);
* CASE and COALESCE only evaluate the branches they need;
* errors (division by zero, failing scalar functions) raise the same
  :class:`ExecutionError` at the same points.

Compilation is best-effort: any expression the generator does not
understand falls back to the interpreted ``eval`` bound method.  The
``REPRO_COMPILE_EXPRS=0`` environment variable (or :func:`set_enabled`)
turns the whole subsystem off, which is how the benchmark harness
measures interpreted-vs-compiled deltas.
"""

from __future__ import annotations

import math
import os
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.errors import ExecutionError
from repro.plan.expressions import (
    _SCALAR_FUNCS,
    BoundBinary,
    BoundCase,
    BoundColumn,
    BoundExpr,
    BoundFunc,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundParam,
    BoundUnary,
)

__all__ = [
    "CompileError",
    "compile_expr",
    "compiled_source",
    "evaluator",
    "is_enabled",
    "set_enabled",
]

_ATTR = "_compiled_fn"

_enabled = os.environ.get("REPRO_COMPILE_EXPRS", "1").lower() not in (
    "0",
    "false",
    "off",
)


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable compiled evaluation (interpreter fallback)."""
    global _enabled
    _enabled = bool(enabled)


def is_enabled() -> bool:
    return _enabled


class CompileError(Exception):
    """Raised when an expression cannot be lowered (caller falls back)."""


def evaluator(expr: Optional[BoundExpr]) -> Optional[Callable[[Sequence[Any]], Any]]:
    """The row evaluator for an expression: compiled when possible.

    Returns ``None`` for ``None`` (optional predicates stay optional at the
    call site).  The compiled function is memoized on the expression
    instance, so plans cached across statements never recompile.
    """
    if expr is None:
        return None
    if not _enabled:
        return expr.eval
    fn = expr.__dict__.get(_ATTR)
    if fn is None:
        try:
            fn = compile_expr(expr)
        except CompileError:
            fn = expr.eval
        object.__setattr__(expr, _ATTR, fn)
    return fn


def compiled_source(expr: BoundExpr) -> str:
    """The generated Python source for an expression (debugging aid)."""
    fn = evaluator(expr)
    return getattr(fn, "__source__", "<interpreted>")


# --------------------------------------------------------------------------
# Runtime helpers shared by all generated functions
# --------------------------------------------------------------------------


def _rt_div(left: Any, right: Any) -> Any:
    if right == 0:
        raise ExecutionError("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        # SQL integer division truncates toward zero.
        return int(left / right)
    return left / right


def _rt_mod(left: Any, right: Any) -> Any:
    if right == 0:
        raise ExecutionError("modulo by zero")
    if isinstance(left, float) or isinstance(right, float):
        return math.fmod(left, right)
    return int(math.fmod(left, right))


def _rt_call(fn: Callable[[Sequence[Any]], Any], name: str, args: Sequence[Any]) -> Any:
    try:
        return fn(args)
    except (TypeError, ValueError, AttributeError) as exc:
        raise ExecutionError(f"{name} failed: {exc}") from exc


#: Python spellings of the null-propagating binary operators.
_PY_BINOPS = {
    "=": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
}


class _Emitter:
    """Accumulates generated lines, constants, and temporaries."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.env: Dict[str, Any] = {
            "_rt_div": _rt_div,
            "_rt_mod": _rt_mod,
            "_rt_call": _rt_call,
        }
        self._counter = 0
        self.depth = 1

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def temp(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    def const(self, value: Any) -> str:
        self._counter += 1
        name = f"k{self._counter}"
        self.env[name] = value
        return name

    @staticmethod
    def nullable(atom: str) -> bool:
        """Whether an atom can be None at runtime.

        Temporaries (``tN``), constants (``kN``), parameter reads
        (``kN[i]``), and row reads (``row[i]``) can; literal atoms can only
        when they are the literal ``None`` itself.
        """
        if atom.startswith(("row[", "t", "k")):
            return True
        return atom == "None"

    def null_guard(self, *atoms: str) -> Optional[str]:
        """An ``a is None or b is None`` guard over the nullable atoms.

        Returns None when no atom can be NULL (guard statically false),
        and the atom ``"True"`` never appears: a literal ``None`` operand
        still routes through ``x is None`` via its const slot.
        """
        checks = [f"{a} is None" for a in atoms if self.nullable(a)]
        if not checks:
            return None
        return " or ".join(checks)

    # -- dispatch ----------------------------------------------------------

    def emit(self, expr: BoundExpr) -> str:
        """Emit code computing ``expr``; returns a repeatable atom.

        The returned string is either a bound temporary, a ``row[i]``
        subscript, or a literal — all safe to mention several times in one
        generated line.
        """
        if isinstance(expr, BoundColumn):
            return f"row[{expr.index}]"
        if isinstance(expr, BoundLiteral):
            return self._literal_atom(expr.value)
        if isinstance(expr, BoundParam):
            return f"{self.const(expr.slots)}[{expr.index}]"
        if isinstance(expr, BoundBinary):
            return self._emit_binary(expr)
        if isinstance(expr, BoundUnary):
            return self._emit_unary(expr)
        if isinstance(expr, BoundIsNull):
            return self._emit_is_null(expr)
        if isinstance(expr, BoundInList):
            return self._emit_in_list(expr)
        if isinstance(expr, BoundLike):
            return self._emit_like(expr)
        if isinstance(expr, BoundCase):
            return self._emit_case(expr)
        if isinstance(expr, BoundFunc):
            return self._emit_func(expr)
        raise CompileError(f"cannot compile {type(expr).__name__}")

    # -- leaves ------------------------------------------------------------

    def _literal_atom(self, value: Any) -> str:
        if value is None or isinstance(value, (bool, int, str)):
            return repr(value)
        if isinstance(value, float):
            # repr round-trips floats exactly (including inf via env const).
            if math.isfinite(value):
                return repr(value)
        return self.const(value)

    # -- operators ---------------------------------------------------------

    def _emit_binary(self, expr: BoundBinary) -> str:
        op = expr.op
        if op in ("AND", "OR"):
            return self._emit_logical(expr)
        left = self.emit(expr.left)
        right = self.emit(expr.right)
        out = self.temp()
        if op in _PY_BINOPS:
            body = f"{left} {_PY_BINOPS[op]} {right}"
        elif op == "/":
            body = f"_rt_div({left}, {right})"
        elif op == "%":
            body = f"_rt_mod({left}, {right})"
        elif op == "||":
            body = f"str({left}) + str({right})"
        else:
            raise CompileError(f"unknown binary operator {op!r}")
        guard = self.null_guard(left, right)
        if guard is None:
            self.line(f"{out} = {body}")
        else:
            self.line(f"{out} = None if {guard} else ({body})")
        return out

    def _emit_logical(self, expr: BoundBinary) -> str:
        """AND/OR with interpreter-faithful short-circuiting."""
        absorbing = "False" if expr.op == "AND" else "True"
        neutral = "True" if expr.op == "AND" else "False"
        left = self.emit(expr.left)
        out = self.temp()
        self.line(f"if {left} is {absorbing}:")
        self.depth += 1
        self.line(f"{out} = {absorbing}")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        right = self.emit(expr.right)
        self.line(f"if {right} is {absorbing}:")
        self.depth += 1
        self.line(f"{out} = {absorbing}")
        self.depth -= 1
        self.line("else:")
        self.depth += 1
        guard = self.null_guard(left, right)
        if guard is None:
            self.line(f"{out} = {neutral}")
        else:
            self.line(f"{out} = None if {guard} else {neutral}")
        self.depth -= 2
        return out

    def _emit_unary(self, expr: BoundUnary) -> str:
        operand = self.emit(expr.operand)
        out = self.temp()
        body = f"not {operand}" if expr.op == "NOT" else f"-{operand}"
        guard = self.null_guard(operand)
        if guard is None:
            self.line(f"{out} = {body}")
        else:
            self.line(f"{out} = None if {guard} else ({body})")
        return out

    def _emit_is_null(self, expr: BoundIsNull) -> str:
        operand = self.emit(expr.operand)
        out = self.temp()
        if not self.nullable(operand):
            self.line(f"{out} = {expr.negated!r}")
        elif operand == "None":
            self.line(f"{out} = {(not expr.negated)!r}")
        else:
            check = "is not None" if expr.negated else "is None"
            self.line(f"{out} = {operand} {check}")
        return out

    def _emit_in_list(self, expr: BoundInList) -> str:
        operand = self.emit(expr.operand)
        values = self.const(expr.values)
        out = self.temp()
        if expr.has_null:
            # Matching is definite; not matching is unknown (list had NULL).
            hit = "False" if expr.negated else "True"
            body = f"{hit} if {operand} in {values} else None"
        else:
            membership = "not in" if expr.negated else "in"
            body = f"{operand} {membership} {values}"
        guard = self.null_guard(operand)
        if guard is None:
            self.line(f"{out} = {body}")
        else:
            self.line(f"{out} = None if {guard} else ({body})")
        return out

    def _emit_like(self, expr: BoundLike) -> str:
        operand = self.emit(expr.operand)
        regex = self.const(expr._regex)
        out = self.temp()
        check = "is None" if expr.negated else "is not None"
        body = f"{regex}.match({operand}) {check}"
        guard = self.null_guard(operand)
        if guard is None:
            self.line(f"{out} = {body}")
        else:
            self.line(f"{out} = None if {guard} else ({body})")
        return out

    # -- branching constructs ----------------------------------------------

    def _emit_case(self, expr: BoundCase) -> str:
        out = self.temp()

        def chain(index: int) -> None:
            if index == len(expr.whens):
                if expr.else_result is not None:
                    result = self.emit(expr.else_result)
                    self.line(f"{out} = {result}")
                else:
                    self.line(f"{out} = None")
                return
            cond, result_expr = expr.whens[index]
            cond_atom = self.emit(cond)
            self.line(f"if {cond_atom} is True:")
            self.depth += 1
            result = self.emit(result_expr)
            self.line(f"{out} = {result}")
            self.depth -= 1
            self.line("else:")
            self.depth += 1
            chain(index + 1)
            self.depth -= 1

        chain(0)
        return out

    def _emit_func(self, expr: BoundFunc) -> str:
        name = expr.name
        if name == "COALESCE":
            return self._emit_coalesce(expr)
        spec = _SCALAR_FUNCS.get(name)
        if spec is None:
            raise CompileError(f"unknown scalar function {name!r}")
        args = [self.emit(a) for a in expr.args]
        fn = self.const(spec["fn"])
        out = self.temp()
        arg_tuple = "(" + ", ".join(args) + ("," if len(args) == 1 else "") + ")"
        call = f"_rt_call({fn}, {name!r}, {arg_tuple})"
        guard = self.null_guard(*args)
        if guard is None:
            self.line(f"{out} = {call}")
        else:
            self.line(f"{out} = None if {guard} else {call}")
        return out

    def _emit_coalesce(self, expr: BoundFunc) -> str:
        out = self.temp()

        def chain(index: int) -> None:
            if index == len(expr.args):
                self.line(f"{out} = None")
                return
            arg = self.emit(expr.args[index])
            if arg == "None":
                chain(index + 1)
                return
            if not self.nullable(arg):
                # Statically non-NULL: later arguments are never reached.
                self.line(f"{out} = {arg}")
                return
            self.line(f"if {arg} is not None:")
            self.depth += 1
            self.line(f"{out} = {arg}")
            self.depth -= 1
            self.line("else:")
            self.depth += 1
            chain(index + 1)
            self.depth -= 1

        chain(0)
        return out


def compile_expr(expr: BoundExpr) -> Callable[[Sequence[Any]], Any]:
    """Lower a bound expression to a single Python function of one row.

    Raises :class:`CompileError` when the tree contains a node the
    generator does not understand; callers fall back to ``expr.eval``.
    """
    emitter = _Emitter()
    result = emitter.emit(expr)
    body = "\n".join(emitter.lines) if emitter.lines else ""
    source = "def _compiled(row):\n"
    if body:
        source += body + "\n"
    source += f"    return {result}\n"
    namespace = dict(emitter.env)
    code = compile(source, "<expr-codegen>", "exec")
    exec(code, namespace)  # noqa: S102 — our own generated source
    fn = namespace["_compiled"]
    fn.__source__ = source
    fn.__expr_sql__ = expr.to_sql()
    return fn
