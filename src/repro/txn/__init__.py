"""Transactions: lock manager, 2PL, MVCC snapshot isolation, baselines.

Three interchangeable concurrency-control schemes over a keyed store back
experiment E6 ("one gazillion TAs/sec"): a single global lock (serial), strict
two-phase locking with deadlock detection, and multi-version concurrency
control with first-updater-wins conflict handling.
"""

from repro.txn.locks import LockManager, LockMode
from repro.txn.schemes import (
    ConcurrencyScheme,
    GlobalLockScheme,
    MVCCScheme,
    TransactionHandle,
    TwoPLScheme,
    make_scheme,
    scheme_names,
)

__all__ = [
    "LockManager",
    "LockMode",
    "ConcurrencyScheme",
    "GlobalLockScheme",
    "TwoPLScheme",
    "MVCCScheme",
    "TransactionHandle",
    "make_scheme",
    "scheme_names",
]
