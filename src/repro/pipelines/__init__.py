"""Declarative AI-data-pipeline DAGs with a cost-based rewriter.

The Alibaba/QWEN-3 anecdote from the panel — "applying query optimization
principles to rebuild their pipeline for training QWEN 3, significantly
reducing costs" — in runnable form.  Pipelines are declarative chains of
dataset operators carrying field-level read/write sets and per-row costs;
the optimizer applies the classic rules (cheap-selective-filters-first,
dedup-early, map fusion) without changing results, and the executor accounts
rows, bytes, and cpu/gpu cost so E4 can report the reduction factor.
"""

from repro.pipelines.cost import CostReport, OpCost
from repro.pipelines.executor import run_pipeline
from repro.pipelines.ops import Dedup, Filter, FlatMap, Lookup, Map, Op, Sample
from repro.pipelines.pipeline import Pipeline
from repro.pipelines.rewriter import PipelineOptimizer

__all__ = [
    "Pipeline",
    "Op",
    "Filter",
    "Map",
    "FlatMap",
    "Dedup",
    "Lookup",
    "Sample",
    "PipelineOptimizer",
    "run_pipeline",
    "CostReport",
    "OpCost",
]
