"""Durability cost benchmark (≈30 s) → BENCH_durability.json.

Measures what crash safety actually costs on the commit path, and what
recovery costs at reboot:

* **commit throughput** — single-row INSERT commits/second on a file-backed
  database under the three durability modes: ``none`` (WAL off), ``commit``
  (WAL flushed to the OS, no fsync), ``fsync`` (full power-loss safety);
* **recovery time** — reopen latency after an unclean exit, as a function
  of the number of committed operations in the log (checkpointing off so
  the log actually grows).

Target: WAL-on without fsync costs ≤2× over WAL-off (logical logging stays
off the critical path); recovery time scales linearly in log length.

Run directly::

    PYTHONPATH=src python benchmarks/bench_durability.py [--quick]
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_json import write_report  # noqa: E402
from repro.core.database import Database  # noqa: E402

COMMITS = 2000
RECOVERY_LOG_LENGTHS = [500, 2000, 8000]
QUICK_COMMITS = 300
QUICK_LOG_LENGTHS = [200, 800]


def bench_commit_throughput(workdir: str, durability: str, commits: int) -> dict:
    path = os.path.join(workdir, f"tput-{durability}.db")
    db = Database(path=path, durability=durability, checkpoint_interval=0)
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    t0 = time.perf_counter()
    for i in range(commits):
        db.execute(f"INSERT INTO t VALUES ({i}, 'row-{i}')")
    elapsed = time.perf_counter() - t0
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == commits
    db.close()
    return {
        "commits": commits,
        "elapsed_s": round(elapsed, 3),
        "commits_per_s": round(commits / elapsed, 1),
    }


def bench_recovery_time(workdir: str, log_length: int) -> dict:
    path = os.path.join(workdir, f"rec-{log_length}.db")
    db = Database(path=path, durability="commit", checkpoint_interval=0)
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    db.insert_rows("t", [(i, f"row-{i}") for i in range(log_length)])
    db.wal.flush()
    # Unclean exit: drop the handles without close() so no checkpoint or
    # clean-shutdown sidecar gets written.
    db.wal.close()
    db.disk.close()

    t0 = time.perf_counter()
    recovered = Database(path=path)
    elapsed = time.perf_counter() - t0
    assert recovered.recovery_stats == {"t": log_length}
    assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == log_length
    recovered.close()
    return {
        "log_ops": log_length,
        "recovery_s": round(elapsed, 4),
        "ops_per_s": round(log_length / elapsed, 1),
    }


def main() -> int:
    quick = "--quick" in sys.argv
    commits = QUICK_COMMITS if quick else COMMITS
    log_lengths = QUICK_LOG_LENGTHS if quick else RECOVERY_LOG_LENGTHS
    started = time.time()
    workdir = tempfile.mkdtemp(prefix="bench_durability_")
    try:
        report = {"commit_throughput": {}, "recovery": []}
        for durability in ("none", "commit", "fsync"):
            report["commit_throughput"][durability] = bench_commit_throughput(
                workdir, durability, commits
            )
        for n in log_lengths:
            report["recovery"].append(bench_recovery_time(workdir, n))

        off = report["commit_throughput"]["none"]["commits_per_s"]
        on = report["commit_throughput"]["commit"]["commits_per_s"]
        full = report["commit_throughput"]["fsync"]["commits_per_s"]
        report["overheads"] = {
            "wal_no_fsync_slowdown": round(off / on, 2),
            "wal_fsync_slowdown": round(off / full, 2),
        }
        report["elapsed_s"] = round(time.time() - started, 1)

        out_path = write_report("durability", report)
        ok = report["overheads"]["wal_no_fsync_slowdown"] <= 2.0
        print(f"\nwrote {out_path}; WAL-overhead target (<=2x) "
              f"{'MET' if ok else 'NOT MET'}")
        return 0 if ok else 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
