"""An interactive SQL shell — the usability artifact.

Jens Dittrich's panel position credits DuckDB's success partly to "fixing
usability issues in very nice ways"; the minimum viable version of that
idea is: one command, no server, readable output, helpful meta-commands.

Run::

    python -m repro                 # in-memory session
    python -m repro mydata.db       # file-backed pages
    python -m repro --demo          # preloaded demo tables

Meta-commands: ``.tables``, ``.schema [table]``, ``.indexes``,
``.analyze``, ``.engine volcano|vectorized``, ``.timer on|off``,
``.help``, ``.quit``.  Everything else is SQL.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

from repro.core.database import Database
from repro.core.errors import ReproError

_HELP = """\
SQL statements end at the newline (no trailing ';' needed).
Meta-commands:
  .tables               list tables
  .schema [table]       show column definitions
  .indexes              list indexes
  .analyze [table]      refresh optimizer statistics
  .engine NAME          switch executor: volcano | vectorized
  .timer on|off         toggle per-statement timing
  .help                 this text
  .quit / .exit         leave\
"""


def load_demo(db: Database) -> None:
    """Small demo dataset for kicking the tires."""
    db.execute(
        "CREATE TABLE cities (id INTEGER, name TEXT, country TEXT, pop FLOAT)"
    )
    db.execute(
        "INSERT INTO cities VALUES "
        "(1,'Berlin','DE',3.7),(2,'Hamburg','DE',1.8),(3,'Paris','FR',2.1),"
        "(4,'Lyon','FR',0.5),(5,'Madrid','ES',3.2),(6,'Zurich','CH',0.4)"
    )
    db.execute("CREATE TABLE visits (city_id INTEGER, year INTEGER, tourists FLOAT)")
    db.insert_rows(
        "visits",
        [(1 + (i * 7) % 6, 2019 + i % 5, round(0.5 + (i * 13 % 40) / 10, 1)) for i in range(60)],
    )
    db.analyze()


class Shell:
    """REPL state + command dispatch (separated from I/O for testability)."""

    def __init__(self, db: Optional[Database] = None):
        self.db = db if db is not None else Database()
        self.timer = True
        self.done = False

    def execute_line(self, line: str) -> str:
        """Process one input line; returns the text to display."""
        line = line.strip().rstrip(";")
        if not line:
            return ""
        if line.startswith("."):
            return self._meta(line)
        try:
            started = time.perf_counter()
            result = self.db.execute(line)
            elapsed_ms = (time.perf_counter() - started) * 1e3
        except ReproError as exc:
            return f"error: {exc}"
        if result.plan_text is not None:
            body = result.plan_text
        elif result.columns:
            body = result.pretty(max_rows=40)
        else:
            body = f"ok ({result.rowcount} rows affected)"
        if self.timer:
            body += f"\n({elapsed_ms:.1f} ms)"
        return body

    # -- meta-commands -------------------------------------------------------

    def _meta(self, line: str) -> str:
        parts = line.split()
        command, args = parts[0].lower(), parts[1:]
        if command in (".quit", ".exit"):
            self.done = True
            return "bye"
        if command == ".help":
            return _HELP
        if command == ".tables":
            names = self.db.catalog.table_names()
            return "\n".join(names) if names else "(no tables)"
        if command == ".schema":
            return self._schema(args[0] if args else None)
        if command == ".indexes":
            lines = []
            for name in self.db.catalog.table_names():
                for info in self.db.table(name).indexes.values():
                    unique = "UNIQUE " if info.unique else ""
                    lines.append(
                        f"{info.name}: {unique}{info.kind} on {info.table}({info.column})"
                    )
            return "\n".join(lines) if lines else "(no indexes)"
        if command == ".analyze":
            self.db.analyze(args[0] if args else None)
            return "statistics refreshed"
        if command == ".engine":
            if not args or args[0] not in ("volcano", "vectorized"):
                return "usage: .engine volcano|vectorized"
            self.db.engine = args[0]
            return f"engine = {args[0]}"
        if command == ".timer":
            if args and args[0] in ("on", "off"):
                self.timer = args[0] == "on"
                return f"timer = {args[0]}"
            return "usage: .timer on|off"
        return f"unknown command {command!r} (try .help)"

    def _schema(self, table_name: Optional[str]) -> str:
        names = [table_name] if table_name else self.db.catalog.table_names()
        lines: List[str] = []
        try:
            for name in names:
                table = self.db.table(name)
                lines.append(f"{table.name} ({table.layout} layout, {table.row_count} rows)")
                for col in table.schema.columns:
                    null = "" if col.nullable else " NOT NULL"
                    width = f"({col.vector_width})" if col.vector_width else ""
                    lines.append(f"  {col.name} {col.dtype.value}{width}{null}")
        except ReproError as exc:
            return f"error: {exc}"
        return "\n".join(lines) if lines else "(no tables)"


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    demo = "--demo" in args
    if demo:
        args.remove("--demo")
    path = args[0] if args else None
    db = Database(path=path)
    if demo:
        load_demo(db)
    shell = Shell(db)
    source = "demo tables loaded; " if demo else ""
    print(f"repro SQL shell — {source}type .help for commands, .quit to leave")
    while not shell.done:
        try:
            line = input("repro> ")
        except (EOFError, KeyboardInterrupt):
            print()
            break
        output = shell.execute_line(line)
        if output:
            print(output)
    db.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
