"""Concurrency stress tests: invariants under real thread interleavings."""

import random
import threading

import pytest

from repro.core.errors import TransactionError
from repro.txn.schemes import MVCCScheme, TwoPLScheme, make_scheme

THREADS = 6
TRANSFERS_PER_THREAD = 30
ACCOUNTS = 10
INITIAL = 100


def _run_transfers(scheme, seed_base: int) -> int:
    """Concurrent random transfers; returns total successful transfers.

    The invariant: money is conserved — the sum over accounts never changes
    no matter how transactions interleave, block, conflict, or retry.
    """
    scheme.load({i: INITIAL for i in range(ACCOUNTS)})
    done = [0] * THREADS

    def worker(worker_id: int) -> None:
        rng = random.Random(seed_base + worker_id)
        for __ in range(TRANSFERS_PER_THREAD):
            src, dst = rng.sample(range(ACCOUNTS), 2)
            # Lock-ordering discipline to avoid upgrade deadlock storms.
            first, second = min(src, dst), max(src, dst)
            while True:
                txn = scheme.begin()
                try:
                    a = scheme.read(txn, first)
                    b = scheme.read(txn, second)
                    amount = rng.randint(1, 5)
                    if first == src:
                        scheme.write(txn, first, a - amount)
                        scheme.write(txn, second, b + amount)
                    else:
                        scheme.write(txn, first, a + amount)
                        scheme.write(txn, second, b - amount)
                    scheme.commit(txn)
                    done[worker_id] += 1
                    break
                except TransactionError:
                    if txn.active:
                        scheme.abort(txn)
                    continue

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for t in pool:
        t.start()
    for t in pool:
        t.join(timeout=60)
    return sum(done)


@pytest.mark.parametrize("scheme_name", ["global-lock", "2pl", "mvcc"])
def test_money_conserved_under_concurrency(scheme_name):
    scheme = make_scheme(scheme_name)
    completed = _run_transfers(scheme, seed_base=hash(scheme_name) % 1000)
    assert completed == THREADS * TRANSFERS_PER_THREAD
    check = scheme.begin()
    total = sum(scheme.read(check, i) for i in range(ACCOUNTS))
    scheme.commit(check)
    assert total == ACCOUNTS * INITIAL


def test_mvcc_snapshot_stability_under_writers():
    """A long reader sees one frozen snapshot while writers churn."""
    scheme = MVCCScheme()
    scheme.load({i: 0 for i in range(5)})
    reader = scheme.begin()
    first_view = [scheme.read(reader, i) for i in range(5)]

    def writer() -> None:
        for round_nr in range(20):
            txn = scheme.begin()
            try:
                for key in range(5):
                    scheme.write(txn, key, round_nr)
                scheme.commit(txn)
            except TransactionError:
                scheme.abort(txn)

    pool = [threading.Thread(target=writer) for __ in range(3)]
    for t in pool:
        t.start()
    for t in pool:
        t.join(timeout=30)
    second_view = [scheme.read(reader, i) for i in range(5)]
    assert second_view == first_view == [0, 0, 0, 0, 0]
    scheme.commit(reader)
    fresh = scheme.begin()
    latest = [scheme.read(fresh, i) for i in range(5)]
    scheme.commit(fresh)
    assert latest != first_view  # writers did land


def test_2pl_no_dirty_reads():
    """A 2PL reader can never observe another transaction's uncommitted
    write (the X lock blocks it until commit/abort)."""
    scheme = TwoPLScheme(wait_timeout=10.0)
    scheme.load({"k": "clean"})
    writer_holding = threading.Event()
    release_writer = threading.Event()
    observed = []

    def writer() -> None:
        txn = scheme.begin()
        scheme.write(txn, "k", "dirty")
        writer_holding.set()
        release_writer.wait(timeout=10)
        scheme.abort(txn)  # the dirty value must never have been visible

    def reader() -> None:
        writer_holding.wait(timeout=10)
        txn = scheme.begin()
        release_timer = threading.Timer(0.2, release_writer.set)
        release_timer.start()
        observed.append(scheme.read(txn, "k"))  # blocks until abort
        scheme.commit(txn)

    threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert observed == ["clean"]
