"""E8 — "independence between physical and logical" holds lasting value.

Reproduction: the *same logical SQL* executed over four physical
configurations — {row heap, column store} × {Volcano, vectorized engine} —
must return identical answers while exhibiting different cost profiles
(scan-heavy aggregates favor columnar/vectorized; point-ish lookups favor
the row heap).  The principle is the testable part: queries never mention
the physical layout.
"""

import pytest

from repro.bench.harness import format_table
from repro.core.database import Database

ROWS = 8000

QUERIES = {
    "agg-scan": "SELECT category, COUNT(*), SUM(amount), AVG(amount) "
                "FROM sales GROUP BY category ORDER BY category",
    "selective-filter": "SELECT id, amount FROM sales WHERE amount > 990 ORDER BY id",
    "wide-projection": "SELECT * FROM sales WHERE id % 97 = 0 ORDER BY id",
}

CONFIGS = [
    ("row+volcano", "row", "volcano"),
    ("row+vectorized", "row", "vectorized"),
    ("column+volcano", "column", "volcano"),
    ("column+vectorized", "column", "vectorized"),
]

_RESULTS = {}
_ANSWERS = {}


def build_db(layout: str) -> Database:
    db = Database(default_layout=layout)
    db.execute(
        "CREATE TABLE sales (id INTEGER, category TEXT, amount FLOAT, note TEXT)"
    )
    db.insert_rows(
        "sales",
        [
            (i, f"cat{i % 7}", (i * 37 % 1000) + 0.5, f"note-{i % 13}")
            for i in range(ROWS)
        ],
    )
    db.analyze()
    return db


@pytest.fixture(scope="module")
def dbs():
    return {"row": build_db("row"), "column": build_db("column")}


@pytest.mark.parametrize("query_name", list(QUERIES))
@pytest.mark.parametrize("label,layout,engine", CONFIGS)
def test_e8_configuration(benchmark, dbs, query_name, label, layout, engine):
    db = dbs[layout]
    sql = QUERIES[query_name]
    result = benchmark.pedantic(
        lambda: db.execute(sql, engine=engine), rounds=3, iterations=1
    )
    _RESULTS[(query_name, label)] = benchmark.stats.stats.min * 1e3
    _ANSWERS.setdefault(query_name, {})[label] = result.rows


def test_e8_claim_check(benchmark, dbs):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for query_name in QUERIES:
        row = [query_name]
        for label, __, __ in CONFIGS:
            row.append(_RESULTS[(query_name, label)])
        rows.append(row)
    print()
    print(
        format_table(
            ["query"] + [label for label, __, __ in CONFIGS],
            rows,
            title=f"E8: one logical query, four physical configs (ms, {ROWS} rows)",
        )
    )
    # The principle: answers are identical across every physical config.
    for query_name, answers in _ANSWERS.items():
        reference = answers[CONFIGS[0][0]]
        for label, got in answers.items():
            assert got == reference, f"{query_name}: {label} diverged"
    # The payoff: physical choice changes cost — for the scan-heavy
    # aggregate, the best config beats the worst by a real factor.
    agg = [_RESULTS[("agg-scan", label)] for label, __, __ in CONFIGS]
    assert max(agg) / min(agg) > 1.15
