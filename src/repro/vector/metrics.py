"""Distance metrics for vector search.

All metrics are *distances* (smaller = more similar) so indexes can rank
uniformly; ``dot`` is negated inner product for that reason.  Batch variants
take a ``(n, d)`` matrix and return ``n`` distances via numpy.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np


def l2_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance."""
    av, bv = np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    return float(np.linalg.norm(av - bv))


def dot_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Negated inner product (so smaller = more similar)."""
    return -float(np.dot(np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)))


def cosine_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """1 - cosine similarity; zero vectors are maximally distant."""
    av, bv = np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    na, nb = np.linalg.norm(av), np.linalg.norm(bv)
    if na == 0.0 or nb == 0.0:
        return 1.0
    return float(1.0 - np.dot(av, bv) / (na * nb))


def batch_l2(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    return np.linalg.norm(matrix - query, axis=1)


def batch_dot(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    return -(matrix @ query)


def batch_cosine(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    qn = np.linalg.norm(query)
    if qn == 0.0:
        return np.ones(len(matrix))
    norms = np.linalg.norm(matrix, axis=1)
    sims = np.where(norms > 0, (matrix @ query) / (norms * qn + 1e-30), 0.0)
    return 1.0 - sims


METRICS: Dict[str, Callable] = {
    "l2": l2_distance,
    "dot": dot_distance,
    "cosine": cosine_distance,
}

BATCH_METRICS: Dict[str, Callable] = {
    "l2": batch_l2,
    "dot": batch_dot,
    "cosine": batch_cosine,
}


def resolve_metric(name: str) -> str:
    key = name.lower()
    if key not in METRICS:
        raise ValueError(f"unknown metric {name!r}; choose from {sorted(METRICS)}")
    return key
