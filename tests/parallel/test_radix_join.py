"""Radix-partitioned join: stable hashing, routing, and correctness edges.

The partition-routing hash used to be the builtin ``hash``, which is
``PYTHONHASHSEED``-randomized for strings — partition assignment changed
from run to run.  These tests pin the replacement: exact output values
(so nobody reseeds it by accident), cross-type equality (``1 == 1.0 ==
True`` must co-partition), scalar/vector agreement, and a subprocess
regression proving assignments are identical under different hash seeds.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import astuple
from pathlib import Path

import numpy as np
import pytest

from repro.core.database import Database
from repro.exec.stablehash import (
    stable_hash,
    stable_hash_array,
    stable_hash_key,
    stable_partitions,
)
from repro.optimizer.optimizer import OptimizerOptions

from tests.parallel.test_morsels import parallel_db

_SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestStableHashScalar:
    def test_pinned_values_never_change(self):
        # Frozen outputs: a change here silently re-routes every recorded
        # partition assignment, so treat any diff as a breaking change.
        assert stable_hash(0) == 16294208416658607535
        assert stable_hash(1) == 10451216379200822465
        assert stable_hash(-1) == 16490336266968443936
        assert stable_hash("") == 14695981039346656037
        assert stable_hash("lineitem") == 2612833759254164800
        assert stable_hash(b"lineitem") == stable_hash("lineitem")
        assert stable_hash(None) == 0

    def test_equal_values_hash_equal_across_types(self):
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
        assert stable_hash(0) == stable_hash(0.0) == stable_hash(False)
        assert stable_hash(0.0) == stable_hash(-0.0)
        big = float(2**70)  # exactly representable: int path must agree
        assert stable_hash(int(big)) == stable_hash(big)

    def test_unequal_values_spread(self):
        values = [stable_hash(v) for v in range(1000)]
        assert len(set(values)) == 1000

    def test_tuple_keys_are_order_sensitive(self):
        assert stable_hash_key((1, 2)) != stable_hash_key((2, 1))
        assert stable_hash_key(("a", None)) != stable_hash_key((None, "a"))

    def test_nan_and_inf_are_total(self):
        assert isinstance(stable_hash(float("nan")), int)
        assert stable_hash(float("inf")) != stable_hash(float("-inf"))


class TestStableHashVector:
    def test_int64_agrees_with_scalar(self):
        arr = np.array([0, 1, -1, 47, -(2**63), 2**63 - 1], dtype=np.int64)
        hashes = stable_hash_array(arr)
        assert hashes is not None
        for value, h in zip(arr.tolist(), hashes.tolist()):
            assert h == stable_hash(value), value

    def test_float64_agrees_with_scalar(self):
        arr = np.array([0.0, -0.0, 1.0, 2.5, -17.25, 1e300, 2.0**70], dtype=np.float64)
        hashes = stable_hash_array(arr)
        assert hashes is not None
        for value, h in zip(arr.tolist(), hashes.tolist()):
            assert h == stable_hash(value), value

    def test_integral_floats_co_partition_with_ints(self):
        ints = np.arange(100, dtype=np.int64)
        floats = ints.astype(np.float64)
        assert np.array_equal(
            stable_partitions(ints, 8), stable_partitions(floats, 8)
        )

    def test_nonfinite_floats_fall_back_to_scalar(self):
        arr = np.array([1.0, float("nan")], dtype=np.float64)
        assert stable_hash_array(arr) is None
        assert stable_partitions(arr, 8) is None

    def test_object_dtype_has_no_kernel(self):
        arr = np.array(["a", "b"], dtype=object)
        assert stable_hash_array(arr) is None


_SEED_SCRIPT = """
import sys
sys.path.insert(0, {src_path!r})
from repro.exec.stablehash import stable_hash
values = ["lineitem", "supplier", "Brand#12", "", "x" * 100, 42, 2.5, (1, "a")]
print([stable_hash(v) % 16 for v in values])
print([hash(v) for v in values])
"""


class TestSeedIndependence:
    def test_partition_assignment_survives_hash_randomization(self, tmp_path):
        """The actual regression: builtin hash re-routes under a new
        PYTHONHASHSEED, stable_hash must not."""
        script = tmp_path / "route.py"
        script.write_text(_SEED_SCRIPT.format(src_path=_SRC))
        outputs = []
        for seed in ("0", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout.splitlines())
        stable_a, builtin_a = outputs[0]
        stable_b, builtin_b = outputs[1]
        assert stable_a == stable_b, "stable partition routing changed with the seed"
        # Sanity: the builtin really is randomized (str hashing differs), so
        # this test would have caught the original bug.
        assert builtin_a != builtin_b


_FORK_SCRIPT = """
import sys
sys.path.insert(0, {src_path!r})
from repro.core.database import Database
from repro.optimizer.optimizer import OptimizerOptions


def build(workers):
    opts = OptimizerOptions(workers=workers, parallel_min_rows=1, morsel_size=64)
    db = Database(
        engine="vectorized",
        default_layout="column",
        optimizer_options=opts if workers else OptimizerOptions(),
    )
    db.execute("CREATE TABLE l (name TEXT, v INTEGER)")
    db.execute("CREATE TABLE r (name TEXT, w INTEGER)")
    db.insert_rows("l", [(f"key-{{i % 97}}", i) for i in range(1200)])
    db.insert_rows("r", [(f"key-{{i}}", i * 10) for i in range(97)])
    return db

sql = "SELECT l.v, r.w FROM l JOIN r ON l.name = r.name"
serial = build(0).execute(sql).rows
parallel = build(3).execute(sql).rows
assert serial == parallel, "fork-pool join diverged from serial"
print(len(parallel))
"""


class TestForkPoolRouting:
    def test_string_key_join_under_process_pool(self, tmp_path):
        """String keys + REPRO_PROCESS_POOL=1: the configuration the old
        builtin-hash routing made hazardous.  Fresh interpreter so the fork
        happens outside pytest's thread state."""
        script = tmp_path / "fork_join.py"
        script.write_text(_FORK_SCRIPT.format(src_path=_SRC))
        env = dict(os.environ, REPRO_PROCESS_POOL="1", PYTHONHASHSEED="7")
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            check=False,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "1200"


# -- join correctness edges -------------------------------------------------


def _pair(rows_l, rows_r, workers=2, morsel_size=16, engine="vectorized"):
    serial = Database(engine=engine, default_layout="column")
    par = parallel_db(workers=workers, morsel_size=morsel_size, engine=engine)
    for db in (serial, par):
        db.execute("CREATE TABLE l (k INTEGER, fk FLOAT, s TEXT, v INTEGER)")
        db.execute("CREATE TABLE r (k INTEGER, fk FLOAT, s TEXT, w INTEGER)")
        db.insert_rows("l", rows_l)
        db.insert_rows("r", rows_r)
    return serial, par


def _default_rows():
    rows_l = [
        (i % 37 if i % 11 else None, float(i % 13), f"s{i % 7}", i)
        for i in range(400)
    ]
    rows_r = [(i, float(i % 13), f"s{i % 5}", i * 10) for i in range(50)]
    return rows_l, rows_r


class TestRadixJoinEdges:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("engine", ["volcano", "vectorized"])
    def test_int_keys_match_serial_exactly(self, engine, workers):
        serial, par = _pair(*_default_rows(), workers=workers, engine=engine)
        sql = "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k"
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_cross_type_int_float_keys_match(self):
        # 1 (int) joins 1.0 (float): vector mode bails on the kind
        # mismatch and the scalar path must convert exactly.
        serial, par = _pair(*_default_rows())
        sql = "SELECT l.v, r.w FROM l JOIN r ON l.k = r.fk"
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_string_keys_take_dict_mode(self):
        serial, par = _pair(*_default_rows())
        sql = "SELECT l.v, r.w FROM l JOIN r ON l.s = r.s"
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_multi_column_keys(self):
        serial, par = _pair(*_default_rows())
        sql = "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k AND l.s = r.s"
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_left_outer_preserves_unmatched_probe_rows(self):
        serial, par = _pair(*_default_rows())
        sql = "SELECT l.v, r.w FROM l LEFT JOIN r ON l.k = r.k"
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_skewed_keys_pile_into_one_partition(self):
        # Every build key identical: the LPT finalize order and the probe
        # must survive a single giant partition.
        rows_l = [(7, 0.0, "x", i) for i in range(300)]
        rows_r = [(7, 0.0, "x", j) for j in range(5)]
        serial, par = _pair(rows_l, rows_r, workers=4)
        sql = "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k"
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_empty_build_side(self):
        rows_l, _ = _default_rows()
        serial, par = _pair(rows_l, [])
        for sql in (
            "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k",
            "SELECT l.v, r.w FROM l LEFT JOIN r ON l.k = r.k",
        ):
            assert par.execute(sql).rows == serial.execute(sql).rows

    def test_residual_condition_disables_vector_probe(self):
        serial, par = _pair(*_default_rows())
        sql = "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k AND l.v + r.w > 500"
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_huge_int_keys_stay_exact(self):
        # Keys around 2**53 would collide after a float64 round-trip; the
        # int64 vector path must keep them distinct.
        base = (1 << 53) + 1
        rows_l = [(base + i, 0.0, "x", i) for i in range(64)] * 2
        rows_r = [(base + i, 0.0, "x", i * 10) for i in range(0, 64, 2)]
        serial, par = _pair(rows_l, rows_r)
        sql = "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k"
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_join_partitions_knob_is_honored_and_cached_separately(self):
        par = parallel_db(workers=2)
        par.optimizer_options = OptimizerOptions(
            workers=2, parallel_min_rows=1, morsel_size=16, join_partitions=3
        )
        par.execute("CREATE TABLE a (k INTEGER, v INTEGER)")
        par.execute("CREATE TABLE b (k INTEGER, w INTEGER)")
        par.insert_rows("a", [(i % 10, i) for i in range(100)])
        par.insert_rows("b", [(i, i) for i in range(10)])
        plan = par.explain("SELECT a.v, b.w FROM a JOIN b ON a.k = b.k")
        assert "workers=2x3" in plan
        # The knob participates in the plan-cache key.
        assert astuple(OptimizerOptions(workers=2)) != astuple(
            OptimizerOptions(workers=2, join_partitions=3)
        )
