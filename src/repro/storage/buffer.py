"""Buffer pool: caches page images between the disk manager and executors.

The pool owns a fixed number of frames.  ``fetch_page`` returns a pinned
:class:`~repro.storage.page.Page`; callers must ``unpin`` (marking dirty when
they wrote).  Eviction is delegated to a pluggable
:class:`~repro.storage.replacement.ReplacementPolicy`, the same classes the
KV-cache simulator uses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.errors import BufferPoolError
from repro.storage.disk import DiskManager
from repro.storage.page import Page
from repro.storage.replacement import LRUPolicy, ReplacementPolicy


@dataclass
class BufferPoolStats:
    """Counters exposed for benchmarks and the energy model."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """A page cache with pin counts and pluggable replacement."""

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = 256,
        policy: Optional[ReplacementPolicy] = None,
    ):
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self.disk = disk
        self.capacity = capacity
        self.policy = policy if policy is not None else LRUPolicy()
        self.stats = BufferPoolStats()
        self._frames: Dict[int, Page] = {}
        self._lock = threading.RLock()

    # -- public API --------------------------------------------------------

    def new_page(self) -> Page:
        """Allocate a fresh page on disk and return it pinned."""
        page_id = self.disk.allocate_page()
        with self._lock:
            self._ensure_frame_available()
            page = Page(page_id)
            page.pin_count = 1
            page.dirty = True  # header must reach disk even if never written
            self._frames[page_id] = page
            self.policy.record_insert(page_id)
            return page

    def fetch_page(self, page_id: int) -> Page:
        """Return the page pinned; reads from disk on a miss."""
        with self._lock:
            page = self._frames.get(page_id)
            if page is not None:
                self.stats.hits += 1
                page.pin_count += 1
                self.policy.record_access(page_id)
                return page
            self.stats.misses += 1
            self._ensure_frame_available()
            page = Page(page_id, self.disk.read_page(page_id))
            page.pin_count = 1
            self._frames[page_id] = page
            self.policy.record_insert(page_id)
            return page

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; mark dirty if the caller modified the page."""
        with self._lock:
            page = self._frames.get(page_id)
            if page is None:
                raise BufferPoolError(f"unpin of page {page_id} not in pool")
            if page.pin_count <= 0:
                raise BufferPoolError(f"unpin of unpinned page {page_id}")
            page.pin_count -= 1
            if dirty:
                page.dirty = True

    def flush_page(self, page_id: int) -> None:
        """Write a dirty page back to disk (keeps it cached)."""
        with self._lock:
            page = self._frames.get(page_id)
            if page is None:
                return
            if page.dirty:
                self.disk.write_page(page_id, page.to_bytes())
                self.stats.dirty_writebacks += 1
                page.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty cached page."""
        with self._lock:
            for page_id in list(self._frames):
                self.flush_page(page_id)

    def contains(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._frames

    def pinned_count(self) -> int:
        with self._lock:
            return sum(1 for p in self._frames.values() if p.pin_count > 0)

    def cached_page_ids(self) -> list:
        with self._lock:
            return sorted(self._frames)

    def reset_stats(self) -> None:
        self.stats = BufferPoolStats()

    # -- internals ----------------------------------------------------------

    def _ensure_frame_available(self) -> None:
        if len(self._frames) < self.capacity:
            return
        victim_id = self.policy.victim(self._is_evictable)
        if victim_id is None:
            raise BufferPoolError(
                f"all {self.capacity} frames are pinned; cannot evict"
            )
        victim = self._frames[victim_id]
        if victim.dirty:
            self.disk.write_page(victim_id, victim.to_bytes())
            self.stats.dirty_writebacks += 1
        del self._frames[victim_id]
        self.policy.remove(victim_id)
        self.stats.evictions += 1

    def _is_evictable(self, page_id) -> bool:
        page = self._frames.get(page_id)
        return page is not None and page.pin_count == 0
