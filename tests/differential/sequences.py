"""Shared randomized SQL sequence generator for differential suites.

Originally private to the sqlite3 oracle (``test_oracle.py``); factored out
so the network differential suite (``tests/net/test_differential.py``) can
replay the *same* seeded sequences through the wire clients and assert
they behave identically to the embedded engine.
"""

from __future__ import annotations

import os
import random

NUM_SEQUENCES = 110  # per engine; x2 engines > 200 sequences per run
NIGHTLY_MULTIPLIER = 5
STATEMENTS_PER_SEQUENCE = 40

NAMES = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "omega"]


def num_sequences() -> int:
    if os.environ.get("REPRO_NIGHTLY"):
        return NUM_SEQUENCES * NIGHTLY_MULTIPLIER
    return NUM_SEQUENCES


def predicate(rng: random.Random) -> str:
    """A WHERE clause both dialects parse identically (no NULL semantics)."""
    clauses = []
    for _ in range(rng.randint(1, 2)):
        col = rng.choice(["id", "name", "val"])
        if col == "id":
            op = rng.choice(["=", "<", ">", "<=", ">="])
            clauses.append(f"id {op} {rng.randint(0, 60)}")
        elif col == "name":
            clauses.append(f"name = '{rng.choice(NAMES)}'")
        else:
            op = rng.choice(["<", ">", "<=", ">="])
            clauses.append(f"val {op} {rng.randint(0, 200)}.5")
    joiner = rng.choice([" AND ", " OR "])
    return joiner.join(clauses)


def statement(rng: random.Random, in_txn: bool) -> str:
    """One random statement; explicit txn control keeps both engines in step."""
    roll = rng.random()
    if in_txn and roll < 0.15:
        return rng.choice(["COMMIT", "ROLLBACK"])
    if not in_txn and roll < 0.08:
        return "BEGIN"
    roll = rng.random()
    if roll < 0.40:
        rows = ", ".join(
            f"({rng.randint(0, 60)}, '{rng.choice(NAMES)}', {rng.randint(0, 200)}.5)"
            for _ in range(rng.randint(1, 3))
        )
        return f"INSERT INTO t VALUES {rows}"
    if roll < 0.60:
        assignment = rng.choice(
            [
                f"val = {rng.randint(0, 200)}.5",
                "val = val + 1.0",
                f"name = '{rng.choice(NAMES)}'",
                f"id = id + {rng.randint(1, 3)}",
            ]
        )
        return f"UPDATE t SET {assignment} WHERE {predicate(rng)}"
    if roll < 0.75:
        return f"DELETE FROM t WHERE {predicate(rng)}"
    if roll < 0.90:
        return f"SELECT id, name, val FROM t WHERE {predicate(rng)}"
    return f"SELECT COUNT(*), SUM(val) FROM t WHERE {predicate(rng)}"


def sequence(seed: int, length: int = STATEMENTS_PER_SEQUENCE):
    """The full seeded statement list (with txn-state tracking baked in)."""
    rng = random.Random(seed)
    statements = []
    in_txn = False
    for _ in range(length):
        sql = statement(rng, in_txn)
        if sql == "BEGIN":
            in_txn = True
        elif sql in ("COMMIT", "ROLLBACK"):
            in_txn = False
        statements.append(sql)
    if in_txn:
        statements.append("COMMIT")
    return statements


def canon(rows):
    """Order-insensitive, float-tolerant form of a result multiset."""
    out = []
    for row in rows:
        canon_row = []
        for v in row:
            if isinstance(v, float):
                canon_row.append(round(v, 6))
            elif v is None:
                canon_row.append(0)  # SUM() over zero rows: engine yields 0
            else:
                canon_row.append(v)
        out.append(tuple(canon_row))
    return sorted(out, key=repr)
