"""Tests for concurrency-control schemes (repro.txn.schemes)."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import TransactionError, WriteConflictError
from repro.txn.schemes import (
    GlobalLockScheme,
    MVCCScheme,
    TwoPLScheme,
    make_scheme,
    scheme_names,
)

ALL_SCHEMES = scheme_names()


@pytest.fixture(params=ALL_SCHEMES)
def scheme(request):
    return make_scheme(request.param)


class TestCommonBehaviour:
    def test_read_your_own_writes(self, scheme):
        txn = scheme.begin()
        scheme.write(txn, "k", 1)
        assert scheme.read(txn, "k") == 1
        scheme.commit(txn)

    def test_committed_writes_visible_later(self, scheme):
        t1 = scheme.begin()
        scheme.write(t1, "k", 42)
        scheme.commit(t1)
        t2 = scheme.begin()
        assert scheme.read(t2, "k") == 42
        scheme.commit(t2)

    def test_abort_discards_writes(self, scheme):
        scheme.load({"k": 1})
        txn = scheme.begin()
        scheme.write(txn, "k", 999)
        scheme.abort(txn)
        check = scheme.begin()
        assert scheme.read(check, "k") == 1
        scheme.commit(check)

    def test_missing_key_reads_none(self, scheme):
        txn = scheme.begin()
        assert scheme.read(txn, "ghost") is None
        scheme.commit(txn)

    def test_operations_after_commit_rejected(self, scheme):
        txn = scheme.begin()
        scheme.commit(txn)
        with pytest.raises(TransactionError):
            scheme.read(txn, "k")

    def test_commit_abort_counters(self, scheme):
        t1 = scheme.begin()
        scheme.commit(t1)
        t2 = scheme.begin()
        scheme.abort(t2)
        assert scheme.commits == 1
        assert scheme.aborts == 1

    def test_load_convenience(self, scheme):
        scheme.load({"a": 1, "b": 2})
        txn = scheme.begin()
        assert scheme.read(txn, "a") == 1
        assert scheme.read(txn, "b") == 2
        scheme.commit(txn)


class TestFactory:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_scheme("optimistic-magic")

    def test_names_cover_classes(self):
        assert set(ALL_SCHEMES) == {"global-lock", "2pl", "mvcc"}


class TestTwoPL:
    def test_lost_update_prevented(self):
        """Two concurrent increments must both stick (no lost update)."""
        scheme = TwoPLScheme(wait_timeout=10.0)
        scheme.load({"counter": 0})
        barrier = threading.Barrier(2)

        def increment():
            barrier.wait()
            while True:
                txn = scheme.begin()
                try:
                    value = scheme.read(txn, "counter")
                    scheme.write(txn, "counter", value + 1)
                    scheme.commit(txn)
                    return
                except TransactionError:
                    continue  # deadlock victim retries (scheme already aborted)

        threads = [threading.Thread(target=increment) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        check = scheme.begin()
        # Both increments retried to completion: no lost update.
        assert scheme.read(check, "counter") == 2
        scheme.commit(check)

    def test_locks_released_after_abort(self):
        scheme = TwoPLScheme()
        txn = scheme.begin()
        scheme.write(txn, "k", 1)
        scheme.abort(txn)
        other = scheme.begin()
        scheme.write(other, "k", 2)  # must not block
        scheme.commit(other)


class TestMVCC:
    def test_snapshot_isolation_reader_sees_old_value(self):
        scheme = MVCCScheme()
        scheme.load({"k": "old"})
        reader = scheme.begin()
        writer = scheme.begin()
        scheme.write(writer, "k", "new")
        scheme.commit(writer)
        assert scheme.read(reader, "k") == "old"  # snapshot!
        scheme.commit(reader)
        fresh = scheme.begin()
        assert scheme.read(fresh, "k") == "new"
        scheme.commit(fresh)

    def test_first_updater_wins(self):
        scheme = MVCCScheme()
        scheme.load({"k": 0})
        t1 = scheme.begin()
        t2 = scheme.begin()
        scheme.write(t1, "k", 1)
        with pytest.raises(WriteConflictError):
            scheme.write(t2, "k", 2)
        scheme.commit(t1)
        assert scheme.write_conflicts == 1

    def test_stale_snapshot_write_conflicts(self):
        scheme = MVCCScheme()
        scheme.load({"k": 0})
        stale = scheme.begin()
        fresh = scheme.begin()
        scheme.write(fresh, "k", 1)
        scheme.commit(fresh)
        with pytest.raises(WriteConflictError):
            scheme.write(stale, "k", 2)

    def test_readers_never_block_writers(self):
        scheme = MVCCScheme()
        scheme.load({"k": 0})
        reader = scheme.begin()
        assert scheme.read(reader, "k") == 0
        writer = scheme.begin()
        scheme.write(writer, "k", 1)  # no blocking, no error
        scheme.commit(writer)
        scheme.commit(reader)

    def test_version_chain_grows_and_vacuums(self):
        scheme = MVCCScheme()
        for i in range(5):
            txn = scheme.begin()
            scheme.write(txn, "k", i)
            scheme.commit(txn)
        assert scheme.version_count("k") == 5
        dropped = scheme.vacuum()
        assert dropped == 4
        assert scheme.version_count("k") == 1
        txn = scheme.begin()
        assert scheme.read(txn, "k") == 4
        scheme.commit(txn)

    def test_abort_releases_write_lock(self):
        scheme = MVCCScheme()
        t1 = scheme.begin()
        scheme.write(t1, "k", 1)
        scheme.abort(t1)
        t2 = scheme.begin()
        scheme.write(t2, "k", 2)
        scheme.commit(t2)
        t3 = scheme.begin()
        assert scheme.read(t3, "k") == 2
        scheme.commit(t3)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 100)),
        min_size=1,
        max_size=40,
    )
)
def test_serial_transactions_agree_across_schemes(ops):
    """Serially-executed random write sequences leave all three schemes with
    identical visible state."""
    finals = []
    for name in ALL_SCHEMES:
        scheme = make_scheme(name)
        for key, value in ops:
            txn = scheme.begin()
            current = scheme.read(txn, key) or 0
            scheme.write(txn, key, current + value)
            scheme.commit(txn)
        txn = scheme.begin()
        finals.append({k: scheme.read(txn, k) for k in range(5)})
        scheme.commit(txn)
    assert finals[0] == finals[1] == finals[2]
