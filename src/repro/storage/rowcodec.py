"""Binary row serialization.

Rows are encoded as a sequence of tagged values so that NULLs and
variable-width values (TEXT, VECTOR) are handled uniformly.  The format is
self-describing per value::

    value   := tag:uint8 payload
    NULL    := 0x00
    INT     := 0x01 int64 (big-endian, signed)
    FLOAT   := 0x02 float64
    TEXT    := 0x03 len:uint32 utf8-bytes
    BOOL    := 0x04 uint8
    VECTOR  := 0x05 n:uint32 float64*n

The codec is schema-independent on decode (tags carry the type), but
:meth:`RowCodec.encode` validates values against the schema's declared types
so that corrupt data is caught at write time, not read time.
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence, Tuple

from repro.core.errors import StorageError
from repro.core.types import Row, Schema

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_TEXT = 3
_TAG_BOOL = 4
_TAG_VECTOR = 5

_INT64 = struct.Struct(">q")
_FLOAT64 = struct.Struct(">d")
_UINT32 = struct.Struct(">I")


class RowCodec:
    """Encodes and decodes rows for a fixed schema."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def encode(self, row: Sequence[Any]) -> bytes:
        """Serialize a (pre-validated) row to bytes."""
        if len(row) != len(self.schema):
            raise StorageError(
                f"cannot encode row of arity {len(row)} for schema of {len(self.schema)}"
            )
        return encode_values(row)

    def decode(self, data: bytes) -> Row:
        """Deserialize bytes back into a row tuple."""
        values, offset = decode_values(data, len(self.schema))
        if offset != len(data):
            raise StorageError("trailing bytes after row payload")
        return values


def encode_values(values: Sequence[Any]) -> bytes:
    """Serialize an arbitrary sequence of supported values."""
    parts: List[bytes] = []
    for value in values:
        parts.append(_encode_one(value))
    return b"".join(parts)


def _encode_one(value: Any) -> bytes:
    if value is None:
        return bytes([_TAG_NULL])
    if isinstance(value, bool):
        return bytes([_TAG_BOOL, 1 if value else 0])
    if isinstance(value, int):
        return bytes([_TAG_INT]) + _INT64.pack(value)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + _FLOAT64.pack(value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return bytes([_TAG_TEXT]) + _UINT32.pack(len(payload)) + payload
    if isinstance(value, (list, tuple)):
        floats = [float(x) for x in value]
        body = b"".join(_FLOAT64.pack(x) for x in floats)
        return bytes([_TAG_VECTOR]) + _UINT32.pack(len(floats)) + body
    raise StorageError(f"cannot encode value of type {type(value).__name__}")


def decode_values(data: bytes, count: int, offset: int = 0) -> Tuple[Row, int]:
    """Decode ``count`` values starting at ``offset``; returns (row, end)."""
    try:
        return _decode_values(data, count, offset)
    except struct.error as exc:
        raise StorageError(f"row payload truncated: {exc}") from exc


def _decode_values(data: bytes, count: int, offset: int) -> Tuple[Row, int]:
    # Hot path: this runs once per stored row on every scan.  Bound-method
    # lookups are hoisted and the common fixed-width tags tested first.
    values: List[Any] = []
    append = values.append
    end = len(data)
    unpack_int = _INT64.unpack_from
    unpack_float = _FLOAT64.unpack_from
    unpack_len = _UINT32.unpack_from
    for _ in range(count):
        if offset >= end:
            raise StorageError("row payload truncated")
        tag = data[offset]
        offset += 1
        if tag == _TAG_INT:
            append(unpack_int(data, offset)[0])
            offset += 8
        elif tag == _TAG_FLOAT:
            append(unpack_float(data, offset)[0])
            offset += 8
        elif tag == _TAG_TEXT:
            n = unpack_len(data, offset)[0]
            offset += 4
            append(data[offset : offset + n].decode("utf-8"))
            offset += n
        elif tag == _TAG_NULL:
            append(None)
        elif tag == _TAG_BOOL:
            append(bool(data[offset]))
            offset += 1
        elif tag == _TAG_VECTOR:
            n = unpack_len(data, offset)[0]
            offset += 4
            vec = struct.unpack_from(f">{n}d", data, offset)
            offset += 8 * n
            append(tuple(vec))
        else:
            raise StorageError(f"unknown value tag {tag} at offset {offset - 1}")
    return tuple(values), offset
