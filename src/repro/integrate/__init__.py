"""LLM-powered data integration: entity matching with cost/accuracy control.

Aditya Parameswaran's panel position — "fully embrace LLMs to solve the
AI-complete problems we care about, e.g., data integration, data cleaning
… our principles of declarativity and query optimization can also help in
LLM-powered processing" — as a working system:

* a seeded, noisy :class:`~repro.integrate.llm.SimulatedLLM` oracle with
  per-token cost (the "GPT" stand-in; noise and cost are what matter);
* classic blocking + string-similarity machinery;
* matchers spanning the cost/accuracy frontier, from all-pairs-LLM to the
  **cascade** (cheap similarity resolves confident pairs, the LLM judges
  only the uncertain band) — the optimizer the panel's claim predicts.

Experiment E7 sweeps the frontier; schema matching rounds out the toolkit.
"""

from repro.integrate.blocking import block_candidates, token_blocks
from repro.integrate.dataset import MatchingDataset, make_matching_dataset
from repro.integrate.llm import LLMUsage, MatchOracle, SimulatedLLM
from repro.integrate.matchers import (
    BlockedLLMMatcher,
    CascadeMatcher,
    LLMAllPairsMatcher,
    MatchReport,
    SimilarityMatcher,
    evaluate_pairs,
)
from repro.integrate.schema_match import match_schemas
from repro.integrate.similarity import (
    jaccard_similarity,
    levenshtein_distance,
    record_similarity,
    trigram_similarity,
)

__all__ = [
    "SimulatedLLM",
    "MatchOracle",
    "LLMUsage",
    "token_blocks",
    "block_candidates",
    "MatchingDataset",
    "make_matching_dataset",
    "SimilarityMatcher",
    "LLMAllPairsMatcher",
    "BlockedLLMMatcher",
    "CascadeMatcher",
    "MatchReport",
    "evaluate_pairs",
    "match_schemas",
    "jaccard_similarity",
    "levenshtein_distance",
    "trigram_similarity",
    "record_similarity",
]
