"""E1 — "a MacBook can comfortably run TPC-H scale factor 1000 …
'small data' is enough for most applications".

Reproduction: run the TPC-H-like suite (Q1/Q3/Q5/Q6) at growing scale
factors on a single machine and check the *shape*: latency grows roughly
linearly with data size and stays interactive at laptop scale.  (Our
substrate is a pure-Python engine, so absolute numbers are ~100× a C
engine's; the trend is the claim under test.)
"""

import pytest

from repro.bench.harness import format_table
from repro.workloads.tpch import tpch_query, tpch_row_counts

from bench_config import E1_SCALE_FACTORS

QUERIES = ["Q1", "Q3", "Q5", "Q6"]

_RESULTS = {}


@pytest.mark.parametrize("sf", E1_SCALE_FACTORS)
@pytest.mark.parametrize("query", QUERIES)
def test_e1_query_latency(benchmark, tpch_dbs, sf, query):
    db = tpch_dbs[sf]
    sql = tpch_query(query)
    result = benchmark.pedantic(lambda: db.execute(sql), rounds=3, iterations=1)
    assert result.rowcount >= 0
    benchmark.extra_info["scale_factor"] = sf
    benchmark.extra_info["lineitem_rows"] = tpch_row_counts(sf)["lineitem"]
    _RESULTS[(query, sf)] = benchmark.stats.stats.min * 1e3


def test_e1_claim_check(benchmark, tpch_dbs):
    """Interactive latency at top scale + roughly linear scaling."""
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for query in QUERIES:
        row = [query]
        for sf in E1_SCALE_FACTORS:
            row.append(_RESULTS.get((query, sf), float("nan")))
        rows.append(row)
    print()
    print(
        format_table(
            ["query"] + [f"SF {sf} (ms)" for sf in E1_SCALE_FACTORS],
            rows,
            title="E1: TPC-H-like latency vs scale factor (laptop, pure Python)",
        )
    )
    low, high = E1_SCALE_FACTORS[0], E1_SCALE_FACTORS[-1]
    ratio = high / low
    for query in QUERIES:
        t_low, t_high = _RESULTS.get((query, low)), _RESULTS.get((query, high))
        if not t_low or not t_high:
            continue
        growth = t_high / t_low
        # Shape check: scaling is at most ~2x superlinear vs the data ratio
        # and the largest run is still interactive (sub-5s in pure Python).
        assert growth < ratio * 3.0, f"{query} latency grew superlinearly ({growth:.1f}x)"
        assert t_high < 5000, f"{query} not interactive at SF {high}: {t_high:.0f}ms"
