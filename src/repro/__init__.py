"""repro — a concrete embodiment of "Where Does Academic Database Research Go
From Here?" (SIGMOD-Companion 2025).

The paper is a panel with no system of its own, so this library implements
the systems its claims are *about*: a relational engine with a cost-based
optimizer and two execution engines, vector + full-text + hybrid search, an
ORM, an AI-data-pipeline optimizer, an LLM KV-cache simulator that reuses the
buffer pool's replacement policies, and LLM-powered data integration — plus a
benchmark per panel claim (see EXPERIMENTS.md).

Quickstart::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    result = db.execute("SELECT a, b FROM t WHERE a > 1")
    print(result.rows)
"""

__version__ = "1.0.0"

from repro.core.errors import ReproError
from repro.core.types import Column, DataType, Schema

__all__ = ["ReproError", "Column", "DataType", "Schema", "Database", "__version__"]


def __getattr__(name):
    # Lazy import: keeps `import repro` light and avoids import cycles while
    # still exposing `repro.Database` as the main entry point.
    if name == "Database":
        from repro.core.database import Database

        return Database
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
