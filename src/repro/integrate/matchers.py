"""Entity matchers spanning the cost/accuracy frontier.

Ordered by LLM spend:

1. :class:`SimilarityMatcher` — zero LLM calls, similarity threshold only.
2. :class:`CascadeMatcher` — blocking, then similarity resolves confident
   pairs; the LLM judges only the uncertain band.  (The "declarativity +
   query optimization for LLM-powered processing" point: same answer
   quality, a fraction of the spend.)
3. :class:`BlockedLLMMatcher` — blocking, LLM on every candidate.
4. :class:`LLMAllPairsMatcher` — the naive quadratic burn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.integrate.blocking import all_pairs, block_candidates
from repro.integrate.dataset import MatchingDataset
from repro.integrate.llm import MatchOracle
from repro.integrate.similarity import record_similarity

Pair = Tuple[int, int]


@dataclass
class MatchReport:
    """Predictions + quality + spend for one matcher run."""

    matcher: str
    predicted: Set[Pair]
    precision: float
    recall: float
    f1: float
    llm_calls: int
    llm_cost: float
    pairs_considered: int


def evaluate_pairs(predicted: Set[Pair], truth: Set[Pair]) -> Tuple[float, float, float]:
    """(precision, recall, f1) with sorted-pair normalization."""
    predicted_norm = {tuple(sorted(p)) for p in predicted}
    truth_norm = {tuple(sorted(p)) for p in truth}
    hits = len(predicted_norm & truth_norm)
    if predicted_norm:
        precision = hits / len(predicted_norm)
    else:
        precision = 1.0 if not truth_norm else 0.0
    recall = hits / len(truth_norm) if truth_norm else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return precision, recall, f1


def _report(
    name: str,
    predicted: Set[Pair],
    dataset: MatchingDataset,
    oracle: Optional[MatchOracle],
    considered: int,
) -> MatchReport:
    precision, recall, f1 = evaluate_pairs(predicted, dataset.true_pairs)
    usage = oracle.usage if oracle is not None else None
    return MatchReport(
        matcher=name,
        predicted=predicted,
        precision=precision,
        recall=recall,
        f1=f1,
        llm_calls=usage.calls if usage else 0,
        llm_cost=usage.cost if usage else 0.0,
        pairs_considered=considered,
    )


class SimilarityMatcher:
    """Blocked candidates, record-similarity threshold, no LLM."""

    name = "similarity-only"

    def __init__(self, threshold: float = 0.55):
        self.threshold = threshold

    def run(self, dataset: MatchingDataset, oracle: Optional[MatchOracle] = None) -> MatchReport:
        candidates = block_candidates(dataset.records, fields=("name", "city"))
        predicted = {
            pair
            for pair in candidates
            if record_similarity(dataset.records[pair[0]], dataset.records[pair[1]])
            >= self.threshold
        }
        return _report(self.name, predicted, dataset, None, len(candidates))


class LLMAllPairsMatcher:
    """Ask the LLM about every pair of records (quadratic spend)."""

    name = "llm-all-pairs"

    def run(self, dataset: MatchingDataset, oracle: MatchOracle) -> MatchReport:
        pairs = all_pairs(dataset.records)
        predicted = {pair for pair in pairs if oracle.ask_match(*pair)}
        return _report(self.name, predicted, dataset, oracle, len(pairs))


class BlockedLLMMatcher:
    """Blocking first, LLM on every surviving candidate."""

    name = "blocking+llm"

    def run(self, dataset: MatchingDataset, oracle: MatchOracle) -> MatchReport:
        candidates = block_candidates(dataset.records, fields=("name", "city"))
        predicted = {pair for pair in candidates if oracle.ask_match(*pair)}
        return _report(self.name, predicted, dataset, oracle, len(candidates))


class CascadeMatcher:
    """Blocking → similarity gates → LLM only on the uncertain band.

    Pairs with similarity ≥ ``accept`` are accepted outright, < ``reject``
    rejected outright; only the band in between costs LLM calls.
    """

    name = "cascade"

    def __init__(self, accept: float = 0.82, reject: float = 0.35):
        if reject > accept:
            raise ValueError("reject threshold must not exceed accept threshold")
        self.accept = accept
        self.reject = reject

    def run(self, dataset: MatchingDataset, oracle: MatchOracle) -> MatchReport:
        candidates = block_candidates(dataset.records, fields=("name", "city"))
        predicted: Set[Pair] = set()
        for pair in candidates:
            similarity = record_similarity(
                dataset.records[pair[0]], dataset.records[pair[1]]
            )
            if similarity >= self.accept:
                predicted.add(pair)
            elif similarity < self.reject:
                continue
            elif oracle.ask_match(*pair):
                predicted.add(pair)
        return _report(self.name, predicted, dataset, oracle, len(candidates))
