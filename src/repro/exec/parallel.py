"""Morsel-driven parallel execution.

The exchange operators in :mod:`repro.exec.physical` (``PParallelScan``,
``PTwoPhaseAggregate``, ``PPartitionedHashJoin``, ``PParallelSort``) are
executed here, on a shared worker pool, and both engines consume the
results: the vectorized engine takes column-major batches, the volcano
engine pivots them to rows.

Design (after Leis et al.'s morsel-driven parallelism, scaled down):

* **Morsels.** Storage hands out fixed-size row-range partitions —
  ``TableInfo.morsels()`` dispatches to row-range slices on column tables
  and page chunks on heaps.  Each morsel task runs scan + filter + project
  (and, fused, partial aggregation or hash-join probe) for one morsel.

* **Ordered gather.** Tasks are submitted for every morsel up front and
  results are collected *in morsel order*.  Since serial scans visit rows
  in exactly the concatenation of morsels, a parallel plan reproduces the
  serial plan's row order — a stronger guarantee than the multiset equality
  the differential suite checks, and the reason first-seen group order and
  hash-join output order survive parallelization.

* **Kernels.** Predicates/projections over clean (null-free, delete-free)
  numeric columns run as numpy ufuncs over zero-copy array slices; numpy
  releases the GIL inside those loops, so threads genuinely overlap.  On
  NULLs, text, or exotic expressions the task falls back to the same
  per-row evaluation the serial vectorized engine uses — correctness never
  depends on the fast path.

* **Workers.** ``workers <= 1`` executes tasks inline on the caller (the
  overhead-measurement configuration).  The default backend is a cached
  ``ThreadPoolExecutor`` per worker count.  ``REPRO_PROCESS_POOL=1`` opts
  into a fork-based process pool for pure-Python operator chains that the
  GIL would serialize; task closures are shipped by fork inheritance (they
  capture compiled evaluator closures, which do not pickle) and only the
  results cross the pipe.

* **Sanitizer.** Under ``REPRO_SANITIZE=1`` every morsel task logs
  BEGIN / READ(table, morsel) / COMMIT to a pool-owned
  :class:`~repro.txn.trace.ScheduleRecorder`, so the PR-4 serializability
  checker can audit worker interleavings (read-only tasks: trivially
  serializable, no lock inversions).  Join build-side tasks trace under
  the synthetic labels ``@join-build`` (chunk partitioning) and
  ``@join-partition`` (partition finalize); sort tasks trace against the
  table they scan.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalog.catalog import Catalog
from repro.exec import physical as phys
from repro.exec.compile import evaluator
from repro.exec.stablehash import stable_hash, stable_partitions
from repro.exec.vector_eval import eval_batch, normalize_mask
from repro.plan.expressions import (
    AggSpec,
    BoundBinary,
    BoundColumn,
    BoundExpr,
    BoundLiteral,
    BoundUnary,
)
from repro.txn.trace import (
    ABORT,
    BEGIN,
    COMMIT,
    READ,
    ScheduleRecorder,
    sanitize_enabled,
)

Batch = List[List[Any]]  # column-major, same convention as vector_eval

_NUMPY_ARITH = {"+": np.add, "-": np.subtract, "*": np.multiply}
_NUMPY_CMP = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def process_pool_enabled() -> bool:
    """True when ``REPRO_PROCESS_POOL`` opts into the fork-based backend."""
    return os.environ.get("REPRO_PROCESS_POOL", "") not in ("", "0")


# -- worker pool ----------------------------------------------------------------

_THREAD_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()

#: Pool-owned schedule recorder; morsel tasks append here under
#: ``REPRO_SANITIZE=1``.  Tests drain it with ``pool_recorder().clear()``.
_RECORDER = ScheduleRecorder("parallel-pool")
_TASK_IDS = itertools.count(1)


def pool_recorder() -> ScheduleRecorder:
    return _RECORDER


def _thread_pool(workers: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _THREAD_POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-morsel-{workers}"
            )
            _THREAD_POOLS[workers] = pool
        return pool


def shutdown_pools() -> None:
    """Tear down cached thread pools (test hygiene; pools rebuild lazily)."""
    with _POOLS_LOCK:
        pools = list(_THREAD_POOLS.values())
        _THREAD_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


#: Fork-backend scratch: tasks are published here before the pool forks, so
#: children inherit them by address space, not pickling.
_FORK_TASKS: List[Callable[[], Any]] = []


def _run_fork_task(index: int) -> Any:
    return _FORK_TASKS[index]()


def _map_fork(tasks: Sequence[Callable[[], Any]], workers: int) -> List[Any]:
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: degrade to threads
        pool = _thread_pool(workers)
        return [f.result() for f in [pool.submit(t) for t in tasks]]
    global _FORK_TASKS
    _FORK_TASKS = list(tasks)
    try:
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_run_fork_task, range(len(tasks)))
    finally:
        _FORK_TASKS = []


def map_ordered(tasks: Sequence[Callable[[], Any]], workers: int) -> List[Any]:
    """Run tasks on the pool; return results in task (= morsel) order."""
    if workers <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    if process_pool_enabled():
        return _map_fork(tasks, workers)
    pool = _thread_pool(workers)
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


def _traced(task: Callable[[], Any], table: str, morsel: int) -> Callable[[], Any]:
    """Wrap a morsel task with BEGIN/READ/COMMIT schedule events."""
    if not sanitize_enabled():
        return task
    buffer = _RECORDER.buffer

    def traced() -> Any:
        tid = next(_TASK_IDS)
        buffer.append((tid, BEGIN, None, None))
        buffer.append((tid, READ, (table, morsel), None))
        try:
            out = task()
        except BaseException:
            buffer.append((tid, ABORT, None, None))
            raise
        buffer.append((tid, COMMIT, None, None))
        return out

    return traced


# -- numpy kernels ---------------------------------------------------------------


def _numpy_operand(expr: BoundExpr, columns: Batch) -> Any:
    """``expr`` as a numpy array/scalar over clean columns, or None.

    Only sound over morsel batches whose numpy columns are null-free (the
    clean-array contract): comparisons and arithmetic then have no NULL
    three-valued logic to honor.  Returns a scalar for literals so ufuncs
    broadcast.
    """
    if isinstance(expr, BoundColumn):
        col = columns[expr.index]
        return col if isinstance(col, np.ndarray) else None
    if isinstance(expr, BoundLiteral):
        value = expr.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return value
    if isinstance(expr, BoundUnary) and expr.op == "-":
        operand = _numpy_operand(expr.operand, columns)
        return None if operand is None else np.negative(operand)
    if isinstance(expr, BoundBinary) and expr.op in _NUMPY_ARITH:
        left = _numpy_operand(expr.left, columns)
        if left is None:
            return None
        right = _numpy_operand(expr.right, columns)
        if right is None:
            return None
        return _NUMPY_ARITH[expr.op](left, right)
    return None


def _numpy_mask(pred: BoundExpr, columns: Batch) -> Optional[np.ndarray]:
    """Boolean selection mask via numpy, or None to fall back to eval_batch."""
    if isinstance(pred, BoundBinary):
        if pred.op == "AND":
            left = _numpy_mask(pred.left, columns)
            if left is None:
                return None
            right = _numpy_mask(pred.right, columns)
            if right is None:
                return None
            return left & right
        if pred.op == "OR":
            left = _numpy_mask(pred.left, columns)
            if left is None:
                return None
            right = _numpy_mask(pred.right, columns)
            if right is None:
                return None
            return left | right
        if pred.op in _NUMPY_CMP:
            left = _numpy_operand(pred.left, columns)
            if left is None:
                return None
            right = _numpy_operand(pred.right, columns)
            if right is None:
                return None
            if np.isscalar(left) and np.isscalar(right):
                return None  # constant predicate: let the general path decide
            return _NUMPY_CMP[pred.op](left, right)
    return None


def _compress(columns: Batch, n: int, keep: Sequence[int]) -> Tuple[Batch, int]:
    """Keep only the rows at positions ``keep`` (already in order)."""
    if len(keep) == n:
        return columns, n
    idx = np.asarray(keep, dtype=np.intp)
    out: Batch = []
    for col in columns:
        if isinstance(col, np.ndarray):
            out.append(col[idx])
        else:
            out.append([col[i] for i in keep])
    return out, len(keep)


def _apply_filter(
    predicate: Optional[BoundExpr], columns: Batch, n: int
) -> Tuple[Batch, int]:
    if predicate is None or n == 0:
        return columns, n
    mask = _numpy_mask(predicate, columns)
    if mask is not None:
        if mask.all():
            return columns, n
        keep = np.flatnonzero(mask)
        out: Batch = []
        for col in columns:
            if isinstance(col, np.ndarray):
                out.append(col[keep])
            else:
                out.append([col[i] for i in keep])
        return out, len(keep)
    values = normalize_mask(eval_batch(predicate, columns, n))
    keep_list = [i for i, v in enumerate(values) if v is True]
    return _compress(columns, n, keep_list)


def _apply_project(
    exprs: Optional[Tuple[BoundExpr, ...]], columns: Batch, n: int
) -> Batch:
    if exprs is None:
        return columns
    out: Batch = []
    for expr in exprs:
        arr = _numpy_operand(expr, columns)
        if arr is not None and not np.isscalar(arr):
            out.append(arr)
        else:
            out.append(eval_batch(expr, columns, n))
    return out


def _to_lists(columns: Batch, width: int, n: int) -> Batch:
    """Engine boundary: numpy views become plain lists of Python scalars."""
    if n == 0:
        return [[] for _ in range(width)]
    out: Batch = []
    for col in columns:
        if isinstance(col, np.ndarray):
            out.append(col.tolist())
        elif isinstance(col, list):
            out.append(col)
        else:
            out.append(list(col))
    return out


# -- parallel scan ----------------------------------------------------------------


def _scan_tasks(
    node: phys.PParallelScan, catalog: Catalog
) -> List[Callable[[], Tuple[Batch, int]]]:
    """One fused scan+filter+project task per morsel, sanitizer-traced."""
    source = catalog.get_table(node.table).morsels(node.morsel_size)
    predicate, exprs = node.predicate, node.exprs

    def make(spec: Any) -> Callable[[], Tuple[Batch, int]]:
        def task() -> Tuple[Batch, int]:
            columns, n = source.read(spec)
            columns, n = _apply_filter(predicate, columns, n)
            return _apply_project(exprs, columns, n), n

        return task

    return [
        _traced(make(spec), node.table, i) for i, spec in enumerate(source.specs)
    ]


def scan_batches(
    node: phys.PParallelScan, catalog: Catalog
) -> Iterator[Tuple[Batch, int]]:
    """Execute a parallel scan; yield column-major batches in morsel order."""
    width = len(node.schema)
    for columns, n in map_ordered(_scan_tasks(node, catalog), node.workers):
        if n:
            yield _to_lists(columns, width, n), n


def scan_rows(node: phys.PParallelScan, catalog: Catalog) -> Iterator[Tuple]:
    """Row-at-a-time view of a parallel scan (volcano consumption)."""
    for columns, n in scan_batches(node, catalog):
        for row in zip(*columns):
            yield row


# -- two-phase aggregation ---------------------------------------------------------

#: Partial state per (group, aggregate): [count, total, extreme, distinct_set].
#: Mirrors volcano's ``_Accumulator`` fields so finalization semantics match.


def _new_state(spec: AggSpec) -> List[Any]:
    return [0, None, None, set() if spec.distinct else None]


def _state_add(state: List[Any], spec: AggSpec, value: Any) -> None:
    if value is None:
        return
    if state[3] is not None:
        if value in state[3]:
            return
        state[3].add(value)
    state[0] += 1
    func = spec.func
    if func in ("SUM", "AVG"):
        state[1] = value if state[1] is None else state[1] + value
    elif func == "MIN":
        if state[2] is None or value < state[2]:
            state[2] = value
    elif func == "MAX":
        if state[2] is None or value > state[2]:
            state[2] = value


def _merge_state(into: List[Any], other: List[Any], spec: AggSpec) -> None:
    if into[3] is not None:
        # DISTINCT: the value set *is* the state; rebuild counts on finalize.
        into[3] |= other[3]
        return
    into[0] += other[0]
    if other[1] is not None:
        into[1] = other[1] if into[1] is None else into[1] + other[1]
    if other[2] is not None:
        func = spec.func
        if into[2] is None:
            into[2] = other[2]
        elif func == "MIN" and other[2] < into[2]:
            into[2] = other[2]
        elif func == "MAX" and other[2] > into[2]:
            into[2] = other[2]


def _finalize_state(state: List[Any], spec: AggSpec) -> Any:
    count, total, extreme, distinct = state
    if distinct is not None:
        count = len(distinct)
        if spec.func in ("SUM", "AVG"):
            total = None
            for value in distinct:
                total = value if total is None else total + value
        elif spec.func in ("MIN", "MAX"):
            if distinct:
                extreme = min(distinct) if spec.func == "MIN" else max(distinct)
    func = spec.func
    if func == "COUNT":
        return count
    if func == "SUM":
        return total
    if func == "AVG":
        return total / count if count else None
    return extreme


def _numpy_partial(
    spec: AggSpec,
    arr: np.ndarray,
    gids: Optional[np.ndarray],
    n_groups: int,
) -> Optional[List[List[Any]]]:
    """Per-group partial states for one aggregate via numpy, or None.

    Only for non-DISTINCT aggregates over a clean numeric array (no NULLs),
    so every row contributes: count is the group size, SUM/AVG reduce with
    exact dtype-preserving kernels (``np.add.at`` for int64 — ``bincount``
    would round-trip through float64 and lose >2^53 precision).
    """
    if spec.distinct:
        return None
    func = spec.func
    if gids is None:  # single (global) group
        count = int(arr.size)
        state: List[Any] = [count, None, None, None]
        if func in ("SUM", "AVG") and count:
            state[1] = arr.sum().item()
        elif func == "MIN" and count:
            state[2] = arr.min().item()
        elif func == "MAX" and count:
            state[2] = arr.max().item()
        return [state]
    counts = np.bincount(gids, minlength=n_groups)
    states = [[int(c), None, None, None] for c in counts]
    if func in ("SUM", "AVG"):
        if arr.dtype.kind == "i":
            totals = np.zeros(n_groups, dtype=np.int64)
            np.add.at(totals, gids, arr)
        else:
            totals = np.bincount(gids, weights=arr, minlength=n_groups)
        for g, state in enumerate(states):
            if state[0]:
                state[1] = totals[g].item()
    elif func in ("MIN", "MAX"):
        if func == "MIN":
            extremes = np.full(n_groups, np.inf)
            np.minimum.at(extremes, gids, arr)
        else:
            extremes = np.full(n_groups, -np.inf)
            np.maximum.at(extremes, gids, arr)
        if arr.dtype.kind == "i":
            extremes = extremes.astype(np.int64)
        for g, state in enumerate(states):
            if state[0]:
                state[2] = extremes[g].item()
    return states


def _partial_aggregate(
    columns: Batch,
    n: int,
    group_exprs: Tuple[BoundExpr, ...],
    aggregates: Tuple[AggSpec, ...],
) -> Tuple[List[Tuple], Dict[Tuple, List[List[Any]]]]:
    """Phase one: aggregate one morsel into per-group partial states.

    Returns ``(group_order, key -> [state per aggregate])`` where
    ``group_order`` lists keys in first-seen row order within the morsel.
    """
    order: List[Tuple] = []
    partials: Dict[Tuple, List[List[Any]]] = {}
    if n == 0:
        return order, partials

    gids: Optional[np.ndarray] = None
    if group_exprs:
        key_cols = []
        for expr in group_exprs:
            values = eval_batch(expr, columns, n)
            if isinstance(values, np.ndarray):
                values = values.tolist()
            key_cols.append(values)
        gid_of: Dict[Tuple, int] = {}
        gids = np.empty(n, dtype=np.intp)
        for i, key in enumerate(zip(*key_cols)):
            gid = gid_of.get(key)
            if gid is None:
                gid = len(order)
                gid_of[key] = gid
                order.append(key)
                partials[key] = [_new_state(spec) for spec in aggregates]
            gids[i] = gid
    else:
        order.append(())
        partials[()] = [_new_state(spec) for spec in aggregates]

    n_groups = len(order)
    for a, spec in enumerate(aggregates):
        if spec.arg is None:  # COUNT(*): every row counts
            if gids is None:
                partials[()][a][0] = n
            else:
                for g, c in enumerate(np.bincount(gids, minlength=n_groups)):
                    partials[order[g]][a][0] = int(c)
            continue
        arr = _numpy_operand(spec.arg, columns)
        if arr is not None and not np.isscalar(arr):
            states = _numpy_partial(spec, arr, gids, n_groups)
            if states is not None:
                for g, state in enumerate(states):
                    partials[order[g]][a] = state
                continue
            values = arr.tolist()
        else:
            values = eval_batch(spec.arg, columns, n)
            if isinstance(values, np.ndarray):
                values = values.tolist()
        if gids is None:
            state = partials[()][a]
            for value in values:
                _state_add(state, spec, value)
        else:
            for i, value in enumerate(values):
                _state_add(partials[order[gids[i]]][a], spec, value)
    return order, partials


def aggregate_rows(
    node: phys.PTwoPhaseAggregate, catalog: Catalog
) -> List[Tuple]:
    """Execute a two-phase aggregate; returns final rows in serial order."""
    scan = node.child
    group_exprs, aggregates = node.group_exprs, node.aggregates
    source = catalog.get_table(scan.table).morsels(scan.morsel_size)
    predicate, exprs = scan.predicate, scan.exprs

    def make(spec: Any) -> Callable[[], Tuple[List[Tuple], Dict]]:
        def task() -> Tuple[List[Tuple], Dict]:
            columns, n = source.read(spec)
            columns, n = _apply_filter(predicate, columns, n)
            columns = _apply_project(exprs, columns, n)
            return _partial_aggregate(columns, n, group_exprs, aggregates)

        return task

    tasks = [
        _traced(make(spec), scan.table, i) for i, spec in enumerate(source.specs)
    ]
    order: List[Tuple] = []
    merged: Dict[Tuple, List[List[Any]]] = {}
    # Phase two: merge partials in morsel order => serial first-seen order.
    for morsel_order, partials in map_ordered(tasks, node.workers):
        for key in morsel_order:
            states = merged.get(key)
            if states is None:
                merged[key] = partials[key]
                order.append(key)
            else:
                for state, other, spec in zip(states, partials[key], aggregates):
                    _merge_state(state, other, spec)
    if not merged and not group_exprs:
        # Global aggregate over an empty input: one row of identity values.
        return [
            tuple(_finalize_state(_new_state(spec), spec) for spec in aggregates)
        ]
    return [
        key + tuple(
            _finalize_state(state, spec)
            for state, spec in zip(merged[key], aggregates)
        )
        for key in order
    ]


# -- partitioned hash join ----------------------------------------------------------

#: Keys within this signed range vectorize as int64 without overflow.
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63)


class _RadixBuild:
    """Build-side result of the single-pass radix partitioning.

    Two shapes, chosen by what the key values turned out to be:

    * **vector mode** (``kind`` is ``"i"`` or ``"f"``): one shared
      read-only pair of numpy arrays.  ``all_keys`` holds every non-NULL
      build key, partition by partition, sorted (stably) within each
      partition; ``all_rids[i]`` is the build-row index of ``all_keys[i]``.
      ``offsets[p] : offsets[p+1]`` is partition ``p``'s slice.  Probes
      binary-search their partition's slice — no per-worker dicts, no
      Python objects on the hot path, and ``searchsorted`` releases the
      GIL.  Stable per-partition sort keeps equal keys in build-input
      order, which is what reproduces serial ``PHashJoin`` output order.

    * **dict mode** (``kind`` is None): per-partition ``key -> [rid]``
      dicts for strings, tuples (multi-column keys), and exotic numerics.
      Rid lists are in build-input order for the same reason.
    """

    __slots__ = ("partitions", "kind", "all_keys", "all_rids", "offsets", "tables")

    def __init__(self, partitions: int, kind: Optional[str]):
        self.partitions = partitions
        self.kind = kind
        self.all_keys: Optional[np.ndarray] = None
        self.all_rids: Optional[np.ndarray] = None
        self.offsets: Optional[np.ndarray] = None
        self.tables: Optional[List[Dict[Any, List[int]]]] = None

    def lookup(self, key: Any) -> Sequence[int]:
        """Build-row indices matching one probe key (scalar fallback path)."""
        if self.tables is not None:
            part = self.tables[stable_hash(key) % self.partitions]
            return part.get(key, ())
        value = key
        if isinstance(value, bool):
            value = int(value)
        if self.kind == "i":
            if isinstance(value, float):
                if value != value or not value.is_integer():
                    return ()
                value = int(value)
            if not isinstance(value, int) or not _INT64_MIN <= value < _INT64_MAX:
                return ()
        else:  # "f"
            if isinstance(value, int):
                as_float = float(value)
                if as_float != value:
                    return ()  # inexact conversion: equals no float at all
                value = as_float
            if not isinstance(value, float):
                return ()
        p = stable_hash(key) % self.partitions
        lo, hi = int(self.offsets[p]), int(self.offsets[p + 1])
        seg = self.all_keys[lo:hi]
        left = lo + int(np.searchsorted(seg, value, side="left"))
        right = lo + int(np.searchsorted(seg, value, side="right"))
        return self.all_rids[left:right]


def _merge_kind(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a == "":
        return b
    if b == "" or a == b:
        return a
    return None


def _radix_build(
    right_rows: List[Tuple],
    right_key_fns: List[Callable],
    partitions: int,
    workers: int,
) -> _RadixBuild:
    """Single pass over the build side: chunked parallel radix partitioning.

    Phase one fans build-row chunks out to workers; each chunk task routes
    its rows into per-partition key/rid lists (one hash per row — the old
    implementation re-hashed every row once *per partition*).  Phase two
    concatenates chunk outputs in chunk order, preserving build-input order
    within every partition.  Phase three finalizes partitions in parallel,
    largest first so a skewed partition starts immediately and smaller ones
    pack in behind it (LPT scheduling — the work-stealing analogue for a
    futures pool).
    """
    n_build = len(right_rows)
    single = len(right_key_fns) == 1
    if workers <= 1 or n_build < 4096:
        n_chunks = 1
    else:
        n_chunks = min(workers * 4, max(1, n_build // 2048))
    bounds = [
        (n_build * c // n_chunks, n_build * (c + 1) // n_chunks)
        for c in range(n_chunks)
    ]

    def partition_chunk(start: int, end: int):
        keys: List[List[Any]] = [[] for _ in range(partitions)]
        rids: List[List[int]] = [[] for _ in range(partitions)]
        kind: Optional[str] = "" if single else None
        fn = right_key_fns[0]
        for rid in range(start, end):
            row = right_rows[rid]
            if single:
                key = fn(row)
                if key is None:
                    continue  # SQL equality never matches NULL
            else:
                key = tuple(k(row) for k in right_key_fns)
                if any(v is None for v in key):
                    continue
            p = stable_hash(key) % partitions
            keys[p].append(key)
            rids[p].append(rid)
            if kind is not None:
                if isinstance(key, bool):
                    kind = None
                elif isinstance(key, int):
                    kind = (
                        "i"
                        if kind in ("", "i") and _INT64_MIN <= key < _INT64_MAX
                        else None
                    )
                elif isinstance(key, float):
                    # NaN keys never vectorize: searchsorted would treat
                    # them as orderable and fabricate NaN == NaN matches.
                    kind = "f" if kind in ("", "f") and key == key else None
                else:
                    kind = None
        return keys, rids, kind

    chunk_tasks = [
        _traced(
            lambda s=start, e=end: partition_chunk(s, e), "@join-build", c
        )
        for c, (start, end) in enumerate(bounds)
    ]
    keys_per_part: List[List[Any]] = [[] for _ in range(partitions)]
    rids_per_part: List[List[int]] = [[] for _ in range(partitions)]
    kind: Optional[str] = "" if single else None
    for chunk_keys, chunk_rids, chunk_kind in map_ordered(chunk_tasks, workers):
        for p in range(partitions):
            keys_per_part[p].extend(chunk_keys[p])
            rids_per_part[p].extend(chunk_rids[p])
        if kind is not None:
            kind = _merge_kind(kind, chunk_kind)
    if kind == "":
        kind = None  # no non-NULL keys at all: dict mode handles empty fine

    build = _RadixBuild(partitions, kind)
    by_size = sorted(range(partitions), key=lambda p: -len(keys_per_part[p]))

    if kind is not None:
        dtype = np.int64 if kind == "i" else np.float64

        def finalize_vector(p: int):
            arr = np.asarray(keys_per_part[p], dtype=dtype)
            order = np.argsort(arr, kind="stable")
            return arr[order], np.asarray(rids_per_part[p], dtype=np.intp)[order]

        finalize_tasks = [
            _traced(lambda p=p: (p, finalize_vector(p)), "@join-partition", p)
            for p in by_size
        ]
        finalized = dict(map_ordered(finalize_tasks, workers))
        offsets = np.zeros(partitions + 1, dtype=np.intp)
        for p in range(partitions):
            offsets[p + 1] = offsets[p] + len(keys_per_part[p])
        build.offsets = offsets
        build.all_keys = np.concatenate(
            [finalized[p][0] for p in range(partitions)]
        ) if int(offsets[-1]) else np.empty(0, dtype=dtype)
        build.all_rids = np.concatenate(
            [finalized[p][1] for p in range(partitions)]
        ) if int(offsets[-1]) else np.empty(0, dtype=np.intp)
        return build

    def finalize_dict(p: int):
        table: Dict[Any, List[int]] = {}
        for key, rid in zip(keys_per_part[p], rids_per_part[p]):
            table.setdefault(key, []).append(rid)
        return table

    finalize_tasks = [
        _traced(lambda p=p: (p, finalize_dict(p)), "@join-partition", p)
        for p in by_size
    ]
    finalized = dict(map_ordered(finalize_tasks, workers))
    build.tables = [finalized[p] for p in range(partitions)]
    return build


def _probe_vectorized(
    key_arr: np.ndarray,
    columns: Batch,
    n: int,
    build: _RadixBuild,
    right_rows: List[Tuple],
    is_outer: bool,
    null_pad: Tuple,
    left_width: int,
) -> Optional[List[Tuple]]:
    """Whole-morsel probe against a vector-mode build, or None to fall back.

    One hash kernel routes the morsel's keys to partitions, one pair of
    ``searchsorted`` calls per touched partition finds every match range,
    and the match expansion (which probe row pairs with which build rows)
    is pure index arithmetic — ``repeat``/``cumsum`` — so the entire
    matching phase runs in numpy with the GIL released.
    """
    pids = stable_partitions(key_arr, build.partitions)
    if pids is None:
        return None  # non-finite floats present: scalar path handles them
    all_keys, all_rids, offsets = build.all_keys, build.all_rids, build.offsets
    starts = np.zeros(n, dtype=np.intp)
    counts = np.zeros(n, dtype=np.intp)
    for p in np.unique(pids):
        lo, hi = int(offsets[p]), int(offsets[p + 1])
        mask = pids == p
        if lo == hi:
            continue
        seg = all_keys[lo:hi]
        sub = key_arr[mask]
        starts[mask] = lo + np.searchsorted(seg, sub, side="left")
        counts[mask] = (
            lo + np.searchsorted(seg, sub, side="right")
        ) - starts[mask]

    list_cols = _to_lists(columns, left_width, n)
    left_tuples = list(zip(*list_cols))
    if not is_outer:
        total = int(counts.sum())
        if total == 0:
            return []
        left_idx = np.repeat(np.arange(n), counts)
        base = np.cumsum(counts) - counts
        rpos = np.repeat(starts, counts) + (
            np.arange(total) - np.repeat(base, counts)
        )
        rids = all_rids[rpos]
        return [
            left_tuples[i] + right_rows[r]
            for i, r in zip(left_idx.tolist(), rids.tolist())
        ]
    out_counts = np.maximum(counts, 1)
    total = int(out_counts.sum())
    left_idx = np.repeat(np.arange(n), out_counts)
    base = np.cumsum(out_counts) - out_counts
    pos = np.arange(total) - np.repeat(base, out_counts)
    is_match = pos < np.repeat(counts, out_counts)
    rpos = np.repeat(starts, out_counts) + pos
    rids = np.zeros(total, dtype=np.intp)
    rids[is_match] = all_rids[rpos[is_match]]
    out: List[Tuple] = []
    for i, r, m in zip(left_idx.tolist(), rids.tolist(), is_match.tolist()):
        out.append(left_tuples[i] + (right_rows[r] if m else null_pad))
    return out


def join_rows(
    node: phys.PPartitionedHashJoin,
    catalog: Catalog,
    right_rows: List[Tuple],
) -> List[Tuple]:
    """Radix-partitioned parallel build + morsel-parallel probe, in serial order.

    ``right_rows`` is the materialized build side, produced by whichever
    engine is driving (keeps this module engine-agnostic and import-cycle
    free).  Partition routing uses :mod:`repro.exec.stablehash`, never the
    ``PYTHONHASHSEED``-randomized builtin, so assignments reproduce across
    runs and across ``REPRO_PROCESS_POOL=1`` fork workers.
    """
    partitions = max(1, node.partitions)
    right_key_fns = [evaluator(k) for k in node.right_keys]
    build = _radix_build(right_rows, right_key_fns, partitions, node.workers)

    scan = node.left
    source = catalog.get_table(scan.table).morsels(scan.morsel_size)
    predicate, exprs = scan.predicate, scan.exprs
    left_keys = node.left_keys
    residual = evaluator(node.residual)
    null_pad = (None,) * len(node.right.schema)
    is_outer = node.is_outer
    left_width = len(scan.schema)
    single = len(left_keys) == 1
    #: The numpy probe requires same-kind dtypes on both sides; cross-kind
    #: comparisons (int64 keys probed with floats, say) go through the
    #: scalar path's exact conversion rules instead of a lossy array cast.
    vector_ok = build.kind is not None and single and residual is None

    def make(spec: Any) -> Callable[[], List[Tuple]]:
        def probe() -> List[Tuple]:
            columns, n = source.read(spec)
            columns, n = _apply_filter(predicate, columns, n)
            columns = _apply_project(exprs, columns, n)
            if n == 0:
                return []
            if vector_ok:
                key_arr = _numpy_operand(left_keys[0], columns)
                if (
                    isinstance(key_arr, np.ndarray)
                    and key_arr.dtype.kind == build.kind
                ):
                    out = _probe_vectorized(
                        key_arr,
                        columns,
                        n,
                        build,
                        right_rows,
                        is_outer,
                        null_pad,
                        left_width,
                    )
                    if out is not None:
                        return out
            columns = _to_lists(columns, left_width, n)
            key_cols = [eval_batch(k, columns, n) for k in left_keys]
            out = []
            for i, left_row in enumerate(zip(*columns)):
                if single:
                    key = key_cols[0][i]
                    has_null = key is None
                else:
                    key = tuple(col[i] for col in key_cols)
                    has_null = any(v is None for v in key)
                matched = False
                if not has_null:
                    for rid in build.lookup(key):
                        combined = left_row + right_rows[rid]
                        if residual is None or residual(combined) is True:
                            matched = True
                            out.append(combined)
                if is_outer and not matched:
                    out.append(left_row + null_pad)
            return out

        return probe

    tasks = [
        _traced(make(spec), scan.table, i) for i, spec in enumerate(source.specs)
    ]
    rows: List[Tuple] = []
    for chunk in map_ordered(tasks, node.workers):
        rows.extend(chunk)
    return rows


# -- parallel sort ------------------------------------------------------------------


def _sort_key_arrays(
    keys: Sequence[Tuple[BoundExpr, bool]], columns: Batch
) -> Optional[List[np.ndarray]]:
    """Direction-adjusted numpy key arrays for one morsel, or None.

    DESC is folded into the array so every later step sorts plain
    ascending: ``~arr`` for integers (bitwise complement is monotone
    decreasing and, unlike negation, cannot overflow at ``-2**63``) and
    ``-arr`` for floats.  Only clean (null-free) numeric columns qualify —
    the general path owns NULL placement and mixed types.
    """
    arrs: List[np.ndarray] = []
    for expr, asc in keys:
        arr = _numpy_operand(expr, columns)
        if not isinstance(arr, np.ndarray):
            return None
        if arr.dtype.kind in ("i", "u"):
            arrs.append(arr if asc else ~arr)
        elif arr.dtype.kind == "f":
            arrs.append(arr if asc else -arr)
        else:
            return None
    return arrs


def sorted_rows(node: phys.PParallelSort, catalog: Catalog) -> List[Tuple]:
    """Execute a parallel sort; returns rows in exact serial order.

    Morsel tasks scan/filter/project as usual, then either hand back
    direction-adjusted numpy key arrays (clean numeric keys) or a sorted
    run of rows (everything else).  The gather is one global *stable*
    ``np.lexsort`` in the numpy case — concatenation order is morsel order
    is serial scan order, so stability alone reproduces serial tie
    ordering — or a ``heapq.merge`` of the sorted runs, with ties broken
    by run index for the same reason.

    With a ``limit_hint`` each morsel keeps only its own top-k before the
    gather (any row in the global top-k is necessarily in its morsel's
    top-k, and stable per-morsel selection keeps exactly the tied rows
    serial ``heapq.nsmallest`` would keep), so ``ORDER BY ... LIMIT``
    never materializes full runs.
    """
    from repro.exec.volcano import SortComparable, sort_rows

    scan = node.child
    source = catalog.get_table(scan.table).morsels(scan.morsel_size)
    predicate, exprs = scan.predicate, scan.exprs
    keys = node.keys
    limit = node.limit_hint
    width = len(scan.schema)
    n_keys = len(keys)

    def make(spec: Any) -> Callable[[], Tuple]:
        def task() -> Tuple:
            columns, n = source.read(spec)
            columns, n = _apply_filter(predicate, columns, n)
            columns = _apply_project(exprs, columns, n)
            if n == 0:
                return ("rows", [])
            key_arrs = _sort_key_arrays(keys, columns)
            if key_arrs is not None:
                if limit is not None and limit < n:
                    order = np.lexsort(key_arrs[::-1])[:limit]
                    picked: Batch = []
                    for col in columns:
                        if isinstance(col, np.ndarray):
                            picked.append(col[order])
                        else:
                            picked.append([col[i] for i in order.tolist()])
                    columns = picked
                    key_arrs = [arr[order] for arr in key_arrs]
                    n = len(order)
                return ("np", columns, n, key_arrs)
            rows = list(zip(*_to_lists(columns, width, n)))
            return ("rows", sort_rows(rows, keys, limit))

        return task

    tasks = [
        _traced(make(spec), scan.table, i) for i, spec in enumerate(source.specs)
    ]
    results = [r for r in map_ordered(tasks, node.workers) if r[0] != "rows" or r[1]]
    if not results:
        return []

    # Vector gather: every morsel produced key arrays of consistent kinds.
    if all(r[0] == "np" for r in results):
        kinds = {
            tuple(arr.dtype.kind for arr in r[3]) for r in results
        }
        if len(kinds) == 1:
            key_concat = [
                np.concatenate([r[3][k] for r in results]) for k in range(n_keys)
            ]
            order = np.lexsort(key_concat[::-1])
            if limit is not None:
                order = order[:limit]
            out_cols: List[List[Any]] = []
            for c in range(width):
                pieces = [r[1][c] for r in results]
                if all(isinstance(p, np.ndarray) for p in pieces):
                    out_cols.append(np.concatenate(pieces)[order].tolist())
                else:
                    flat: List[Any] = []
                    for piece in pieces:
                        flat.extend(
                            piece.tolist() if isinstance(piece, np.ndarray) else piece
                        )
                    out_cols.append([flat[i] for i in order.tolist()])
            return list(zip(*out_cols)) if out_cols else []

    # General gather: k-way merge of sorted runs.  Numpy morsels (mixed in
    # only when dtypes drifted mid-table) are sorted here before merging.
    key_fns = [evaluator(e) for e, _ in keys]
    directions = [asc for _, asc in keys]
    runs: List[List[Tuple]] = []
    for r in results:
        if r[0] == "rows":
            runs.append(r[1])
        else:
            rows = list(zip(*_to_lists(r[1], width, r[2])))
            runs.append(sort_rows(rows, keys, limit))

    def decorated(run: List[Tuple], run_idx: int):
        # Rows are never compared: ties on (key, run_idx) cannot happen
        # across runs, and heapq.merge preserves order within one run.
        for row in run:
            yield (
                SortComparable([fn(row) for fn in key_fns], directions),
                run_idx,
                row,
            )

    out: List[Tuple] = []
    for _, _, row in heapq.merge(*(decorated(run, i) for i, run in enumerate(runs))):
        out.append(row)
        if limit is not None and len(out) >= limit:
            break
    return out
