"""Unit tests for the morsel layer: storage sources, planner gating,
ordered gather, aggregate/join edge cases, plan-cache segregation,
invariant checks, and env-based worker resolution."""

from __future__ import annotations

from dataclasses import astuple

import numpy as np
import pytest

from repro.analyze.invariants import check_physical_invariants
from repro.catalog.catalog import TableInfo
from repro.core.database import Database
from repro.core.errors import ReproError
from repro.core.types import Column, DataType, Schema
from repro.exec import physical as phys
from repro.optimizer.optimizer import OptimizerOptions
from repro.plan.expressions import BoundBinary, BoundColumn, BoundLiteral
from repro.storage.buffer import BufferPool
from repro.storage.column import ColumnTable
from repro.storage.disk import InMemoryDiskManager
from repro.storage.heap import HeapFile


def two_col_schema():
    return Schema([Column("id", DataType.INTEGER), Column("v", DataType.FLOAT)])


def parallel_db(workers=2, morsel_size=64, layout="column", engine="vectorized"):
    return Database(
        engine=engine,
        default_layout=layout,
        # Explicit argument: pins the count even when the suite runs under
        # the REPRO_PARALLEL/REPRO_WORKERS CI leg.
        workers=workers,
        optimizer_options=OptimizerOptions(
            parallel_min_rows=1, morsel_size=morsel_size
        ),
    )


def read_all(source):
    """Concatenate every morsel of a source, row-major."""
    rows = []
    for spec in source.specs:
        columns, n = source.read(spec)
        for i in range(n):
            rows.append(tuple(col[i] for col in columns))
    return rows


# -- storage sources -------------------------------------------------------


class TestColumnMorselSource:
    def _table(self, n):
        table = ColumnTable(two_col_schema(), name="t")
        for i in range(n):
            table.append((i, float(i)))
        return table

    @pytest.mark.parametrize("morsel_size", [1, 2, 7, 100, 101, 4096])
    def test_boundary_sizes_cover_all_rows(self, morsel_size):
        table = self._table(101)
        source = table.morsel_source(morsel_size)
        assert read_all(source) == [(i, float(i)) for i in range(101)]
        spans = [end - start for start, end in source.specs]
        assert sum(spans) == 101
        assert all(0 < span <= morsel_size for span in spans)

    def test_zero_copy_fast_path_when_clean(self):
        table = self._table(50)
        source = table.morsel_source(16)
        assert source.live is None
        assert all(isinstance(a, np.ndarray) for a in source.arrays)
        columns, n = source.read(source.specs[0])
        assert n == 16
        assert isinstance(columns[0], np.ndarray)
        assert columns[0].base is source.arrays[0]  # a view, not a copy

    def test_deletions_take_the_live_index_path(self):
        table = self._table(20)
        for idx in (0, 5, 19):
            table.delete(idx)
        source = table.morsel_source(8)
        assert source.live is not None
        expected = [(i, float(i)) for i in range(20) if i not in (0, 5, 19)]
        assert read_all(source) == expected

    def test_nulls_disable_clean_arrays_but_not_scanning(self):
        table = ColumnTable(two_col_schema(), name="nulls")
        table.append((1, None))
        table.append((2, 2.0))
        assert table.clean_array(0) is not None
        assert table.clean_array(1) is None
        source = table.morsel_source(10)
        assert source.arrays[1] is None
        assert read_all(source) == [(1, None), (2, 2.0)]

    def test_snapshot_isolated_from_later_writes(self):
        table = self._table(10)
        source = table.morsel_source(4)
        table.append((99, 99.0))
        assert len(read_all(source)) == 10

    def test_empty_table(self):
        table = ColumnTable(two_col_schema(), name="empty")
        source = table.morsel_source(8)
        assert source.specs == []


class TestHeapMorselSource:
    def _heap(self, n):
        pool = BufferPool(InMemoryDiskManager(), capacity=64)
        heap = HeapFile(pool, two_col_schema(), name="h")
        for i in range(n):
            heap.insert((i, float(i)))
        return heap

    @pytest.mark.parametrize("morsel_size", [1, 50, 500, 10_000])
    def test_page_chunks_cover_all_rows(self, morsel_size):
        heap = self._heap(500)
        source = heap.morsel_source(morsel_size)
        assert sorted(read_all(source)) == [(i, float(i)) for i in range(500)]

    def test_empty_morsel_keeps_schema_width(self):
        heap = self._heap(0)
        source = heap.morsel_source(100)
        for spec in source.specs:
            columns, n = source.read(spec)
            assert n == 0
            assert len(columns) == 2


class TestTableInfoDispatch:
    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_morsels_dispatches_by_layout(self, layout):
        pool = BufferPool(InMemoryDiskManager(), capacity=64)
        info = TableInfo("t", two_col_schema(), pool, layout=layout)
        for i in range(30):
            info.insert((i, float(i)))
        source = info.morsels(morsel_size=10)
        assert sorted(read_all(source)) == [(i, float(i)) for i in range(30)]


# -- planner gating --------------------------------------------------------


class TestParallelizePass:
    def _db(self, **kw):
        db = parallel_db(**kw)
        db.execute("CREATE TABLE t (id INTEGER NOT NULL, v FLOAT)")
        db.insert_rows("t", [(i, float(i)) for i in range(300)])
        return db

    def test_scan_chain_parallelized(self):
        db = self._db()
        plan = db.explain("SELECT v FROM t WHERE id > 10")
        assert "ParallelScan" in plan

    def test_small_tables_stay_serial(self):
        db = parallel_db()
        db.optimizer_options = OptimizerOptions(workers=2, parallel_min_rows=2048)
        db.execute("CREATE TABLE small (id INTEGER)")
        db.insert_rows("small", [(i,) for i in range(10)])
        plan = db.explain("SELECT id FROM small WHERE id > 1")
        assert "ParallelScan" not in plan
        assert "SeqScan" in plan

    def test_workers_zero_is_fully_serial(self):
        db = self._db(workers=0)
        plan = db.explain("SELECT v FROM t WHERE id > 10")
        assert "ParallelScan" not in plan

    def test_index_scans_stay_serial(self):
        db = self._db()
        db.execute("CREATE INDEX idx_id ON t (id)")
        db.analyze()
        plan = db.explain("SELECT v FROM t WHERE id = 5")
        assert "IndexScan" in plan
        assert "ParallelScan" not in plan

    def test_eligible_aggregate_goes_two_phase(self):
        db = self._db()
        plan = db.explain("SELECT COUNT(*), SUM(v) FROM t WHERE id > 10")
        assert "TwoPhaseAggregate" in plan

    def test_join_goes_partitioned(self):
        db = self._db()
        db.execute("CREATE TABLE u (id INTEGER NOT NULL, w FLOAT)")
        db.insert_rows("u", [(i, float(i * 2)) for i in range(300)])
        plan = db.explain("SELECT t.v, u.w FROM t JOIN u ON t.id = u.id")
        assert "PartitionedHashJoin" in plan


# -- ordered gather --------------------------------------------------------


class TestOrderedGather:
    @pytest.mark.parametrize("engine", ["volcano", "vectorized"])
    def test_unordered_select_preserves_serial_row_order(self, engine):
        serial = Database(engine=engine, default_layout="column")
        par = parallel_db(workers=4, morsel_size=16, engine=engine)
        for db in (serial, par):
            db.execute("CREATE TABLE seq (id INTEGER NOT NULL, tag TEXT)")
            db.insert_rows("seq", [(i, f"tag-{i % 13}") for i in range(1000)])
        sql = "SELECT id, tag FROM seq WHERE id % 3 = 0"  # no ORDER BY
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_workers_one_runs_inline_with_same_results(self):
        db = parallel_db(workers=1, morsel_size=32)
        db.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        db.insert_rows("t", [(i,) for i in range(200)])
        assert "ParallelScan" in db.explain("SELECT id FROM t WHERE id < 50")
        rows = db.execute("SELECT id FROM t WHERE id < 50").rows
        assert rows == [(i,) for i in range(50)]


# -- aggregate edge cases --------------------------------------------------


class TestTwoPhaseAggregateEdges:
    def _db(self):
        db = parallel_db(workers=2, morsel_size=8)
        db.execute("CREATE TABLE m (k TEXT, v INTEGER, f FLOAT)")
        return db

    def test_nulls_follow_sql_semantics(self):
        db = self._db()
        db.insert_rows(
            "m",
            [("a", 1, None), ("a", None, 2.5), ("b", None, None), ("a", 3, 0.5)],
        )
        rows = db.execute(
            "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(f), MIN(v), MAX(f) "
            "FROM m GROUP BY k"
        ).rows
        assert rows == [
            ("a", 3, 2, 4, 1.5, 1, 2.5),
            ("b", 1, 0, None, None, None, None),
        ]

    def test_empty_input_global_aggregate(self):
        db = self._db()
        rows = db.execute("SELECT COUNT(*), SUM(v), MIN(v), AVG(f) FROM m").rows
        assert rows == [(0, None, None, None)]

    def test_distinct_merges_across_morsels(self):
        db = self._db()
        db.insert_rows("m", [("g", i % 5, float(i % 3)) for i in range(100)])
        rows = db.execute(
            "SELECT COUNT(DISTINCT v), SUM(DISTINCT v) FROM m"
        ).rows
        assert rows == [(5, 10)]

    def test_text_group_keys(self):
        db = self._db()
        db.insert_rows("m", [(f"k{i % 4}", i, float(i)) for i in range(64)])
        rows = db.execute("SELECT k, COUNT(*) FROM m GROUP BY k").rows
        # First-seen order, like the serial aggregate.
        assert rows == [("k0", 16), ("k1", 16), ("k2", 16), ("k3", 16)]

    def test_int_sum_beyond_float53_stays_exact(self):
        db = parallel_db(workers=2, morsel_size=64)
        db.execute("CREATE TABLE big (v INTEGER NOT NULL)")
        huge = (1 << 53) + 1  # would round under a float64 accumulator
        db.insert_rows("big", [(huge,), (1,)] * 100)
        rows = db.execute("SELECT SUM(v) FROM big").rows
        assert rows == [((huge + 1) * 100,)]


# -- join edge cases -------------------------------------------------------


class TestPartitionedJoinEdges:
    def _dbs(self):
        serial = Database(engine="vectorized", default_layout="column")
        par = parallel_db(workers=2, morsel_size=8)
        for db in (serial, par):
            db.execute("CREATE TABLE l (id INTEGER, v INTEGER)")
            db.execute("CREATE TABLE r (id INTEGER, w INTEGER)")
            db.insert_rows(
                "l", [(i if i % 7 else None, i) for i in range(60)]
            )
            db.insert_rows("r", [(i, i * 10) for i in range(0, 60, 2)])
        return serial, par

    def test_left_outer_with_null_keys(self):
        serial, par = self._dbs()
        sql = "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id"
        assert "PartitionedHashJoin" in par.explain(sql)
        assert par.execute(sql).rows == serial.execute(sql).rows

    def test_inner_with_residual_condition(self):
        serial, par = self._dbs()
        sql = "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id AND l.v + r.w > 100"
        assert par.execute(sql).rows == serial.execute(sql).rows


# -- plan cache segregation ------------------------------------------------


class TestPlanCacheSegregation:
    def test_worker_options_change_the_cache_key(self):
        serial = OptimizerOptions()
        par = OptimizerOptions(workers=2)
        assert astuple(serial) != astuple(par)
        small_morsels = OptimizerOptions(workers=2, morsel_size=64)
        assert astuple(par) != astuple(small_morsels)

    def test_databases_with_different_workers_use_distinct_keys(self):
        assert (
            parallel_db(workers=2)._options_key()
            != Database(engine="vectorized")._options_key()
        )


# -- invariants ------------------------------------------------------------


class TestParallelInvariants:
    def _scan(self, **overrides):
        schema = two_col_schema()
        fields = dict(
            table="t",
            alias="t",
            base_schema=schema,
            predicate=None,
            exprs=None,
            schema=schema,
            workers=2,
            morsel_size=64,
            cardinality=10.0,
        )
        fields.update(overrides)
        return phys.PParallelScan(**fields)

    def test_valid_parallel_scan_passes(self):
        assert check_physical_invariants(self._scan()) == []

    def test_out_of_bounds_predicate_column_flagged(self):
        bad = BoundBinary(
            ">",
            BoundColumn(9, DataType.INTEGER, "ghost"),
            BoundLiteral(1, DataType.INTEGER),
            DataType.BOOLEAN,
        )
        findings = check_physical_invariants(self._scan(predicate=bad))
        assert any("column" in f.message for f in findings)

    def test_projection_arity_mismatch_flagged(self):
        findings = check_physical_invariants(
            self._scan(
                exprs=(BoundColumn(0, DataType.INTEGER, "id"),),
                # schema still two wide: arity mismatch
            )
        )
        assert findings

    def test_zero_workers_flagged(self):
        findings = check_physical_invariants(self._scan(workers=0))
        assert findings

    def test_join_key_bounds_checked(self):
        scan = self._scan()
        join = phys.PPartitionedHashJoin(
            left=scan,
            right=self._scan(),
            kind="inner",
            left_keys=(BoundColumn(5, DataType.INTEGER, "bad"),),
            right_keys=(BoundColumn(0, DataType.INTEGER, "id"),),
            residual=None,
            schema=Schema(list(scan.schema.columns) * 2),
            workers=2,
        )
        findings = check_physical_invariants(join)
        assert any("key" in f.message or "column" in f.message for f in findings)


# -- env resolution --------------------------------------------------------


class TestWorkerEnvResolution:
    def test_repro_workers_pins_exact_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        db = Database(engine="vectorized")
        assert db.optimizer_options.workers == 3

    def test_repro_parallel_defaults_to_at_least_two(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        db = Database(engine="vectorized")
        assert db.optimizer_options.workers >= 2

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        db = Database(engine="vectorized", workers=0)
        assert db.optimizer_options.workers == 0

    def test_negative_workers_rejected(self):
        with pytest.raises(ReproError):
            Database(engine="vectorized", workers=-1)

    def test_env_off_leaves_options_alone(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        db = Database(engine="vectorized")
        assert db.optimizer_options.workers == 0
