"""Tests for workload generators (repro.workloads)."""

import numpy as np
import pytest

from repro.core.database import Database
from repro.txn import make_scheme
from repro.workloads import (
    embed_text,
    load_tpch,
    make_corpus,
    make_oltp_workload,
    run_oltp,
    tpch_query,
    tpch_row_counts,
)
from repro.workloads.corpus import TOPICS


@pytest.fixture(scope="module")
def tpch_db():
    db = Database()
    load_tpch(db, scale_factor=0.05, seed=1)
    return db


class TestTPCHGenerator:
    def test_row_counts_scale(self):
        small = tpch_row_counts(0.1)
        large = tpch_row_counts(1.0)
        assert large["lineitem"] == 10 * small["lineitem"]
        assert small["region"] == large["region"] == 5

    def test_load_counts_match(self, tpch_db):
        expected = tpch_row_counts(0.05)
        assert tpch_db.table("lineitem").row_count == expected["lineitem"]
        assert tpch_db.table("orders").row_count == expected["orders"]
        assert tpch_db.table("nation").row_count == 25

    def test_deterministic(self):
        db1, db2 = Database(), Database()
        load_tpch(db1, scale_factor=0.01, seed=7)
        load_tpch(db2, scale_factor=0.01, seed=7)
        q = "SELECT SUM(l_extendedprice) FROM lineitem"
        assert db1.execute(q).scalar() == db2.execute(q).scalar()

    def test_statistics_populated(self, tpch_db):
        stats = tpch_db.table("lineitem").stats
        assert stats is not None
        assert stats.column("l_shipdate").histogram is not None

    def test_referential_structure(self, tpch_db):
        """Every lineitem refers to an existing order."""
        orphans = tpch_db.execute(
            "SELECT COUNT(*) FROM lineitem l LEFT JOIN orders o "
            "ON l.l_orderkey = o.o_orderkey WHERE o.o_orderkey IS NULL"
        ).scalar()
        assert orphans == 0

    def test_q1_aggregates_consistent(self, tpch_db):
        result = tpch_db.execute(tpch_query("Q1"))
        assert 0 < len(result.rows) <= 6  # at most 3 flags x 2 statuses
        for row in result.rows:
            count = row[-1]
            sum_qty, avg_qty = row[2], row[5]
            assert avg_qty == pytest.approx(sum_qty / count)

    def test_q6_matches_manual_filter(self, tpch_db):
        revenue = tpch_db.execute(tpch_query("Q6", date=365)).scalar()
        rows = tpch_db.execute(
            "SELECT l_extendedprice, l_discount, l_quantity, l_shipdate FROM lineitem"
        ).rows
        manual = sum(
            p * d
            for p, d, q, s in rows
            if 365 <= s < 730 and 0.049 <= d <= 0.071 and q < 24
        )
        if revenue is None:
            assert manual == pytest.approx(0.0)
        else:
            assert revenue == pytest.approx(manual)

    def test_q3_limit_and_order(self, tpch_db):
        result = tpch_db.execute(tpch_query("Q3"))
        assert len(result.rows) <= 10
        revenues = [row[1] for row in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q5_engine_parity(self, tpch_db):
        volcano = tpch_db.execute(tpch_query("Q5"), engine="volcano").rows
        vectorized = tpch_db.execute(tpch_query("Q5"), engine="vectorized").rows
        assert volcano == vectorized

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            tpch_query("Q99")

    def test_q10_shape(self, tpch_db):
        result = tpch_db.execute(tpch_query("Q10"))
        assert len(result.rows) <= 20
        revenues = [row[2] for row in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q12_counts_partition_lineitems(self, tpch_db):
        result = tpch_db.execute(tpch_query("Q12", date=365))
        total = sum(row[1] + row[2] for row in result.rows)
        manual = tpch_db.execute(
            "SELECT COUNT(*) FROM lineitem l JOIN orders o "
            "ON l.l_orderkey = o.o_orderkey "
            "WHERE l.l_shipdate >= 365 AND l.l_shipdate < 730"
        ).scalar()
        assert total == manual



class TestOLTPWorkload:
    def test_deterministic(self):
        a = make_oltp_workload(num_transactions=50, seed=3)
        b = make_oltp_workload(num_transactions=50, seed=3)
        assert a.transactions == b.transactions

    def test_keys_sorted_within_txn(self):
        workload = make_oltp_workload(num_transactions=100, seed=0)
        for spec in workload.transactions:
            keys = [k for k, _ in spec.accesses]
            assert keys == sorted(keys)

    def test_zipf_skews_popularity(self):
        workload = make_oltp_workload(
            num_transactions=500, num_keys=100, zipf_skew=1.2, seed=1
        )
        counts = {}
        for spec in workload.transactions:
            for key, _ in spec.accesses:
                counts[key] = counts.get(key, 0) + 1
        hot = sum(counts.get(k, 0) for k in range(10))
        cold = sum(counts.get(k, 0) for k in range(90, 100))
        assert hot > 3 * cold

    def test_run_commits_everything(self):
        workload = make_oltp_workload(num_transactions=60, seed=2)
        result = run_oltp(make_scheme("mvcc"), workload, threads=4,
                          work_per_access_s=0.0001, max_retries=500)
        assert result.committed == 60
        assert result.throughput > 0

    def test_writes_are_preserved(self):
        """Sum of increments equals total committed write count."""
        workload = make_oltp_workload(
            num_transactions=80, num_keys=20, write_fraction=1.0, seed=4
        )
        scheme = make_scheme("2pl")
        result = run_oltp(
            scheme, workload, threads=4, work_per_access_s=0.0001, max_retries=500
        )
        assert result.committed == len(workload.transactions)
        txn = scheme.begin()
        total = sum((scheme.read(txn, k) or 0) - 1000 for k in range(20))
        scheme.commit(txn)
        expected = sum(len(spec.accesses) for spec in workload.transactions)
        assert total == expected


class TestCorpus:
    def test_deterministic(self):
        assert make_corpus(50, seed=1) == make_corpus(50, seed=1)

    def test_duplicates_share_urls(self):
        docs = make_corpus(300, duplicate_fraction=0.3, seed=2)
        urls = [d.url for d in docs]
        assert len(set(urls)) < len(urls)

    def test_no_duplicates_when_disabled(self):
        docs = make_corpus(100, duplicate_fraction=0.0, seed=3)
        assert len({d.doc_id for d in docs}) == 100

    def test_topics_drawn_from_catalog(self):
        docs = make_corpus(100, seed=4)
        assert {d.topic for d in docs} <= set(TOPICS)

    def test_topic_words_dominate(self):
        docs = make_corpus(200, duplicate_fraction=0.0, seed=5)
        hits = 0
        for doc in docs[:50]:
            vocab = set(TOPICS[doc.topic])
            words = doc.text.split()
            hits += sum(1 for w in words if w in vocab) / len(words)
        assert hits / 50 > 0.4

    def test_quality_in_unit_interval(self):
        assert all(0 <= d.quality <= 1 for d in make_corpus(100, seed=6))


class TestEmbeddings:
    def test_deterministic(self):
        assert np.allclose(embed_text("hello world"), embed_text("hello world"))

    def test_unit_norm(self):
        assert np.linalg.norm(embed_text("some text here")) == pytest.approx(1.0)

    def test_topic_proximity(self):
        """Same-topic texts are closer than cross-topic texts."""
        db1 = embed_text("query optimizer index join storage")
        db2 = embed_text("index scan query storage btree")
        cook = embed_text("flour oven butter dough simmer")
        same = float(db1 @ db2)
        cross = float(db1 @ cook)
        assert same > cross + 0.2

    def test_empty_text(self):
        assert np.allclose(embed_text(""), np.zeros(32))

    def test_seed_changes_space(self):
        a = embed_text("hello world", seed=0)
        b = embed_text("hello world", seed=1)
        assert not np.allclose(a, b)
