"""Static ORM N+1 detector, cross-checked against the E2 benchmark code.

E2 measures the lazy/eager gap at runtime (1+N queries vs. 1); these tests
assert the *static* detector draws the same line: the exact lazy traversal
E2 benchmarks is flagged, the eager variant and raw SQL are not.
"""

from __future__ import annotations

import os
import textwrap

from repro.analyze.cli import main as lint_main
from repro.analyze.orm_check import (
    RULE_ID,
    collect_relationships,
    scan_python_file,
    scan_python_source,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
E2_BENCH = os.path.join(REPO_ROOT, "benchmarks", "bench_e2_orm_n_plus_one.py")
EXAMPLE = os.path.join(REPO_ROOT, "examples", "orm_antipattern.py")


def _scan(*parts: str):
    source = "\n".join(textwrap.dedent(part) for part in parts)
    return scan_python_source(source, "<test>")


HEADER = """
    class Author(Model):
        id = IntegerField(primary_key=True)

    class Book(Model):
        id = IntegerField(primary_key=True)

    Author.relate("books", Book, foreign_key="author_id")
"""


class TestRelationshipCollection:
    def test_relate_call(self):
        import ast

        tree = ast.parse(textwrap.dedent(HEADER))
        assert collect_relationships(tree) == {"books"}

    def test_has_many_class_attribute(self):
        import ast

        source = textwrap.dedent(
            """
            class Author(Model):
                id = IntegerField(primary_key=True)
                books = has_many(Book, "author_id")
            """
        )
        assert collect_relationships(ast.parse(source)) == {"books"}


class TestDetection:
    def test_generator_over_lazy_query(self):
        findings = _scan(
            HEADER,
            """
            def traverse(session):
                return sum(len(a.books) for a in session.query(Author).all())
            """
        )
        assert [f.rule for f in findings] == [RULE_ID]
        assert "a.books" in findings[0].message

    def test_for_loop_over_lazy_query(self):
        findings = _scan(
            HEADER,
            """
            def traverse(session):
                total = 0
                for author in session.query(Author).all():
                    total += len(author.books)
                return total
            """
        )
        assert [f.rule for f in findings] == [RULE_ID]

    def test_loop_over_lazy_variable(self):
        findings = _scan(
            HEADER,
            """
            def traverse(session):
                authors = session.query(Author).all()
                return [len(a.books) for a in authors]
            """
        )
        assert [f.rule for f in findings] == [RULE_ID]

    def test_eager_query_is_clean(self):
        findings = _scan(
            HEADER,
            """
            def traverse(session):
                return sum(
                    len(a.books)
                    for a in session.query(Author).options(eager("books")).all()
                )
            """
        )
        assert findings == []

    def test_loop_without_relationship_access_is_clean(self):
        findings = _scan(
            HEADER,
            """
            def names(session):
                return [a.name for a in session.query(Author).all()]
            """
        )
        assert findings == []

    def test_raw_sql_is_clean(self):
        findings = _scan(
            HEADER,
            """
            def count(session):
                return session.execute("SELECT COUNT(*) FROM books").scalar()
            """
        )
        assert findings == []


class TestE2CrossCheck:
    """The detector and the E2 runtime measurements must agree."""

    def test_flags_exactly_the_lazy_traversal(self):
        findings = scan_python_file(E2_BENCH)
        assert [f.rule for f in findings] == [RULE_ID]
        # The one finding is inside traverse_lazy (the 1+N measurement);
        # traverse_eager (1 query) and raw_sql are clean.
        with open(E2_BENCH) as handle:
            lines = handle.read().splitlines()
        flagged = findings[0].line
        region = "\n".join(lines[max(0, flagged - 4) : flagged])
        assert "def traverse_lazy" in region

    def test_example_antipattern_is_suppressed_for_ci(self, capsys):
        # The deliberate N+1 in examples/ carries a lint: allow comment so
        # `python -m repro lint examples/` gates CI at zero findings.
        raw = scan_python_file(EXAMPLE)
        assert [f.rule for f in raw] == [RULE_ID]
        assert lint_main([os.path.join(REPO_ROOT, "examples")]) == 0
        capsys.readouterr()
