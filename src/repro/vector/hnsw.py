"""HNSW: hierarchical navigable small-world graph index.

The third point in the vector-index design space (after exact flat scan and
IVF partitioning): a multi-layer proximity graph searched greedily from the
top layer down, with beam search (``ef``) at the base layer.  Malkov &
Yashunin's construction, sized for this library:

* level of a new node ~ floor(-ln(U) * (1/ln(M)));
* at each level, connect to the ``M`` nearest candidates found by a beam
  search seeded from the entry point;
* queries descend with greedy 1-best steps until level 0, then run a
  beam of ``ef_search`` and return the best ``k``.

Deterministic for a given seed.  Recall grows with ``ef_search`` while cost
grows sub-linearly — the trade-off the tests check.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.errors import IndexError_
from repro.vector.metrics import METRICS, resolve_metric

DEFAULT_M = 8
DEFAULT_EF_CONSTRUCTION = 64
DEFAULT_EF_SEARCH = 32


class HNSWIndex:
    """Approximate nearest-neighbor search over a navigable small world."""

    def __init__(
        self,
        dim: int,
        metric: str = "l2",
        m: int = DEFAULT_M,
        ef_construction: int = DEFAULT_EF_CONSTRUCTION,
        ef_search: int = DEFAULT_EF_SEARCH,
        seed: int = 0,
    ):
        if dim < 1:
            raise IndexError_("vector dimension must be >= 1")
        if m < 2:
            raise IndexError_("M must be >= 2")
        self.dim = dim
        self.metric = resolve_metric(metric)
        self._distance = METRICS[self.metric]
        self.m = m
        self.max_m0 = 2 * m  # base layer gets a denser degree bound
        self.ef_construction = max(ef_construction, m)
        self.ef_search = ef_search
        self._rng = random.Random(seed)
        self._level_mult = 1.0 / math.log(m)
        self._vectors: Dict[Any, np.ndarray] = {}
        #: neighbors[level][key] -> list of keys
        self._neighbors: List[Dict[Any, List[Any]]] = []
        self._entry: Optional[Any] = None
        self._entry_level = -1

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, key: Any) -> bool:
        return key in self._vectors

    @property
    def levels(self) -> int:
        return len(self._neighbors)

    # -- construction ------------------------------------------------------

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_mult)

    def add(self, key: Any, vector: Sequence[float]) -> None:
        """Insert one vector."""
        if key in self._vectors:
            raise IndexError_(f"duplicate vector key {key!r}")
        vec = np.asarray(vector, dtype=np.float64)
        if vec.shape != (self.dim,):
            raise IndexError_(f"vector has shape {vec.shape}, expected ({self.dim},)")
        self._vectors[key] = vec
        level = self._random_level()
        while len(self._neighbors) <= level:
            self._neighbors.append({})
        for lvl in range(level + 1):
            self._neighbors[lvl].setdefault(key, [])
        if self._entry is None:
            self._entry = key
            self._entry_level = level
            return
        # Greedy descent from the global entry to level+1.
        current = self._entry
        for lvl in range(self._entry_level, level, -1):
            current = self._greedy_step(vec, current, lvl)
        # Beam search + connect at each level from min(level, entry) down.
        for lvl in range(min(level, self._entry_level), -1, -1):
            candidates = self._search_layer(vec, current, lvl, self.ef_construction)
            max_degree = self.max_m0 if lvl == 0 else self.m
            chosen = [key2 for __, key2 in candidates[: self.m]]
            self._neighbors[lvl][key] = chosen
            for neighbor in chosen:
                links = self._neighbors[lvl][neighbor]
                links.append(key)
                if len(links) > max_degree:
                    self._prune(neighbor, lvl, max_degree)
            current = candidates[0][1] if candidates else current
        if level > self._entry_level:
            self._entry = key
            self._entry_level = level

    def _prune(self, key: Any, level: int, max_degree: int) -> None:
        vec = self._vectors[key]
        links = self._neighbors[level][key]
        ranked = sorted(links, key=lambda other: self._distance(vec, self._vectors[other]))
        self._neighbors[level][key] = ranked[:max_degree]

    # -- search ------------------------------------------------------------------

    def _greedy_step(self, query: np.ndarray, start: Any, level: int) -> Any:
        current = start
        current_dist = self._distance(query, self._vectors[current])
        improved = True
        while improved:
            improved = False
            for neighbor in self._neighbors[level].get(current, ()):
                d = self._distance(query, self._vectors[neighbor])
                if d < current_dist:
                    current, current_dist = neighbor, d
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entry: Any, level: int, ef: int
    ) -> List[Tuple[float, Any]]:
        """Beam search within one layer; returns (distance, key) ascending."""
        entry_dist = self._distance(query, self._vectors[entry])
        visited: Set[Any] = {entry}
        # candidates: min-heap; results: max-heap via negated distance.
        candidates: List[Tuple[float, Any]] = [(entry_dist, entry)]
        results: List[Tuple[float, Any]] = [(-entry_dist, entry)]
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -results[0][0] and len(results) >= ef:
                break
            for neighbor in self._neighbors[level].get(node, ()):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                d = self._distance(query, self._vectors[neighbor])
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, neighbor))
                    heapq.heappush(results, (-d, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-d, key) for d, key in results)

    def search(
        self, query: Sequence[float], k: int = 10, ef_search: Optional[int] = None
    ) -> List[Tuple[Any, float]]:
        """Approximate top-k (key, distance), ascending by distance."""
        if k < 1:
            raise IndexError_("k must be >= 1")
        if self._entry is None:
            return []
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise IndexError_(f"query has shape {q.shape}, expected ({self.dim},)")
        ef = max(ef_search or self.ef_search, k)
        current = self._entry
        for lvl in range(self._entry_level, 0, -1):
            current = self._greedy_step(q, current, lvl)
        ranked = self._search_layer(q, current, 0, ef)
        return [(key, dist) for dist, key in ranked[:k]]

    # -- introspection (tests) ---------------------------------------------------

    def check_invariants(self) -> None:
        """Graph sanity: symmetric containment not required, but every link
        must point at a live node and degree bounds hold."""
        for lvl, layer in enumerate(self._neighbors):
            max_degree = self.max_m0 if lvl == 0 else self.m
            for key, links in layer.items():
                assert key in self._vectors
                assert len(links) <= max_degree + self.m, "degree blow-up"
                for neighbor in links:
                    assert neighbor in self._vectors, "dangling link"
                    assert neighbor != key, "self-link"
        if self._vectors:
            assert self._entry in self._vectors
