"""Morsel-driven parallel execution benchmark (≈30 s) → BENCH_parallel.json.

Measures the three exchange operators against the serial vectorized engine
on scan-heavy workloads shaped like TPC-H Q1/Q6:

* **filter_sum** (Q6-style) — tight filter over a wide numeric table,
  ``SUM(price * discount)`` on the survivors;
* **grouped_agg** (Q1-style) — low-cardinality GROUP BY with a fan of
  COUNT/SUM/AVG aggregates;
* **hash_join** — partitioned-build join probed by a parallel scan.

Each query runs serial (``workers=0``) and at ``workers`` ∈ {1, 2, 4}.
``workers=1`` executes morsel tasks inline on the caller, so its column
isolates the exchange machinery's overhead from actual parallelism.

Targets: ≥2× speedup at 4 workers on the aggregate queries (on a single-CPU
box this comes from the numpy morsel kernels replacing per-row accumulator
loops; with real cores, thread overlap stacks on top), and ≤10% overhead
at ``workers=1`` against serial.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_json import write_report  # noqa: E402
from repro.core.database import Database  # noqa: E402
from repro.optimizer.optimizer import OptimizerOptions  # noqa: E402

ROWS = 300_000
QUICK_ROWS = 50_000
ROUNDS = 3
WORKER_COUNTS = (1, 2, 4)

QUERIES = {
    "filter_sum": (
        "SELECT SUM(price * discount) FROM items "
        "WHERE discount >= 5 AND discount <= 7 AND qty < 24"
    ),
    "grouped_agg": (
        "SELECT flag, COUNT(*), SUM(qty), SUM(price), AVG(price), MAX(qty) "
        "FROM items GROUP BY flag"
    ),
    "hash_join": (
        "SELECT SUM(items.price) FROM items "
        "JOIN parts ON items.part_id = parts.id WHERE items.qty > 10"
    ),
}


def build_db(rows: int, workers: int) -> Database:
    db = Database(
        engine="vectorized",
        default_layout="column",
        optimizer_options=OptimizerOptions(workers=workers),
        verify_plans=False,
    )
    db.execute(
        "CREATE TABLE items (part_id INTEGER NOT NULL, flag INTEGER NOT NULL, "
        "qty INTEGER NOT NULL, price FLOAT NOT NULL, discount INTEGER NOT NULL)"
    )
    db.insert_rows(
        "items",
        [
            (
                i % (rows // 10),
                i % 4,
                i * 7 % 50,
                float((i * 31) % 10_000) / 100.0,
                i * 13 % 11,
            )
            for i in range(rows)
        ],
    )
    db.execute("CREATE TABLE parts (id INTEGER NOT NULL, weight FLOAT NOT NULL)")
    db.insert_rows(
        "parts", [(i, float(i % 100)) for i in range(rows // 10)]
    )
    db.execute("ANALYZE")
    return db


def best_of(db: Database, sql: str, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        db.execute(sql)
        best = min(best, time.perf_counter() - t0)
    return best * 1000.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer rows")
    args = parser.parse_args()
    rows = QUICK_ROWS if args.quick else ROWS
    started = time.time()

    serial_db = build_db(rows, workers=0)
    parallel_dbs = {w: build_db(rows, workers=w) for w in WORKER_COUNTS}

    report = {"rows": rows, "queries": {}, "speedup_at_4": {}, "overhead_at_1_pct": {}}
    baselines = {}
    for name, sql in QUERIES.items():
        serial_ms = best_of(serial_db, sql, ROUNDS)
        baselines[name] = serial_db.execute(sql).rows
        entry = {"serial_ms": round(serial_ms, 2), "workers": {}}
        for w, db in parallel_dbs.items():
            assert db.execute(sql).rows == baselines[name] or all(
                abs(a - b) < 1e-6 * max(abs(a), 1.0)
                for got, want in zip(db.execute(sql).rows, baselines[name])
                for a, b in zip(got, want)
            ), f"{name} at workers={w} diverged from serial"
            ms = best_of(db, sql, ROUNDS)
            entry["workers"][str(w)] = {
                "ms": round(ms, 2),
                "speedup": round(serial_ms / ms, 2),
            }
        report["queries"][name] = entry
        report["speedup_at_4"][name] = entry["workers"]["4"]["speedup"]
        report["overhead_at_1_pct"][name] = round(
            (entry["workers"]["1"]["ms"] / serial_ms - 1.0) * 100.0, 1
        )

    report["elapsed_s"] = round(time.time() - started, 1)
    out_path = write_report("parallel", report)

    agg_ok = all(
        report["speedup_at_4"][q] >= 2.0 for q in ("filter_sum", "grouped_agg")
    )
    overhead_ok = all(v <= 10.0 for v in report["overhead_at_1_pct"].values())
    for name, entry in report["queries"].items():
        per_w = ", ".join(
            f"{w}w {info['ms']:.1f} ms ({info['speedup']:.2f}x)"
            for w, info in entry["workers"].items()
        )
        print(f"{name:>12}: serial {entry['serial_ms']:.1f} ms | {per_w}")
    print(
        f"wrote {out_path}; targets (agg >=2x at 4 workers: "
        f"{'MET' if agg_ok else 'NOT MET'}; workers=1 overhead <=10%: "
        f"{'MET' if overhead_ok else 'NOT MET'})"
    )
    return 0 if (agg_ok and overhead_ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())
