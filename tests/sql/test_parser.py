"""Tests for the SQL parser (repro.sql.parser)."""

import pytest

from repro.core.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse, parse_expression


class TestSelect:
    def test_minimal(self):
        stmt = parse("SELECT 1")
        assert isinstance(stmt, ast.SelectStmt)
        assert stmt.items[0].expr == ast.Literal(1)
        assert stmt.from_item is None

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.from_item == ast.TableRef("t")

    def test_table_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expr == ast.Star(table="t")

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_item.alias == "u"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_where_group_having_order_limit(self):
        stmt = parse(
            "SELECT a, COUNT(*) FROM t WHERE b > 0 GROUP BY a "
            "HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 5 OFFSET 2"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT 2.5")

    def test_join_kinds(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y")
        outer = stmt.from_item
        assert isinstance(outer, ast.Join)
        assert outer.kind == "left"
        assert outer.left.kind == "inner"

    def test_comma_join_is_cross(self):
        stmt = parse("SELECT * FROM a, b")
        assert stmt.from_item.kind == "cross"
        assert stmt.from_item.condition is None

    def test_cross_join_keyword(self):
        assert parse("SELECT * FROM a CROSS JOIN b").from_item.kind == "cross"

    def test_inner_keyword_optional(self):
        a = parse("SELECT * FROM a JOIN b ON a.x = b.x")
        b = parse("SELECT * FROM a INNER JOIN b ON a.x = b.x")
        assert a == b

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM a JOIN b")


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == ast.BinaryOp("+", ast.Literal(1),
                                    ast.BinaryOp("*", ast.Literal(2), ast.Literal(3)))

    def test_precedence_bool(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not_precedence(self):
        expr = parse_expression("NOT a = 1 AND b = 2")
        assert expr.op == "AND"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_parenthesized(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_minus_folds_literals(self):
        assert parse_expression("-5") == ast.Literal(-5)
        assert parse_expression("-2.5") == ast.Literal(-2.5)

    def test_unary_minus_on_column(self):
        expr = parse_expression("-a")
        assert isinstance(expr, ast.UnaryOp)

    def test_neq_normalized(self):
        assert parse_expression("a <> 1") == parse_expression("a != 1")

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.BetweenExpr)
        assert not expr.negated

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 5").negated

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InExpr)
        assert len(expr.values) == 3

    def test_like(self):
        expr = parse_expression("name LIKE 'a%'")
        assert isinstance(expr, ast.LikeExpr)

    def test_is_null_variants(self):
        assert not parse_expression("a IS NULL").negated
        assert parse_expression("a IS NOT NULL").negated

    def test_case(self):
        expr = parse_expression("CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END")
        assert isinstance(expr, ast.CaseExpr)
        assert len(expr.whens) == 1
        assert expr.else_result == ast.Literal("neg")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_function_calls(self):
        expr = parse_expression("COALESCE(a, LOWER(b), 'x')")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "COALESCE"
        assert len(expr.args) == 3

    def test_count_star_and_distinct(self):
        star = parse_expression("COUNT(*)")
        assert star.args == (ast.Star(),)
        distinct = parse_expression("COUNT(DISTINCT a)")
        assert distinct.distinct

    def test_qualified_column(self):
        assert parse_expression("t.col") == ast.ColumnRef("col", table="t")

    def test_vector_literal(self):
        expr = parse_expression("[1.5, -2, 0]")
        assert expr == ast.Literal((1.5, -2.0, 0.0))

    def test_empty_vector(self):
        assert parse_expression("[]") == ast.Literal(())

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("NULL") == ast.Literal(None)

    def test_concat(self):
        assert parse_expression("a || b").op == "||"


class TestDML:
    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_no_columns(self):
        assert parse("INSERT INTO t VALUES (1)").columns == ()

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_update_requires_equals(self):
        with pytest.raises(ParseError):
            parse("UPDATE t SET a > 1")

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a IS NULL")
        assert stmt.table == "t"

    def test_delete_without_where(self):
        assert parse("DELETE FROM t").where is None


class TestDDLAndMisc:
    def test_create_table_types(self):
        stmt = parse(
            "CREATE TABLE t (id INTEGER NOT NULL, name TEXT, v VECTOR(3), ok BOOLEAN)"
        )
        assert stmt.columns[0].not_null
        assert stmt.columns[2].vector_width == 3

    def test_primary_key_implies_not_null(self):
        stmt = parse("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        assert stmt.columns[0].not_null

    def test_create_index(self):
        stmt = parse("CREATE UNIQUE INDEX i ON t (c) USING hash")
        assert stmt.unique
        assert stmt.using == "hash"

    def test_create_index_default_btree(self):
        assert parse("CREATE INDEX i ON t (c)").using == "btree"

    def test_drop_table(self):
        assert parse("DROP TABLE t").name == "t"

    def test_explain_wraps(self):
        stmt = parse("EXPLAIN SELECT 1")
        assert isinstance(stmt, ast.ExplainStmt)
        assert isinstance(stmt.statement, ast.SelectStmt)

    def test_txn_statements(self):
        assert isinstance(parse("BEGIN"), ast.BeginStmt)
        assert isinstance(parse("COMMIT"), ast.CommitStmt)
        assert isinstance(parse("ROLLBACK"), ast.RollbackStmt)

    def test_analyze(self):
        assert parse("ANALYZE").table is None
        assert parse("ANALYZE t").table == "t"

    def test_trailing_semicolon_ok(self):
        parse("SELECT 1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("SELECT 1 SELECT 2")


ROUND_TRIP_STATEMENTS = [
    "SELECT a, b AS x FROM t WHERE a > 1 ORDER BY a DESC LIMIT 10",
    "SELECT DISTINCT t.a, COUNT(*) AS cnt FROM t JOIN s ON t.id = s.id "
    "GROUP BY t.a HAVING COUNT(*) > 2",
    "SELECT * FROM a LEFT JOIN b ON a.x = b.x CROSS JOIN c",
    "INSERT INTO t (a) VALUES (1), (NULL)",
    "UPDATE t SET a = CASE WHEN a > 0 THEN 1 ELSE 0 END",
    "DELETE FROM t WHERE name NOT LIKE '%x%'",
    "SELECT VEC_DIST(v, [1.0, 2.0]) FROM d WHERE k IN (1, 2) OR k IS NULL",
    "CREATE TABLE t (a INTEGER NOT NULL, v VECTOR(8))",
    "EXPLAIN SELECT a FROM t WHERE a BETWEEN 1 AND 2",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_parse_print_parse_fixed_point(sql):
    first = parse(sql)
    printed = first.to_sql()
    second = parse(printed)
    assert first == second
    assert second.to_sql() == printed
