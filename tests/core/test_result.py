"""Tests for result sets (repro.core.result)."""

import pytest

from repro.core.errors import ExecutionError
from repro.core.result import Result


@pytest.fixture
def result():
    return Result(
        columns=["id", "name", "score"],
        rows=[(1, "alice", 9.5), (2, "bob", None)],
        rowcount=2,
    )


class TestAccessors:
    def test_len_and_iter(self, result):
        assert len(result) == 2
        assert list(result) == result.rows

    def test_first(self, result):
        assert result.first() == (1, "alice", 9.5)
        assert Result().first() is None

    def test_scalar(self):
        assert Result(columns=["x"], rows=[(42,)]).scalar() == 42

    def test_scalar_rejects_wrong_shape(self, result):
        with pytest.raises(ExecutionError):
            result.scalar()
        with pytest.raises(ExecutionError):
            Result(columns=["x"], rows=[]).scalar()

    def test_to_dicts(self, result):
        assert result.to_dicts()[0] == {"id": 1, "name": "alice", "score": 9.5}

    def test_column(self, result):
        assert result.column("name") == ["alice", "bob"]
        with pytest.raises(ExecutionError):
            result.column("ghost")


class TestPretty:
    def test_alignment_and_nulls(self, result):
        text = result.pretty()
        lines = text.splitlines()
        assert len(lines) == 4
        assert "NULL" in lines[3]
        assert lines[0].index("name") == lines[2].index("alice")

    def test_truncation_notice(self):
        big = Result(columns=["n"], rows=[(i,) for i in range(30)])
        text = big.pretty(max_rows=5)
        assert "(25 more rows)" in text

    def test_float_formatting(self):
        text = Result(columns=["f"], rows=[(1.23456789,), (2.0,)]).pretty()
        assert "1.2346" in text
        assert "2" in text

    def test_plan_text_short_circuit(self):
        assert Result(plan_text="THE PLAN").pretty() == "THE PLAN"
