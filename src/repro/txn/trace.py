"""Schedule recording for the transaction layer — the sanitizer's input.

A :class:`ScheduleRecorder` captures one totally-ordered log of transaction
events (begin / read / write / lock / unlock / commit / abort), each stamped
with a logical timestamp (``seq``).  The concurrency schemes in
:mod:`repro.txn.schemes` emit events from *inside* their latched sections,
so the sequence order matches the order in which effects actually landed in
the shared store — the property the serializability checker in
:mod:`repro.analyze.concurrency` relies on.

Recording is off by default and costs one attribute check per operation
when disabled.  Enable it per scheme (``make_scheme("2pl",
record_schedule=True)``), per database (``Database(record_schedule=True)``),
or globally with ``REPRO_SANITIZE=1`` in the environment.

Traces serialize to JSON-lines (one header line with the scheme name, then
one line per event) so ``python -m repro sanitize trace.jsonl`` can check a
schedule recorded by another process.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Tuple

#: Event kinds, in the vocabulary the checker understands.
BEGIN = "begin"
READ = "read"
WRITE = "write"
LOCK = "lock"
UNLOCK = "unlock"
COMMIT = "commit"
ABORT = "abort"

EVENT_OPS = (BEGIN, READ, WRITE, LOCK, UNLOCK, COMMIT, ABORT)

#: Current trace file format version.
TRACE_FORMAT = 1


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for suite-wide schedule recording."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


@dataclass(frozen=True)
class ScheduleEvent:
    """One transaction-layer event with a logical timestamp.

    ``seq`` is a recorder-local logical clock: strictly increasing, assigned
    under the recorder's own lock.  ``mode`` carries the lock mode ("S"/"X")
    for lock events and is ``None`` otherwise.
    """

    seq: int
    txn_id: int
    op: str
    key: Optional[Hashable] = None
    mode: Optional[str] = None

    def format(self) -> str:
        parts = [f"@{self.seq}", f"txn {self.txn_id}", self.op]
        if self.key is not None:
            parts.append(repr(self.key))
        if self.mode is not None:
            parts.append(f"[{self.mode}]")
        return " ".join(parts)


class ScheduleRecorder:
    """Thread-safe, append-only event log whose order *is* the clock.

    The hot path takes **no lock and draws no timestamp**: it appends one
    ``(txn_id, op, key, mode)`` tuple to a list.  ``list.append`` is atomic
    under the GIL (CPython's documented thread-safety), so the list's
    append order is a valid total order; a dedicated recorder lock or
    counter would be a fourth contended serialization point next to the
    schemes' own latches and blows the overhead budget
    (``benchmarks/bench_sanitize_overhead.py``).  Every ordering the
    checker relies on (effects landing in the shared store) happens inside
    a scheme latch, and appends made under one latch are ordered by that
    latch.  :meth:`events` materializes :class:`ScheduleEvent` objects
    lazily, assigning ``seq`` from the position in the buffer.

    ``buffer`` is deliberately public: the schemes' hottest operations
    inline the append — ``rec.buffer.append((txn_id, op, key, mode))`` —
    because even one Python-level call per event is measurable against a
    dict-backed store.  Everything else goes through :meth:`record`.
    """

    def __init__(self, scheme: str = "unknown"):
        self.scheme = scheme
        self.buffer: List[Tuple] = []  # (txn_id, op, key, mode)

    def record(
        self,
        txn_id: int,
        op: str,
        key: Optional[Hashable] = None,
        mode: Optional[str] = None,
    ) -> int:
        """Append one event; returns its (approximate) logical timestamp."""
        self.buffer.append((txn_id, op, key, mode))
        return len(self.buffer)

    def events(self) -> List[ScheduleEvent]:
        """Snapshot of the event log so far (safe to call while recording)."""
        return [
            ScheduleEvent(seq, *entry)
            for seq, entry in enumerate(self.buffer[:], start=1)
        ]

    def clear(self) -> None:
        # In place, so bound ``buffer.append`` references cached by the
        # schemes' hot paths survive a clear.
        del self.buffer[:]

    def __len__(self) -> int:
        return len(self.buffer)

    # -- persistence ---------------------------------------------------------

    def dump(self, path: str) -> int:
        """Write the trace as JSON-lines; returns the number of events.

        Keys must be JSON-representable; tuples round-trip as tuples (they
        are tagged), which covers the ``(table, rid)`` keys the Database
        recorder emits.
        """
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            header = {"format": TRACE_FORMAT, "scheme": self.scheme}
            handle.write(json.dumps(header) + "\n")
            for event in events:
                handle.write(
                    json.dumps(
                        {
                            "seq": event.seq,
                            "txn": event.txn_id,
                            "op": event.op,
                            "key": _encode_key(event.key),
                            "mode": event.mode,
                        }
                    )
                    + "\n"
                )
        return len(events)


def _encode_key(key: Any) -> Any:
    if isinstance(key, tuple):
        return {"__tuple__": [_encode_key(part) for part in key]}
    return key


def _decode_key(key: Any) -> Any:
    if isinstance(key, dict) and "__tuple__" in key:
        return tuple(_decode_key(part) for part in key["__tuple__"])
    return key


def load_trace(path: str) -> Tuple[str, List[ScheduleEvent]]:
    """Read a trace written by :meth:`ScheduleRecorder.dump`.

    Returns ``(scheme_name, events)``.  Raises ``ValueError`` on a malformed
    file so the CLI can report a usage error instead of a stack trace.
    """
    events: List[ScheduleEvent] = []
    scheme = "unknown"
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if lineno == 1 and "format" in payload:
                scheme = payload.get("scheme", "unknown")
                continue
            try:
                op = payload["op"]
                if op not in EVENT_OPS:
                    raise ValueError(f"{path}:{lineno}: unknown op {op!r}")
                events.append(
                    ScheduleEvent(
                        seq=int(payload["seq"]),
                        txn_id=int(payload["txn"]),
                        op=op,
                        key=_decode_key(payload.get("key")),
                        mode=payload.get("mode"),
                    )
                )
            except (KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed event: {exc}") from exc
    return scheme, events
