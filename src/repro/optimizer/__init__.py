"""Cost-based optimizer: rewrites, cardinality estimation, join ordering,
and physical planning."""

from repro.optimizer.cardinality import Estimator
from repro.optimizer.cost import CostModel
from repro.optimizer.optimizer import Optimizer, OptimizerOptions

__all__ = ["Estimator", "CostModel", "Optimizer", "OptimizerOptions"]
