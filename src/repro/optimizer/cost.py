"""Cost model for physical alternatives.

Coefficients follow PostgreSQL's naming (seq_page_cost = 1.0 baseline).
Costs are unitless "page fetch equivalents"; the planner only compares
alternatives, so relative magnitudes are what matter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class CostModel:
    """Tunable coefficients for the physical planner."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_operator_cost: float = 0.0025
    index_lookup_cost: float = 0.3
    hash_build_cost: float = 0.015  # per build-side tuple
    hash_probe_cost: float = 0.01  # per probe-side tuple

    def seq_scan(self, pages: float, rows: float) -> float:
        return pages * self.seq_page_cost + rows * self.cpu_tuple_cost

    def index_scan(self, matching_rows: float, tree_height: float = 3.0) -> float:
        return (
            tree_height * self.index_lookup_cost
            + matching_rows * (self.random_page_cost * 0.25 + self.cpu_tuple_cost)
        )

    def filter(self, rows: float, conjuncts: int = 1) -> float:
        return rows * self.cpu_operator_cost * max(conjuncts, 1)

    def project(self, rows: float, exprs: int = 1) -> float:
        return rows * self.cpu_operator_cost * max(exprs, 1)

    def nested_loop_join(self, outer_rows: float, inner_rows: float) -> float:
        return outer_rows * inner_rows * self.cpu_operator_cost

    def hash_join(self, build_rows: float, probe_rows: float) -> float:
        return build_rows * self.hash_build_cost + probe_rows * self.hash_probe_cost

    def sort(self, rows: float) -> float:
        if rows <= 1:
            return self.cpu_operator_cost
        return rows * math.log2(rows) * self.cpu_operator_cost * 2.0

    def aggregate(self, rows: float, groups: float) -> float:
        return rows * self.cpu_operator_cost * 2.0 + groups * self.cpu_tuple_cost
