"""Write-ahead logging.

Log records capture logical row operations (insert/delete/update) with
before/after images, plus transaction lifecycle markers.  The log assigns
monotonically increasing LSNs and supports binary serialization to a file so
recovery can be exercised across a simulated crash.
"""

from __future__ import annotations

import enum
import os
import struct
import threading
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.errors import WALError
from repro.core.types import Row
from repro.storage.rowcodec import decode_values, encode_values


class LogRecordType(enum.Enum):
    BEGIN = 1
    COMMIT = 2
    ABORT = 3
    INSERT = 4
    DELETE = 5
    UPDATE = 6
    CHECKPOINT = 7


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry.

    ``rid`` is a (page_id, slot) pair for row operations.  ``before`` /
    ``after`` are full row images (logical logging).
    """

    lsn: int
    txn_id: int
    type: LogRecordType
    table: str = ""
    rid: Optional[Tuple[int, int]] = None
    before: Optional[Row] = None
    after: Optional[Row] = None


_HEADER = struct.Struct(">IQQB")  # body_len, lsn, txn_id, type


def _encode_optional_row(row: Optional[Row]) -> bytes:
    if row is None:
        return struct.pack(">H", 0xFFFF)
    if len(row) >= 0xFFFF:
        raise WALError("row too wide for WAL encoding")
    return struct.pack(">H", len(row)) + encode_values(row)


def _decode_optional_row(data: bytes, offset: int) -> Tuple[Optional[Row], int]:
    (n,) = struct.unpack_from(">H", data, offset)
    offset += 2
    if n == 0xFFFF:
        return None, offset
    row, offset = decode_values(data, n, offset)
    return row, offset


def encode_record(record: LogRecord) -> bytes:
    """Serialize a record (length-prefixed, self-delimiting)."""
    table_bytes = record.table.encode("utf-8")
    body = struct.pack(">H", len(table_bytes)) + table_bytes
    if record.rid is None:
        body += b"\x00"
    else:
        body += b"\x01" + struct.pack(">QH", record.rid[0], record.rid[1])
    body += _encode_optional_row(record.before)
    body += _encode_optional_row(record.after)
    return _HEADER.pack(len(body), record.lsn, record.txn_id, record.type.value) + body


def decode_records(data: bytes) -> List[LogRecord]:
    """Parse a byte stream of serialized records; tolerates a torn tail."""
    records: List[LogRecord] = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        body_len, lsn, txn_id, type_val = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        if offset + body_len > len(data):
            break  # torn write at crash: discard the incomplete tail record
        body_end = offset + body_len
        (table_len,) = struct.unpack_from(">H", data, offset)
        offset += 2
        table = data[offset : offset + table_len].decode("utf-8")
        offset += table_len
        has_rid = data[offset]
        offset += 1
        rid: Optional[Tuple[int, int]] = None
        if has_rid:
            page_id, slot = struct.unpack_from(">QH", data, offset)
            offset += 10
            rid = (page_id, slot)
        before, offset = _decode_optional_row(data, offset)
        after, offset = _decode_optional_row(data, offset)
        if offset != body_end:
            raise WALError(f"corrupt WAL record at lsn {lsn}")
        records.append(
            LogRecord(lsn, txn_id, LogRecordType(type_val), table, rid, before, after)
        )
    return records


class WriteAheadLog:
    """Append-only log with optional file persistence.

    ``flush`` makes everything up to the current LSN durable; ``records``
    iterates the in-memory tail (tests) while :func:`read_log_file` reads a
    persisted log back (recovery).
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._records: List[LogRecord] = []
        self._next_lsn = 1
        self._flushed_lsn = 0
        self._lock = threading.Lock()
        self._file = open(path, "ab") if path else None

    def append(
        self,
        txn_id: int,
        type: LogRecordType,
        table: str = "",
        rid: Optional[Tuple[int, int]] = None,
        before: Optional[Row] = None,
        after: Optional[Row] = None,
    ) -> int:
        """Append a record; returns its LSN.  Does not flush."""
        with self._lock:
            record = LogRecord(self._next_lsn, txn_id, type, table, rid, before, after)
            self._next_lsn += 1
            self._records.append(record)
            if self._file is not None:
                self._file.write(encode_record(record))
            return record.lsn

    def flush(self) -> int:
        """Make all appended records durable; returns the flushed LSN."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                os.fsync(self._file.fileno())
            self._flushed_lsn = self._next_lsn - 1
            return self._flushed_lsn

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def records(self) -> List[LogRecord]:
        with self._lock:
            return list(self._records)

    def records_for(self, txn_id: int) -> List[LogRecord]:
        with self._lock:
            return [r for r in self._records if r.txn_id == txn_id]

    def truncate(self) -> None:
        """Drop in-memory records (post-checkpoint housekeeping)."""
        with self._lock:
            self._records.clear()

    def close(self) -> None:
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()
                self._file.close()

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records())


def read_log_file(path: str) -> List[LogRecord]:
    """Read every intact record from a persisted WAL file."""
    with open(path, "rb") as f:
        return decode_records(f.read())
