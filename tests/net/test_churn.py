"""Nightly 10k-connection churn smoke test (``REPRO_NIGHTLY=1``).

The mass-connection tier in BENCH_server.json proves 10k *simultaneous*
sessions; this test proves 10k sessions of *churn* — connections opened,
queried, and closed in fast waves — leaks nothing.  The contract:

* zero protocol errors and zero admission refusals in the server stats;
* every query answered correctly (no dropped or cross-wired responses);
* bounded memory: process RSS growth over the whole churn stays under a
  fixed budget, so per-session state really is reclaimed.

Skipped unless ``REPRO_NIGHTLY=1`` — ~10k TCP handshakes is nightly-tier
wall time, not per-push.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.net import ServerThread, aconnect

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_NIGHTLY"),
    reason="10k-connection churn runs nightly (REPRO_NIGHTLY=1)",
)

TOTAL_CONNECTIONS = 10_000
WAVE = 250  # concurrent connections per wave
RSS_BUDGET_MB = 200


def _rss_mb() -> float:
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    raise RuntimeError("VmRSS not found in /proc/self/status")


def test_10k_connection_churn_is_clean_and_bounded():
    with ServerThread(max_connections=WAVE + 16, max_inflight=8) as srv:
        srv.db.execute("CREATE TABLE churn (id INTEGER, val INTEGER)")
        for i in range(100):
            srv.db.execute(f"INSERT INTO churn VALUES ({i}, {i * 10})")
        srv.db.execute("CREATE INDEX churn_id ON churn (id)")
        srv.db.execute("ANALYZE")

        async def one(client_id: int) -> None:
            conn = await aconnect(port=srv.port, user=f"churn{client_id}")
            try:
                key = client_id % 100
                rows = (
                    await conn.execute("SELECT val FROM churn WHERE id = ?", (key,))
                ).rows
                assert rows == [(key * 10,)], f"client {client_id} got {rows}"
            finally:
                await conn.close()

        async def wave(base: int) -> None:
            await asyncio.gather(*(one(base + i) for i in range(WAVE)))

        async def churn() -> None:
            for base in range(0, TOTAL_CONNECTIONS, WAVE):
                await wave(base)

        # One warm-up wave first so allocator high-water marks, executor
        # thread stacks, and codec caches don't count as "leaks".
        asyncio.run(wave(0))
        rss_before = _rss_mb()
        asyncio.run(churn())
        rss_after = _rss_mb()

    stats = srv.server.stats
    assert stats["protocol_errors"] == 0, stats
    assert stats["refused"] == 0, stats
    assert stats["connections"] >= TOTAL_CONNECTIONS, stats
    growth = rss_after - rss_before
    assert growth < RSS_BUDGET_MB, (
        f"RSS grew {growth:.1f} MB over {TOTAL_CONNECTIONS} churned "
        f"connections (budget {RSS_BUDGET_MB} MB): {stats}"
    )
