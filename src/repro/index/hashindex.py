"""Extendible-hashing index for point lookups.

A directory of bucket pointers doubles when a bucket overflows past its
local depth, which keeps lookups O(1) without ever rehashing everything at
once — the classic dynamic hashing scheme.  Values are lists per key, like
the B+tree, so the two are interchangeable for equality predicates.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.core.errors import IndexError_

_BUCKET_CAPACITY = 8


class _Bucket:
    __slots__ = ("local_depth", "entries")

    def __init__(self, local_depth: int):
        self.local_depth = local_depth
        self.entries: Dict[Any, List[Any]] = {}

    def key_count(self) -> int:
        return len(self.entries)


class HashIndex:
    """Extendible hash index mapping keys to lists of values."""

    def __init__(self, unique: bool = False, bucket_capacity: int = _BUCKET_CAPACITY):
        if bucket_capacity < 1:
            raise IndexError_("bucket capacity must be >= 1")
        self.unique = unique
        self.bucket_capacity = bucket_capacity
        self._global_depth = 1
        bucket0, bucket1 = _Bucket(1), _Bucket(1)
        self._directory: List[_Bucket] = [bucket0, bucket1]
        self._size = 0

    # -- helpers ------------------------------------------------------------

    def _slot(self, key: Any) -> int:
        return hash(key) & ((1 << self._global_depth) - 1)

    def _bucket_for(self, key: Any) -> _Bucket:
        return self._directory[self._slot(key)]

    @property
    def global_depth(self) -> int:
        return self._global_depth

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return key in self._bucket_for(key).entries

    # -- operations ------------------------------------------------------------

    def search(self, key: Any) -> List[Any]:
        """All values stored under ``key`` (empty list if absent)."""
        return list(self._bucket_for(key).entries.get(key, []))

    def insert(self, key: Any, value: Any) -> None:
        bucket = self._bucket_for(key)
        if key in bucket.entries:
            if self.unique:
                raise IndexError_(f"duplicate key {key!r} in unique index")
            bucket.entries[key].append(value)
            self._size += 1
            return
        if bucket.key_count() >= self.bucket_capacity:
            self._split(bucket)
            self.insert(key, value)
            return
        bucket.entries[key] = [value]
        self._size += 1

    def delete(self, key: Any, value: Any = None) -> int:
        """Delete a pair (or all values of a key); returns pairs removed."""
        bucket = self._bucket_for(key)
        if key not in bucket.entries:
            raise IndexError_(f"key {key!r} not in index")
        values = bucket.entries[key]
        if value is not None:
            if value not in values:
                raise IndexError_(f"pair ({key!r}, {value!r}) not in index")
            values.remove(value)
            self._size -= 1
            if not values:
                del bucket.entries[key]
            return 1
        removed = len(values)
        del bucket.entries[key]
        self._size -= removed
        return removed

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, value) pairs, in no particular order."""
        seen = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            for key, values in bucket.entries.items():
                for v in values:
                    yield key, v

    def keys(self) -> Iterator[Any]:
        seen = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            yield from bucket.entries

    # -- splitting ----------------------------------------------------------------

    def _split(self, bucket: _Bucket) -> None:
        if bucket.local_depth == self._global_depth:
            # Double the directory.
            self._directory = self._directory + list(self._directory)
            self._global_depth += 1
        new_depth = bucket.local_depth + 1
        bit = 1 << bucket.local_depth
        zero = _Bucket(new_depth)
        one = _Bucket(new_depth)
        for key, values in bucket.entries.items():
            target = one if hash(key) & bit else zero
            target.entries[key] = values
        for slot in range(len(self._directory)):
            if self._directory[slot] is bucket:
                self._directory[slot] = one if slot & bit else zero

    def check_invariants(self) -> None:
        """Assert directory/bucket consistency (used by property tests)."""
        assert len(self._directory) == 1 << self._global_depth
        seen = {}
        for slot, bucket in enumerate(self._directory):
            assert bucket.local_depth <= self._global_depth
            mask = (1 << bucket.local_depth) - 1
            seen.setdefault(id(bucket), slot)
            # Every slot pointing at this bucket agrees on the low bits.
            assert (slot & mask) == (seen[id(bucket)] & mask)
            for key in bucket.entries:
                assert (hash(key) & mask) == (slot & mask), "key in wrong bucket"
        total = 0
        counted = set()
        for bucket in self._directory:
            if id(bucket) in counted:
                continue
            counted.add(id(bucket))
            total += sum(len(v) for v in bucket.entries.values())
        assert total == self._size
