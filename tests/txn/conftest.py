"""Run the txn suite with schedule recording on.

An autouse fixture turns on ``REPRO_SANITIZE`` for every test in this
directory (and only this directory — ``monkeypatch`` restores the
environment afterwards), so the transaction tests double as sanitizer
exercises: the recorder's locking and event paths run under the same
stress workloads that hammer the schemes themselves.  An explicit
``REPRO_SANITIZE`` from the caller's environment still wins.
"""

import os

import pytest


@pytest.fixture(autouse=True)
def _sanitize_txn_tests(monkeypatch):
    if "REPRO_SANITIZE" not in os.environ:
        monkeypatch.setenv("REPRO_SANITIZE", "1")
