"""Recursive-descent SQL parser.

Grammar (informal)::

    statement   := select | insert | update | delete | create_table
                 | create_index | drop_table | explain | analyze
                 | begin | commit | rollback
    select      := SELECT [DISTINCT] items [FROM from] [WHERE expr]
                   [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
                   [LIMIT n] [OFFSET n]
    from        := table_ref (join_clause)*   with ',' as CROSS JOIN
    expr        := standard precedence: OR < AND < NOT < comparison
                   < additive < multiplicative < unary < primary

Operator keywords LIKE / IN / BETWEEN / IS NULL parse at comparison level.
Vector literals are bracketed float lists: ``[0.1, 0.2]``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0  # `?` placeholders seen, in statement order

    # -- token plumbing ---------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def expect_keyword(self, *names: str) -> Token:
        token = self.peek()
        if not token.is_keyword(*names):
            raise ParseError(
                f"expected {' or '.join(names)}, found {token.value!r}", token.position
            )
        return self.advance()

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def expect_punct(self, ch: str) -> Token:
        token = self.peek()
        if token.type is not TokenType.PUNCT or token.value != ch:
            raise ParseError(f"expected {ch!r}, found {token.value!r}", token.position)
        return self.advance()

    def accept_punct(self, ch: str) -> bool:
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value == ch:
            self.advance()
            return True
        return False

    def accept_operator(self, *ops: str) -> Optional[str]:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            self.advance()
            return token.value
        return None

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type is TokenType.IDENT:
            self.advance()
            return token.value
        # Allow non-reserved-ish keywords as identifiers where unambiguous.
        if token.type is TokenType.KEYWORD and token.value in ("KEY", "VECTOR", "COUNT"):
            self.advance()
            return token.value.lower()
        raise ParseError(f"expected identifier, found {token.value!r}", token.position)

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.is_keyword("SELECT"):
            return self.parse_compound_select()
        if token.is_keyword("INSERT"):
            return self.parse_insert()
        if token.is_keyword("UPDATE"):
            return self.parse_update()
        if token.is_keyword("DELETE"):
            return self.parse_delete()
        if token.is_keyword("CREATE"):
            return self.parse_create()
        if token.is_keyword("DROP"):
            return self.parse_drop()
        if token.is_keyword("EXPLAIN"):
            self.advance()
            return ast.ExplainStmt(self.parse_statement())
        if token.is_keyword("ANALYZE"):
            self.advance()
            table = None
            if self.peek().type is TokenType.IDENT:
                table = self.expect_ident()
            return ast.AnalyzeStmt(table)
        if token.is_keyword("BEGIN"):
            self.advance()
            return ast.BeginStmt()
        if token.is_keyword("COMMIT"):
            self.advance()
            return ast.CommitStmt()
        if token.is_keyword("ROLLBACK"):
            self.advance()
            return ast.RollbackStmt()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def parse_compound_select(self) -> ast.Statement:
        """SELECT possibly chained with UNION [ALL] / INTERSECT / EXCEPT.

        A trailing ORDER BY / LIMIT binds to the whole compound (it is parsed
        into the rightmost SELECT and lifted out here); operand selects may
        not carry their own ordering.
        """
        statement: ast.Statement = self.parse_select()
        while self.peek().is_keyword("UNION", "INTERSECT", "EXCEPT"):
            keyword = self.advance().value
            is_all = False
            if keyword == "UNION" and self.accept_keyword("ALL"):
                is_all = True
            if isinstance(statement, ast.SelectStmt) and (
                statement.order_by or statement.limit is not None
            ):
                raise ParseError(
                    "ORDER BY/LIMIT on a set-operation operand: parenthesize "
                    "or move it to the end of the compound query",
                    self.peek().position,
                )
            if isinstance(statement, ast.SetOpStmt) and (
                statement.order_by or statement.limit is not None
            ):
                raise ParseError(
                    "ORDER BY/LIMIT must come after the last set operation",
                    self.peek().position,
                )
            right = self.parse_select()
            # Lift the rightmost select's ordering onto the compound.
            order_by, limit, offset = right.order_by, right.limit, right.offset
            if order_by or limit is not None or offset is not None:
                right = ast.SelectStmt(
                    items=right.items,
                    from_item=right.from_item,
                    where=right.where,
                    group_by=right.group_by,
                    having=right.having,
                    distinct=right.distinct,
                )
            statement = ast.SetOpStmt(
                left=statement,
                op=keyword.lower(),
                all=is_all,
                right=right,
                order_by=order_by,
                limit=limit,
                offset=offset,
            )
        return statement

    def parse_select(self) -> ast.SelectStmt:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        from_item = None
        if self.accept_keyword("FROM"):
            from_item = self.parse_from()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: Tuple[ast.Expr, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            exprs = [self.parse_expr()]
            while self.accept_punct(","):
                exprs.append(self.parse_expr())
            group_by = tuple(exprs)
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        order_by: Tuple[ast.OrderItem, ...] = ()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            orders = [self.parse_order_item()]
            while self.accept_punct(","):
                orders.append(self.parse_order_item())
            order_by = tuple(orders)
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self._expect_int()
        if self.accept_keyword("OFFSET"):
            offset = self._expect_int()
        return ast.SelectStmt(
            items=tuple(items),
            from_item=from_item,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _expect_int(self) -> int:
        token = self.peek()
        if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
            raise ParseError("expected integer literal", token.position)
        self.advance()
        return token.value

    def parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self.advance()
            return ast.SelectItem(ast.Star())
        # t.* form
        if (
            token.type is TokenType.IDENT
            and self.peek(1).type is TokenType.PUNCT
            and self.peek(1).value == "."
            and self.peek(2).type is TokenType.OPERATOR
            and self.peek(2).value == "*"
        ):
            table = self.expect_ident()
            self.expect_punct(".")
            self.advance()  # '*'
            return ast.SelectItem(ast.Star(table=table))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    def parse_from(self) -> ast.FromItem:
        item: ast.FromItem = self.parse_table_ref()
        while True:
            if self.accept_punct(","):
                right = self.parse_table_ref()
                item = ast.Join(item, right, "cross")
                continue
            token = self.peek()
            if token.is_keyword("JOIN", "INNER"):
                if token.is_keyword("INNER"):
                    self.advance()
                self.expect_keyword("JOIN")
                right = self.parse_table_ref()
                self.expect_keyword("ON")
                cond = self.parse_expr()
                item = ast.Join(item, right, "inner", cond)
                continue
            if token.is_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                right = self.parse_table_ref()
                self.expect_keyword("ON")
                cond = self.parse_expr()
                item = ast.Join(item, right, "left", cond)
                continue
            if token.is_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                right = self.parse_table_ref()
                item = ast.Join(item, right, "cross")
                continue
            return item

    def parse_table_ref(self) -> ast.TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.expect_ident()
        return ast.TableRef(name, alias)

    def parse_insert(self) -> ast.InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: Tuple[str, ...] = ()
        if self.accept_punct("("):
            cols = [self.expect_ident()]
            while self.accept_punct(","):
                cols.append(self.expect_ident())
            self.expect_punct(")")
            columns = tuple(cols)
        self.expect_keyword("VALUES")
        rows = [self.parse_value_row()]
        while self.accept_punct(","):
            rows.append(self.parse_value_row())
        return ast.InsertStmt(table, columns, tuple(rows))

    def parse_value_row(self) -> Tuple[ast.Expr, ...]:
        self.expect_punct("(")
        values = [self.parse_expr()]
        while self.accept_punct(","):
            values.append(self.parse_expr())
        self.expect_punct(")")
        return tuple(values)

    def parse_update(self) -> ast.UpdateStmt:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments: List[Tuple[str, ast.Expr]] = []
        while True:
            col = self.expect_ident()
            op = self.accept_operator("=")
            if op is None:
                raise ParseError("expected '=' in SET clause", self.peek().position)
            assignments.append((col, self.parse_expr()))
            if not self.accept_punct(","):
                break
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.UpdateStmt(table, tuple(assignments), where)

    def parse_delete(self) -> ast.DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.DeleteStmt(table, where)

    def parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        unique = bool(self.accept_keyword("UNIQUE"))
        if self.accept_keyword("TABLE"):
            if unique:
                raise ParseError("UNIQUE applies to indexes, not tables", self.peek().position)
            return self.parse_create_table()
        if self.accept_keyword("INDEX"):
            return self.parse_create_index(unique)
        raise ParseError("expected TABLE or INDEX after CREATE", self.peek().position)

    def parse_create_table(self) -> ast.CreateTableStmt:
        name = self.expect_ident()
        self.expect_punct("(")
        columns = [self.parse_column_def()]
        while self.accept_punct(","):
            columns.append(self.parse_column_def())
        self.expect_punct(")")
        return ast.CreateTableStmt(name, tuple(columns))

    def parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        token = self.peek()
        if token.type is TokenType.IDENT or token.is_keyword("VECTOR"):
            type_name = token.value if isinstance(token.value, str) else str(token.value)
            self.advance()
        else:
            raise ParseError(f"expected type name, found {token.value!r}", token.position)
        vector_width = 0
        if self.accept_punct("("):
            vector_width = self._expect_int()
            self.expect_punct(")")
        not_null = False
        if self.accept_keyword("NOT"):
            self.expect_keyword("NULL")
            not_null = True
        if self.accept_keyword("PRIMARY"):
            self.expect_keyword("KEY")
            not_null = True  # PRIMARY KEY implies NOT NULL; uniqueness via index
        return ast.ColumnDef(name, type_name.upper(), not_null, vector_width)

    def parse_create_index(self, unique: bool) -> ast.CreateIndexStmt:
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_punct("(")
        column = self.expect_ident()
        self.expect_punct(")")
        using = "btree"
        if self.accept_keyword("USING"):
            using = self.expect_ident().lower()
        return ast.CreateIndexStmt(name, table, column, unique, using)

    def parse_drop(self) -> ast.DropTableStmt:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        return ast.DropTableStmt(self.expect_ident())

    # -- expressions --------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        op = self.accept_operator("=", "!=", "<>", "<", "<=", ">", ">=")
        if op is not None:
            if op == "<>":
                op = "!="
            return ast.BinaryOp(op, left, self.parse_additive())
        negated = False
        if self.peek().is_keyword("NOT") and self.peek(1).is_keyword("LIKE", "IN", "BETWEEN"):
            self.advance()
            negated = True
        if self.accept_keyword("LIKE"):
            return ast.LikeExpr(left, self.parse_additive(), negated)
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            if self.peek().is_keyword("SELECT"):
                subquery = ast.Subquery(self.parse_compound_select())
                self.expect_punct(")")
                return ast.InExpr(left, (subquery,), negated)
            values = [self.parse_expr()]
            while self.accept_punct(","):
                values.append(self.parse_expr())
            self.expect_punct(")")
            return ast.InExpr(left, tuple(values), negated)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.BetweenExpr(left, low, high, negated)
        if self.accept_keyword("IS"):
            is_negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNullExpr(left, is_negated)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            op = self.accept_operator("+", "-", "||")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self.parse_multiplicative())

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self.parse_unary())

    def parse_unary(self) -> ast.Expr:
        if self.accept_operator("-"):
            operand = self.parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.accept_operator("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            if not self.peek().is_keyword("SELECT"):
                raise ParseError("EXISTS requires a subquery", self.peek().position)
            subquery = ast.Subquery(self.parse_compound_select())
            self.expect_punct(")")
            return ast.ExistsExpr(subquery)
        if token.type is TokenType.PUNCT and token.value == "?":
            self.advance()
            param = ast.Parameter(self.param_count)
            self.param_count += 1
            return param
        if token.type is TokenType.PUNCT and token.value == "[":
            return self.parse_vector_literal()
        if token.type is TokenType.PUNCT and token.value == "(":
            self.advance()
            if self.peek().is_keyword("SELECT"):
                subquery = ast.Subquery(self.parse_compound_select())
                self.expect_punct(")")
                return subquery
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.is_keyword("COUNT") or token.type is TokenType.IDENT:
            return self.parse_name_or_call()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def parse_case(self) -> ast.CaseExpr:
        self.expect_keyword("CASE")
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((cond, result))
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self.peek().position)
        else_result = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return ast.CaseExpr(tuple(whens), else_result)

    def parse_vector_literal(self) -> ast.Literal:
        self.expect_punct("[")
        values: List[float] = []
        if not self.accept_punct("]"):
            while True:
                negative = bool(self.accept_operator("-"))
                token = self.peek()
                if token.type is not TokenType.NUMBER:
                    raise ParseError("expected number in vector literal", token.position)
                self.advance()
                values.append(-float(token.value) if negative else float(token.value))
                if self.accept_punct("]"):
                    break
                self.expect_punct(",")
        return ast.Literal(tuple(values))

    def parse_name_or_call(self) -> ast.Expr:
        token = self.advance()
        name = token.value if isinstance(token.value, str) else str(token.value)
        if self.peek().type is TokenType.PUNCT and self.peek().value == "(":
            self.advance()
            distinct = bool(self.accept_keyword("DISTINCT"))
            args: List[ast.Expr] = []
            star = self.peek()
            if star.type is TokenType.OPERATOR and star.value == "*":
                self.advance()
                args.append(ast.Star())
            elif not (self.peek().type is TokenType.PUNCT and self.peek().value == ")"):
                args.append(self.parse_expr())
                while self.accept_punct(","):
                    args.append(self.parse_expr())
            self.expect_punct(")")
            return ast.FuncCall(name.upper(), tuple(args), distinct)
        if self.accept_punct("."):
            column = self.expect_ident()
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement (a trailing semicolon is allowed)."""
    parser = _Parser(sql)
    statement = parser.parse_statement()
    parser.accept_punct(";")
    tail = parser.peek()
    if tail.type is not TokenType.EOF:
        raise ParseError(f"unexpected trailing input: {tail.value!r}", tail.position)
    return statement


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone scalar expression (used by tests and tools)."""
    parser = _Parser(sql)
    expr = parser.parse_expr()
    tail = parser.peek()
    if tail.type is not TokenType.EOF:
        raise ParseError(f"unexpected trailing input: {tail.value!r}", tail.position)
    return expr
