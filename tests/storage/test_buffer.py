"""Tests for the buffer pool (repro.storage.buffer)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.page import PAGE_SIZE
from repro.storage.replacement import MRUPolicy, make_policy


def make_pool(capacity=3, policy="lru"):
    return BufferPool(InMemoryDiskManager(), capacity=capacity, policy=make_policy(policy))


class TestBasics:
    def test_new_page_is_pinned_and_dirty(self):
        pool = make_pool()
        page = pool.new_page()
        assert page.pin_count == 1
        assert page.dirty

    def test_fetch_after_unpin_hits_cache(self):
        pool = make_pool()
        page = pool.new_page()
        pool.unpin(page.page_id)
        again = pool.fetch_page(page.page_id)
        assert again is page
        assert pool.stats.hits == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(BufferPoolError):
            BufferPool(InMemoryDiskManager(), capacity=0)

    def test_unpin_unknown_page(self):
        with pytest.raises(BufferPoolError, match="not in pool"):
            make_pool().unpin(99)

    def test_double_unpin_rejected(self):
        pool = make_pool()
        page = pool.new_page()
        pool.unpin(page.page_id)
        with pytest.raises(BufferPoolError, match="unpinned"):
            pool.unpin(page.page_id)


class TestEviction:
    def test_eviction_happens_at_capacity(self):
        pool = make_pool(capacity=2)
        a = pool.new_page()
        b = pool.new_page()
        pool.unpin(a.page_id)
        pool.unpin(b.page_id)
        pool.new_page()  # evicts a (LRU)
        assert pool.stats.evictions == 1
        assert not pool.contains(a.page_id)
        assert pool.contains(b.page_id)

    def test_pinned_pages_never_evicted(self):
        pool = make_pool(capacity=2)
        a = pool.new_page()  # stays pinned
        b = pool.new_page()
        pool.unpin(b.page_id)
        pool.new_page()  # must evict b, not a
        assert pool.contains(a.page_id)
        assert not pool.contains(b.page_id)

    def test_all_pinned_raises(self):
        pool = make_pool(capacity=2)
        pool.new_page()
        pool.new_page()
        with pytest.raises(BufferPoolError, match="pinned"):
            pool.new_page()

    def test_dirty_eviction_writes_back(self):
        pool = make_pool(capacity=1)
        page = pool.new_page()
        page.data[100:103] = b"abc"
        pool.unpin(page.page_id, dirty=True)
        second = pool.new_page()  # evicts and writes back
        pool.unpin(second.page_id)
        assert pool.stats.dirty_writebacks == 1
        refetched = pool.fetch_page(page.page_id)  # evicts the second page
        assert bytes(refetched.data[100:103]) == b"abc"

    def test_mru_policy_changes_victim(self):
        pool = BufferPool(InMemoryDiskManager(), capacity=2, policy=MRUPolicy())
        a = pool.new_page()
        b = pool.new_page()
        pool.unpin(a.page_id)
        pool.unpin(b.page_id)
        pool.new_page()
        assert pool.contains(a.page_id)  # MRU evicted b
        assert not pool.contains(b.page_id)


class TestFlush:
    def test_flush_all_clears_dirty(self):
        pool = make_pool()
        pages = [pool.new_page() for _ in range(3)]
        for page in pages:
            pool.unpin(page.page_id, dirty=True)
        pool.flush_all()
        assert pool.stats.dirty_writebacks == 3
        assert pool.disk.writes == 3

    def test_flush_page_noop_when_clean(self):
        pool = make_pool()
        page = pool.new_page()
        pool.unpin(page.page_id)
        pool.flush_page(page.page_id)
        pool.flush_page(page.page_id)
        assert pool.stats.dirty_writebacks == 1

    def test_durability_round_trip(self):
        disk = InMemoryDiskManager()
        pool = BufferPool(disk, capacity=2)
        page = pool.new_page()
        page.data[0:5] = b"hello"
        pool.unpin(page.page_id, dirty=True)
        pool.flush_all()
        fresh_pool = BufferPool(disk, capacity=2)
        restored = fresh_pool.fetch_page(page.page_id)
        assert bytes(restored.data[0:5]) == b"hello"

    def test_hit_rate(self):
        pool = make_pool()
        page = pool.new_page()
        pool.unpin(page.page_id)
        pool.fetch_page(page.page_id)
        pool.unpin(page.page_id)
        assert pool.stats.hit_rate() == 1.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=200),
       st.sampled_from(["lru", "fifo", "clock", "lru-k", "2q", "lfu"]))
def test_pool_invariants_property(accesses, policy_name):
    """Random fetch/unpin workloads never exceed capacity and never lose data."""
    disk = InMemoryDiskManager()
    page_ids = [disk.allocate_page() for _ in range(10)]
    for pid in page_ids:
        data = bytearray(PAGE_SIZE)
        data[0] = pid
        disk.write_page(pid, bytes(data))
    pool = BufferPool(disk, capacity=4, policy=make_policy(policy_name))
    for idx in accesses:
        page = pool.fetch_page(page_ids[idx])
        assert page.data[0] == page_ids[idx]  # correct contents, always
        assert len(pool.cached_page_ids()) <= 4
        pool.unpin(page.page_id)
    assert pool.pinned_count() == 0
