"""Schema matching: align columns of two tables.

Combines three classic signals — name similarity (trigram), type
compatibility, and instance overlap (Jaccard over sampled values) — into a
score matrix, then extracts a stable one-to-one alignment greedily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.types import Column, DataType
from repro.integrate.similarity import trigram_similarity

NAME_WEIGHT = 0.45
TYPE_WEIGHT = 0.15
INSTANCE_WEIGHT = 0.40


@dataclass(frozen=True)
class SchemaMatch:
    """One proposed column correspondence."""

    left: str
    right: str
    score: float
    name_score: float
    type_score: float
    instance_score: float


def _type_compatibility(a: DataType, b: DataType) -> float:
    if a == b:
        return 1.0
    if a.is_numeric() and b.is_numeric():
        return 0.7
    return 0.0


def _instance_overlap(values_a: Sequence[Any], values_b: Sequence[Any]) -> float:
    sa = {str(v).lower() for v in values_a if v is not None}
    sb = {str(v).lower() for v in values_b if v is not None}
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)


def _normalized_name(name: str) -> str:
    return name.lower().replace("_", " ").replace("-", " ")


def match_schemas(
    left_columns: Sequence[Column],
    right_columns: Sequence[Column],
    left_samples: Optional[Dict[str, Sequence[Any]]] = None,
    right_samples: Optional[Dict[str, Sequence[Any]]] = None,
    threshold: float = 0.35,
) -> List[SchemaMatch]:
    """One-to-one column alignment sorted by descending confidence."""
    left_samples = left_samples or {}
    right_samples = right_samples or {}
    scored: List[SchemaMatch] = []
    for lc in left_columns:
        for rc in right_columns:
            name_score = trigram_similarity(
                _normalized_name(lc.name), _normalized_name(rc.name)
            )
            type_score = _type_compatibility(lc.dtype, rc.dtype)
            instance_score = _instance_overlap(
                left_samples.get(lc.name, ()), right_samples.get(rc.name, ())
            )
            has_instances = lc.name in left_samples and rc.name in right_samples
            if has_instances:
                score = (
                    NAME_WEIGHT * name_score
                    + TYPE_WEIGHT * type_score
                    + INSTANCE_WEIGHT * instance_score
                )
            else:
                # Re-normalize without the instance signal.
                denom = NAME_WEIGHT + TYPE_WEIGHT
                score = (NAME_WEIGHT * name_score + TYPE_WEIGHT * type_score) / denom
            scored.append(
                SchemaMatch(lc.name, rc.name, score, name_score, type_score, instance_score)
            )
    scored.sort(key=lambda m: (-m.score, m.left, m.right))
    used_left: set = set()
    used_right: set = set()
    result: List[SchemaMatch] = []
    for match in scored:
        if match.score < threshold:
            break
        if match.left in used_left or match.right in used_right:
            continue
        used_left.add(match.left)
        used_right.add(match.right)
        result.append(match)
    return result
