"""Synthetic document corpora with topic structure.

Documents are generated from per-topic vocabularies mixed with a shared
background vocabulary (Zipf-weighted), so full-text relevance and embedding
proximity both carry real signal.  Fields (lang, quality, url with
duplicates, length) drive the AI-pipeline and hybrid-search experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

TOPICS = {
    "databases": [
        "query", "index", "transaction", "storage", "optimizer", "join",
        "buffer", "schema", "relational", "declarative", "scan", "btree",
    ],
    "machine_learning": [
        "model", "training", "gradient", "neural", "embedding", "inference",
        "dataset", "tokenizer", "transformer", "attention", "loss", "epoch",
    ],
    "systems": [
        "kernel", "thread", "latency", "throughput", "cache", "memory",
        "network", "scheduler", "cluster", "replication", "consensus", "shard",
    ],
    "cooking": [
        "recipe", "flour", "oven", "butter", "saute", "simmer", "garlic",
        "season", "roast", "whisk", "dough", "broth",
    ],
}

_BACKGROUND = [
    "system", "result", "paper", "approach", "method", "problem", "work",
    "time", "new", "good", "large", "small", "fast", "show", "make", "use",
    "world", "people", "note", "case", "value", "point", "part", "form",
]

_LANGS = ["en", "en", "en", "de", "fr", "zh"]  # en-heavy, like web corpora


@dataclass(frozen=True)
class CorpusDoc:
    """One synthetic document."""

    doc_id: int
    text: str
    topic: str
    lang: str
    quality: float
    url: str

    def to_record(self) -> Dict:
        return {
            "id": self.doc_id,
            "text": self.text,
            "topic": self.topic,
            "lang": self.lang,
            "quality": self.quality,
            "url": self.url,
        }


def make_corpus(
    num_docs: int = 1000,
    words_per_doc: int = 40,
    duplicate_fraction: float = 0.15,
    topics: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[CorpusDoc]:
    """Generate a topic-structured corpus.

    ``duplicate_fraction`` of documents are near-copies of an earlier one
    (same url, lightly shuffled text) — the dedup targets for E4.
    """
    rng = random.Random(seed)
    chosen_topics = list(topics) if topics else list(TOPICS)
    docs: List[CorpusDoc] = []
    for doc_id in range(num_docs):
        if docs and rng.random() < duplicate_fraction:
            original = rng.choice(docs)
            words = original.text.split()
            # A near-duplicate: a couple of word swaps, same url.
            for _ in range(2):
                if len(words) > 3:
                    i = rng.randrange(len(words) - 1)
                    words[i], words[i + 1] = words[i + 1], words[i]
            docs.append(
                CorpusDoc(
                    doc_id=doc_id,
                    text=" ".join(words),
                    topic=original.topic,
                    lang=original.lang,
                    quality=max(0.0, min(1.0, original.quality + rng.gauss(0, 0.05))),
                    url=original.url,
                )
            )
            continue
        topic = rng.choice(chosen_topics)
        vocab = TOPICS[topic]
        words = []
        for _ in range(words_per_doc):
            if rng.random() < 0.55:
                # Zipf-ish pick from the topic vocabulary.
                rank = min(int(rng.paretovariate(1.3)) - 1, len(vocab) - 1)
                words.append(vocab[rank])
            else:
                words.append(rng.choice(_BACKGROUND))
        docs.append(
            CorpusDoc(
                doc_id=doc_id,
                text=" ".join(words),
                topic=topic,
                lang=rng.choice(_LANGS),
                quality=rng.betavariate(4, 2),
                url=f"http://host{rng.randrange(max(8, num_docs // 3))}.example/{doc_id}",
            )
        )
    return docs
