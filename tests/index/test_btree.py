"""Tests for the B+tree (repro.index.btree)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.index.btree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(1) == []
        assert 1 not in tree
        assert list(tree.items()) == []

    def test_insert_search(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(3, "b")
        assert tree.search(5) == ["a"]
        assert tree.search(3) == ["b"]
        assert 5 in tree

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree()
        tree.insert(1, "x")
        tree.insert(1, "y")
        assert sorted(tree.search(1)) == ["x", "y"]
        assert len(tree) == 2
        assert tree.key_count() == 1

    def test_unique_rejects_duplicates(self):
        tree = BPlusTree(unique=True)
        tree.insert(1, "x")
        with pytest.raises(IndexError_, match="duplicate"):
            tree.insert(1, "y")

    def test_order_bounds(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)

    def test_min_max(self):
        tree = BPlusTree(order=4)
        for k in [5, 1, 9, 3]:
            tree.insert(k, k)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_min_max_empty_raise(self):
        with pytest.raises(IndexError_):
            BPlusTree().min_key()
        with pytest.raises(IndexError_):
            BPlusTree().max_key()

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ["pear", "apple", "fig", "mango", "kiwi"]:
            tree.insert(word, word.upper())
        assert list(tree.keys()) == sorted(["pear", "apple", "fig", "mango", "kiwi"])
        assert tree.search("fig") == ["FIG"]


class TestSplitsAndHeight:
    def test_splits_keep_order(self):
        tree = BPlusTree(order=4)
        keys = list(range(100))
        random.Random(7).shuffle(keys)
        for k in keys:
            tree.insert(k, k * 10)
        assert list(tree.keys()) == list(range(100))
        assert tree.height() > 1
        tree.check_invariants()

    def test_sequential_inserts(self):
        tree = BPlusTree(order=4)
        for k in range(200):
            tree.insert(k, k)
        tree.check_invariants()
        assert len(tree) == 200

    def test_reverse_sequential_inserts(self):
        tree = BPlusTree(order=4)
        for k in reversed(range(200)):
            tree.insert(k, k)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(200))


class TestRange:
    def setup_method(self):
        self.tree = BPlusTree(order=4)
        for k in range(0, 100, 2):  # evens 0..98
            self.tree.insert(k, f"v{k}")

    def test_closed_range(self):
        keys = [k for k, _ in self.tree.range(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_open_bounds(self):
        keys = [k for k, _ in self.tree.range(10, 20, include_low=False, include_high=False)]
        assert keys == [12, 14, 16, 18]

    def test_unbounded_low(self):
        keys = [k for k, _ in self.tree.range(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_unbounded_high(self):
        keys = [k for k, _ in self.tree.range(94, None)]
        assert keys == [94, 96, 98]

    def test_bounds_between_keys(self):
        keys = [k for k, _ in self.tree.range(11, 15)]
        assert keys == [12, 14]

    def test_empty_range(self):
        assert list(self.tree.range(1001, 2000)) == []

    def test_full_scan_equals_items(self):
        assert list(self.tree.range()) == list(self.tree.items())

    def test_range_includes_duplicates(self):
        self.tree.insert(10, "extra")
        values = [v for k, v in self.tree.range(10, 10)]
        assert sorted(values) == ["extra", "v10"]


class TestDelete:
    def test_delete_single_pair(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a") == 1
        assert tree.search(1) == ["b"]

    def test_delete_whole_key(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1) == 2
        assert tree.search(1) == []
        assert len(tree) == 0

    def test_delete_missing_key(self):
        with pytest.raises(IndexError_, match="not in index"):
            BPlusTree().delete(42)

    def test_delete_missing_pair(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        with pytest.raises(IndexError_, match="not in index"):
            tree.delete(1, "z")

    def test_delete_triggers_rebalance(self):
        tree = BPlusTree(order=4)
        for k in range(64):
            tree.insert(k, k)
        for k in range(0, 64, 2):
            tree.delete(k)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(1, 64, 2))

    def test_delete_everything(self):
        tree = BPlusTree(order=4)
        for k in range(50):
            tree.insert(k, k)
        for k in range(50):
            tree.delete(k)
            tree.check_invariants()
        assert len(tree) == 0
        assert list(tree.keys()) == []

    def test_delete_then_reinsert(self):
        tree = BPlusTree(order=4)
        for k in range(30):
            tree.insert(k, k)
        for k in range(30):
            tree.delete(k)
        for k in range(30):
            tree.insert(k, k + 100)
        tree.check_invariants()
        assert tree.search(7) == [107]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)),
        max_size=300,
    ),
    st.sampled_from([3, 4, 5, 8, 32]),
)
def test_btree_matches_dict_model_property(ops, order):
    """Random insert/delete streams keep the tree equal to a dict model and
    structurally valid."""
    tree = BPlusTree(order=order)
    model = {}
    for i, (is_insert, key) in enumerate(ops):
        if is_insert or key not in model:
            tree.insert(key, i)
            model.setdefault(key, []).append(i)
        else:
            tree.delete(key)
            del model[key]
    tree.check_invariants()
    assert list(tree.keys()) == sorted(model)
    for key, values in model.items():
        assert sorted(tree.search(key)) == sorted(values)


@settings(max_examples=30, deadline=None)
@given(
    st.sets(st.integers(min_value=-1000, max_value=1000), max_size=200),
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
)
def test_btree_range_matches_filter_property(keys, a, b):
    low, high = min(a, b), max(a, b)
    tree = BPlusTree(order=5)
    for k in keys:
        tree.insert(k, k)
    got = [k for k, _ in tree.range(low, high)]
    assert got == sorted(k for k in keys if low <= k <= high)
