"""Tests for the lock manager (repro.txn.locks)."""

import threading
import time

import pytest

from repro.core.errors import DeadlockError, TransactionError
from repro.txn.locks import LockManager, LockMode

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


class TestBasicModes:
    def test_shared_locks_are_compatible(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        lm.acquire(2, "a", S)
        assert lm.holds(1, "a") is S
        assert lm.holds(2, "a") is S

    def test_exclusive_excludes(self):
        lm = LockManager(wait_timeout=0.2)
        lm.acquire(1, "a", X)
        with pytest.raises(TransactionError, match="timed out"):
            lm.acquire(2, "a", X)

    def test_shared_blocks_on_exclusive(self):
        lm = LockManager(wait_timeout=0.2)
        lm.acquire(1, "a", X)
        with pytest.raises(TransactionError):
            lm.acquire(2, "a", S)

    def test_exclusive_blocks_on_shared(self):
        lm = LockManager(wait_timeout=0.2)
        lm.acquire(1, "a", S)
        with pytest.raises(TransactionError):
            lm.acquire(2, "a", X)

    def test_reacquire_is_noop(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        lm.acquire(1, "a", S)
        lm.acquire(1, "a", S)
        assert lm.held_keys(1) == {"a"}

    def test_upgrade_by_sole_holder(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        lm.acquire(1, "a", X)
        assert lm.holds(1, "a") is X

    def test_x_subsumes_s(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(1, "a", S)
        assert lm.holds(1, "a") is X

    def test_upgrade_blocked_by_other_sharer(self):
        lm = LockManager(wait_timeout=0.2)
        lm.acquire(1, "a", S)
        lm.acquire(2, "a", S)
        with pytest.raises(TransactionError):
            lm.acquire(1, "a", X)


class TestRelease:
    def test_release_all_frees_waiters(self):
        lm = LockManager(wait_timeout=5.0)
        lm.acquire(1, "a", X)
        acquired = threading.Event()

        def waiter():
            lm.acquire(2, "a", X)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        lm.release_all(1)
        thread.join(timeout=2)
        assert acquired.is_set()
        assert lm.holds(2, "a") is X

    def test_release_all_clears_every_key(self):
        lm = LockManager()
        lm.acquire(1, "a", S)
        lm.acquire(1, "b", X)
        lm.release_all(1)
        assert lm.held_keys(1) == set()
        assert lm.holds(1, "a") is None

    def test_release_unknown_txn_is_noop(self):
        LockManager().release_all(42)


class TestDeadlock:
    def test_two_txn_cycle_detected(self):
        lm = LockManager(wait_timeout=5.0)
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        errors = []

        def t1():
            try:
                lm.acquire(1, "b", X)
            except DeadlockError as exc:
                errors.append(exc)
                lm.release_all(1)

        def t2():
            try:
                lm.acquire(2, "a", X)
            except DeadlockError as exc:
                errors.append(exc)
                lm.release_all(2)

        threads = [threading.Thread(target=t1), threading.Thread(target=t2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # At least one transaction detected the cycle and aborted; the other
        # then completed.
        assert len(errors) >= 1
        assert lm.deadlocks_detected >= 1

    def test_no_false_deadlock_on_plain_contention(self):
        lm = LockManager(wait_timeout=5.0)
        lm.acquire(1, "a", X)

        def release_soon():
            time.sleep(0.1)
            lm.release_all(1)

        thread = threading.Thread(target=release_soon)
        thread.start()
        lm.acquire(2, "a", X)  # must succeed without DeadlockError
        thread.join()
        assert lm.holds(2, "a") is X
