"""Shared fixtures for the claim-reproduction benchmarks (E1–E10).

Each ``bench_eN_*.py`` regenerates one panel claim from EXPERIMENTS.md.
Heavy assets (TPC-H databases, document stores, serving traces) are built
once per session here.  pytest-benchmark's own table is the per-config
measurement record; each experiment additionally prints a claim-check
summary table (visible with ``-s``, and always captured in the benchmark
``extra_info``).
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import Database
from repro.core.types import Column, DataType
from repro.kvcache.workload import make_trace
from repro.multimodal.store import DocumentStore
from repro.workloads.corpus import make_corpus
from repro.workloads.embeddings import embed_text
from repro.workloads.tpch import load_tpch

from bench_config import E1_SCALE_FACTORS, EMBED_DIM


@pytest.fixture(scope="session")
def tpch_dbs():
    """TPC-H-like databases at the E1 scale factors."""
    dbs = {}
    for sf in E1_SCALE_FACTORS:
        db = Database()
        load_tpch(db, scale_factor=sf, seed=1)
        dbs[sf] = db
    return dbs


@pytest.fixture(scope="session")
def hybrid_store():
    """800-doc tri-modal store for E3."""
    docs = make_corpus(num_docs=800, duplicate_fraction=0.0, seed=3)
    store = DocumentStore(
        dim=EMBED_DIM,
        attr_columns=[
            Column("price", DataType.FLOAT),
            Column("category", DataType.TEXT),
            Column("quality", DataType.FLOAT),
        ],
    )
    rng = random.Random(3)
    for doc in docs:
        store.add(
            doc.doc_id,
            doc.text,
            embed_text(doc.text, dim=EMBED_DIM),
            (round(rng.uniform(1, 100), 2), doc.topic, doc.quality),
        )
    store.finalize()
    return store


@pytest.fixture(scope="session")
def serving_trace():
    """LLM serving trace for E5."""
    return make_trace(
        num_requests=600,
        num_system_prompts=8,
        system_prompt_tokens=128,
        continuation_probability=0.35,
        seed=5,
    )


@pytest.fixture(scope="session")
def pipeline_corpus():
    """Raw documents for the E4 data-prep pipeline."""
    return [d.to_record() for d in make_corpus(num_docs=3000, duplicate_fraction=0.25, seed=4)]
