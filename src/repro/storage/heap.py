"""Heap files: unordered collections of rows stored in slotted pages."""

from __future__ import annotations

import threading
from typing import Any, Iterator, NamedTuple, Optional, Sequence, Tuple

from repro.core.errors import PageFullError, StorageError
from repro.core.types import Row, Schema, TableStatsSnapshot, validate_row
from repro.storage.buffer import BufferPool
from repro.storage.page import MAX_RECORD_SIZE
from repro.storage.rowcodec import RowCodec


class RecordId(NamedTuple):
    """Stable address of a row: (page_id, slot)."""

    page_id: int
    slot: int


class HeapFile:
    """A schema-typed heap of rows over the buffer pool.

    Rows are validated/coerced against the schema on every write, so data on
    pages is always well typed.  Record ids stay stable across in-page
    updates; an update that no longer fits moves the row and returns the new
    :class:`RecordId`.
    """

    def __init__(self, pool: BufferPool, schema: Schema, name: str = "heap"):
        self.pool = pool
        self.schema = schema
        self.name = name
        self.codec = RowCodec(schema)
        self._page_ids: list = []
        self._page_id_set: set = set()
        self._row_count = 0
        self._byte_count = 0
        self._lock = threading.RLock()

    @classmethod
    def attach(
        cls, pool: BufferPool, schema: Schema, name: str, page_ids: Sequence[int]
    ) -> "HeapFile":
        """Reattach to pages already on disk (database reopen).

        Row/byte counts are recomputed with one scan — cheap relative to the
        index rebuilds that follow, and immune to stale metadata.
        """
        heap = cls(pool, schema, name=name)
        heap._page_ids = list(page_ids)
        heap._page_id_set = set(page_ids)
        for __, row in heap.scan():
            heap._row_count += 1
            heap._byte_count += len(heap.codec.encode(row))
        return heap

    # -- writes --------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> RecordId:
        """Validate, encode, and store a row; returns its record id."""
        stored = validate_row(self.schema, row)
        payload = self.codec.encode(stored)
        if len(payload) > MAX_RECORD_SIZE:
            raise StorageError(
                f"row of {len(payload)} bytes exceeds page capacity {MAX_RECORD_SIZE}"
            )
        with self._lock:
            rid = self._insert_payload(payload)
            self._row_count += 1
            self._byte_count += len(payload)
            return rid

    def _insert_payload(self, payload: bytes) -> RecordId:
        if self._page_ids:
            last_id = self._page_ids[-1]
            page = self.pool.fetch_page(last_id)
            try:
                slot = page.insert(payload)
                return RecordId(last_id, slot)
            except PageFullError:
                # Reclaim tombstoned space before giving up on the page.
                if page.live_bytes() < len(page.data) // 2:
                    page.compact()
                    try:
                        slot = page.insert(payload)
                        return RecordId(last_id, slot)
                    except PageFullError:
                        pass
            finally:
                self.pool.unpin(last_id, dirty=True)
        page = self.pool.new_page()
        try:
            slot = page.insert(payload)
            self._page_ids.append(page.page_id)
            self._page_id_set.add(page.page_id)
            return RecordId(page.page_id, slot)
        finally:
            self.pool.unpin(page.page_id, dirty=True)

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> list:
        """Bulk insert; returns record ids in order."""
        return [self.insert(row) for row in rows]

    def delete(self, rid: RecordId) -> None:
        """Tombstone a record.  Raises for addresses outside this heap."""
        with self._lock:
            self._check_rid(rid)
            page = self.pool.fetch_page(rid.page_id)
            try:
                existing = page.read(rid.slot)
                if existing is None:
                    raise StorageError(f"record {rid} already deleted")
                page.delete(rid.slot)
                self._row_count -= 1
                self._byte_count -= len(existing)
            finally:
                self.pool.unpin(rid.page_id, dirty=True)

    def update(self, rid: RecordId, row: Sequence[Any]) -> RecordId:
        """Replace a record; returns its (possibly new) record id."""
        stored = validate_row(self.schema, row)
        payload = self.codec.encode(stored)
        if len(payload) > MAX_RECORD_SIZE:
            raise StorageError(
                f"row of {len(payload)} bytes exceeds page capacity {MAX_RECORD_SIZE}"
            )
        with self._lock:
            self._check_rid(rid)
            page = self.pool.fetch_page(rid.page_id)
            try:
                existing = page.read(rid.slot)
                if existing is None:
                    raise StorageError(f"record {rid} already deleted")
                if page.update(rid.slot, payload):
                    self._byte_count += len(payload) - len(existing)
                    return rid
                # Doesn't fit here: move the row.
                page.delete(rid.slot)
                self._byte_count -= len(existing)
            finally:
                self.pool.unpin(rid.page_id, dirty=True)
            new_rid = self._insert_payload(payload)
            self._byte_count += len(payload)
            return new_rid

    # -- reads ----------------------------------------------------------------

    def get(self, rid: RecordId) -> Optional[Row]:
        """Fetch one row, or ``None`` if it was deleted."""
        with self._lock:
            self._check_rid(rid)
        page = self.pool.fetch_page(rid.page_id)
        try:
            payload = page.read(rid.slot)
            return self.codec.decode(payload) if payload is not None else None
        finally:
            self.pool.unpin(rid.page_id)

    def scan(self) -> Iterator[Tuple[RecordId, Row]]:
        """Yield every live row with its record id, in storage order."""
        with self._lock:
            page_ids = list(self._page_ids)
        for page_id in page_ids:
            page = self.pool.fetch_page(page_id)
            try:
                records = list(page.records())
            finally:
                self.pool.unpin(page_id)
            for slot, payload in records:
                yield RecordId(page_id, slot), self.codec.decode(payload)

    def scan_rows(self) -> Iterator[Row]:
        """Yield every live row without record ids."""
        for _, row in self.scan():
            yield row

    # -- morsels ---------------------------------------------------------------

    def morsel_source(self, morsel_size: int = 8192) -> "HeapMorselSource":
        """Split the heap into page-chunk morsels of roughly ``morsel_size`` rows.

        Heap morsels are page-aligned: a spec is a list of page ids, sized so
        the expected row count per morsel approximates ``morsel_size`` (from
        the current rows-per-page average).  Reads go through the buffer pool,
        whose internal lock makes concurrent ``fetch_page``/``unpin`` from
        worker threads safe; :class:`repro.storage.rowcodec.RowCodec` is
        stateless, so decoding needs no coordination.
        """
        if morsel_size < 1:
            raise StorageError("morsel_size must be >= 1")
        with self._lock:
            page_ids = list(self._page_ids)
            row_count = self._row_count
        rows_per_page = max(1, row_count // max(1, len(page_ids)))
        pages_per_morsel = max(1, morsel_size // rows_per_page)
        specs = [
            page_ids[start : start + pages_per_morsel]
            for start in range(0, len(page_ids), pages_per_morsel)
        ]
        return HeapMorselSource(self.pool, self.codec, specs)

    # -- stats ------------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._row_count

    def stats_snapshot(self) -> TableStatsSnapshot:
        with self._lock:
            return TableStatsSnapshot(
                row_count=self._row_count,
                byte_count=self._byte_count,
                page_count=len(self._page_ids),
            )

    def page_ids(self) -> list:
        with self._lock:
            return list(self._page_ids)

    # -- internals ---------------------------------------------------------------

    def _check_rid(self, rid: RecordId) -> None:
        if rid.page_id not in self._page_id_set:
            raise StorageError(f"record id {rid} is not in heap {self.name!r}")


class HeapMorselSource:
    """Page-chunk morsels over a snapshot of a :class:`HeapFile`'s page list."""

    __slots__ = ("pool", "codec", "specs")

    def __init__(self, pool: BufferPool, codec: RowCodec, specs):
        self.pool = pool
        self.codec = codec
        self.specs = specs

    def read(self, spec) -> Tuple[list, int]:
        """Decode one page-chunk morsel into column-major lists."""
        decode = self.codec.decode
        rows = []
        for page_id in spec:
            page = self.pool.fetch_page(page_id)
            try:
                records = list(page.records())
            finally:
                self.pool.unpin(page_id)
            rows.extend(decode(payload) for _, payload in records)
        if not rows:
            return [[] for _ in self.codec.schema], 0
        return [list(col) for col in zip(*rows)], len(rows)
