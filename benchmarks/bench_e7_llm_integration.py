"""E7 — "fully embrace LLMs … data integration, data cleaning …
declarativity and query optimization can also help in LLM-powered
processing at large/at scale/in production" (Parameswaran).

Reproduction: entity matching over a perturbed-duplicates dataset with a
metered, difficulty-aware simulated LLM.  Four matchers span the
cost/accuracy frontier; the claim's shape is that the optimizer-style
cascade (blocking + similarity gates + LLM only on the uncertain band)
reaches ≈ all-pairs-LLM quality at a small fraction of the spend.  A
threshold-band ablation shows the knob the optimizer exposes.
"""

import pytest

from repro.bench.harness import format_table
from repro.integrate.dataset import make_matching_dataset, make_oracle
from repro.integrate.llm import SimulatedLLM
from repro.integrate.matchers import (
    BlockedLLMMatcher,
    CascadeMatcher,
    LLMAllPairsMatcher,
    SimilarityMatcher,
)

MATCHERS = [
    ("similarity-only", lambda: SimilarityMatcher()),
    ("cascade", lambda: CascadeMatcher()),
    ("blocking+llm", lambda: BlockedLLMMatcher()),
    ("llm-all-pairs", lambda: LLMAllPairsMatcher()),
]
BANDS = [(0.9, 0.5), (0.82, 0.35), (0.7, 0.2)]

_RESULTS = {}
_ABLATION = {}


@pytest.fixture(scope="module")
def dataset():
    return make_matching_dataset(num_entities=120, seed=7)


@pytest.mark.parametrize("name,make", MATCHERS)
def test_e7_matcher(benchmark, dataset, name, make):
    def run():
        llm = SimulatedLLM(accuracy=0.9, seed=13)
        return make().run(dataset, make_oracle(dataset, llm))

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["f1"] = round(report.f1, 3)
    benchmark.extra_info["llm_cost"] = round(report.llm_cost, 2)
    _RESULTS[name] = report


@pytest.mark.parametrize("accept,reject", BANDS)
def test_e7_cascade_band_ablation(benchmark, dataset, accept, reject):
    def run():
        llm = SimulatedLLM(accuracy=0.9, seed=13)
        return CascadeMatcher(accept=accept, reject=reject).run(
            dataset, make_oracle(dataset, llm)
        )

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["f1"] = round(report.f1, 3)
    _ABLATION[(accept, reject)] = report


def test_e7_claim_check(benchmark, dataset):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = [
        [name, r.precision, r.recall, r.f1, r.llm_calls, r.llm_cost, r.pairs_considered]
        for name, r in _RESULTS.items()
    ]
    print()
    print(
        format_table(
            ["matcher", "P", "R", "F1", "LLM calls", "LLM cost", "pairs"],
            rows,
            title=f"E7: entity-matching frontier ({len(dataset)} records, "
            f"{len(dataset.true_pairs)} true pairs)",
        )
    )
    band_rows = [
        [f"[{reject}, {accept})", r.f1, r.llm_calls, r.llm_cost]
        for (accept, reject), r in _ABLATION.items()
    ]
    print()
    print(format_table(["uncertain band", "F1", "LLM calls", "LLM cost"], band_rows,
                       title="E7b: cascade band ablation"))
    frontier = _RESULTS
    # Quality: cascade ≥ 85% of the all-pairs F1, and better than no-LLM.
    assert frontier["cascade"].f1 >= 0.85 * frontier["llm-all-pairs"].f1
    assert frontier["cascade"].f1 > frontier["similarity-only"].f1
    # Cost: each step down the frontier cuts spend by an integer factor.
    assert frontier["cascade"].llm_cost < 0.25 * frontier["blocking+llm"].llm_cost
    assert frontier["blocking+llm"].llm_cost < 0.5 * frontier["llm-all-pairs"].llm_cost
    assert frontier["similarity-only"].llm_cost == 0.0
    # Ablation: a wider uncertain band spends more LLM calls.
    wide = _ABLATION[(0.9, 0.5)] if (0.9, 0.5) in _ABLATION else None
    narrow = _ABLATION[(0.7, 0.2)]
    if wide is not None:
        assert narrow.llm_calls != wide.llm_calls
