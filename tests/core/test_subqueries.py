"""Tests for uncorrelated subqueries (scalar and IN)."""

import pytest

from repro.catalog.catalog import Catalog
from repro.core.database import Database
from repro.core.errors import BindError, ExecutionError, TypeMismatchError
from repro.plan.binder import Binder
from repro.sql.parser import parse
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE emp (id INTEGER, dept TEXT, salary FLOAT)")
    database.execute(
        "INSERT INTO emp VALUES (1,'eng',100.0),(2,'eng',120.0),"
        "(3,'sales',80.0),(4,'sales',95.0),(5,'hr',70.0)"
    )
    database.execute("CREATE TABLE depts (name TEXT, budget FLOAT)")
    database.execute(
        "INSERT INTO depts VALUES ('eng', 1000.0), ('sales', 500.0), ('hr', NULL)"
    )
    return database


class TestScalarSubquery:
    def test_in_where(self, db):
        count = db.execute(
            "SELECT COUNT(*) FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)"
        ).scalar()
        assert count == 3

    def test_in_select_list(self, db):
        gap = db.execute(
            "SELECT (SELECT MAX(salary) FROM emp) - salary FROM emp WHERE id = 1"
        ).scalar()
        assert gap == 20.0

    def test_empty_result_is_null(self, db):
        value = db.execute("SELECT (SELECT salary FROM emp WHERE id = 99)").scalar()
        assert value is None

    def test_multiple_rows_rejected(self, db):
        with pytest.raises(ExecutionError, match="scalar subquery"):
            db.execute("SELECT (SELECT salary FROM emp)")

    def test_multiple_columns_rejected(self, db):
        with pytest.raises(BindError, match="one column"):
            db.execute("SELECT (SELECT id, dept FROM emp WHERE id = 1)")

    def test_nested_subqueries(self, db):
        count = db.execute(
            "SELECT COUNT(*) FROM emp WHERE salary > "
            "(SELECT AVG(salary) FROM emp WHERE dept IN "
            "(SELECT name FROM depts WHERE budget > 600))"
        ).scalar()
        assert count == 1  # only id=2 beats eng's average of 110

    def test_arithmetic_with_scalar_subquery(self, db):
        result = db.execute(
            "SELECT id FROM emp WHERE salary * 2 > (SELECT SUM(salary) FROM emp) / 3 "
            "ORDER BY id"
        )
        # sum=465 -> threshold 155; everyone but hr (140) clears it
        assert result.column("id") == [1, 2, 3, 4]


class TestInSubquery:
    def test_in(self, db):
        ids = db.execute(
            "SELECT id FROM emp WHERE dept IN (SELECT name FROM depts WHERE budget > 600) "
            "ORDER BY id"
        ).column("id")
        assert ids == [1, 2]

    def test_not_in(self, db):
        ids = db.execute(
            "SELECT id FROM emp WHERE dept NOT IN "
            "(SELECT name FROM depts WHERE budget >= 500) ORDER BY id"
        ).column("id")
        assert ids == [5]

    def test_empty_in_subquery(self, db):
        assert db.execute(
            "SELECT COUNT(*) FROM emp WHERE dept IN (SELECT name FROM depts WHERE budget > 9999)"
        ).scalar() == 0

    def test_not_in_with_null_in_subquery(self, db):
        """NOT IN over a set containing NULL matches nothing (SQL trap)."""
        db.execute("INSERT INTO depts VALUES (NULL, 5.0)")
        assert db.execute(
            "SELECT COUNT(*) FROM emp WHERE dept NOT IN (SELECT name FROM depts)"
        ).scalar() == 0

    def test_type_mismatch_rejected(self, db):
        with pytest.raises(TypeMismatchError):
            db.execute("SELECT id FROM emp WHERE id IN (SELECT name FROM depts)")

    def test_in_subquery_inside_aggregate_query(self, db):
        result = db.execute(
            "SELECT dept, COUNT(*) FROM emp "
            "WHERE dept IN (SELECT name FROM depts WHERE budget > 100) "
            "GROUP BY dept ORDER BY dept"
        )
        assert result.rows == [("eng", 2), ("sales", 2)]


class TestSubqueryPlumbing:
    def test_binder_without_executor_rejects(self, db):
        bare = Binder(db.catalog)  # no subquery_executor
        with pytest.raises(BindError, match="not supported"):
            bare.bind_select(parse("SELECT (SELECT 1)"))

    def test_round_trip_to_sql(self):
        stmt = parse("SELECT a FROM t WHERE a IN (SELECT b FROM s)")
        assert parse(stmt.to_sql()) == stmt
        stmt = parse("SELECT (SELECT MAX(x) FROM t)")
        assert parse(stmt.to_sql()) == stmt

    def test_engine_parity(self, db):
        sql = (
            "SELECT id FROM emp WHERE salary >= (SELECT AVG(salary) FROM emp) "
            "ORDER BY id"
        )
        assert (
            db.execute(sql, engine="volcano").rows
            == db.execute(sql, engine="vectorized").rows
        )


class TestExistsSubquery:
    def test_exists_true(self, db):
        assert db.execute(
            "SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT 1 FROM depts WHERE budget > 900)"
        ).scalar() == 5

    def test_exists_false(self, db):
        assert db.execute(
            "SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT 1 FROM depts WHERE budget > 9999)"
        ).scalar() == 0

    def test_not_exists(self, db):
        assert db.execute(
            "SELECT COUNT(*) FROM emp WHERE NOT EXISTS (SELECT 1 FROM depts WHERE budget > 9999)"
        ).scalar() == 5

    def test_exists_allows_multiple_columns(self, db):
        assert db.execute("SELECT EXISTS (SELECT id, dept FROM emp)").scalar() is True

    def test_exists_in_select_list(self, db):
        assert db.execute(
            "SELECT EXISTS (SELECT 1 FROM emp WHERE salary > 115)"
        ).scalar() is True

    def test_exists_round_trip(self):
        stmt = parse("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s) AND a > 0")
        assert parse(stmt.to_sql()) == stmt

    def test_exists_requires_subquery(self):
        from repro.core.errors import ParseError

        with pytest.raises(ParseError, match="subquery"):
            parse("SELECT 1 WHERE EXISTS (1 + 2)")
