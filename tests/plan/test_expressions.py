"""Tests for bound expressions: three-valued logic, utilities, typing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog
from repro.core.errors import BindError, ExecutionError, TypeMismatchError
from repro.core.types import Column, DataType, Schema
from repro.plan.binder import Binder
from repro.plan.expressions import (
    BoundColumn,
    BoundLiteral,
    columns_used,
    conjoin,
    is_constant,
    like_to_regex,
    remap_columns,
    shift_columns,
    split_conjuncts,
)
from repro.sql.parser import parse_expression
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

SCHEMA = Schema(
    [
        Column("i", DataType.INTEGER),
        Column("f", DataType.FLOAT),
        Column("t", DataType.TEXT),
        Column("b", DataType.BOOLEAN),
    ]
)


def bind(text):
    catalog = Catalog(BufferPool(InMemoryDiskManager()))
    return Binder(catalog).bind_expr(parse_expression(text), SCHEMA)


def ev(text, row=(None, None, None, None)):
    return bind(text).eval(row)


class TestThreeValuedLogic:
    """The SQL truth tables, exhaustively."""

    def test_and_table(self):
        assert ev("b AND b", (0, 0, "", True)) is True
        assert ev("b AND NOT b", (0, 0, "", True)) is False
        # NULL AND TRUE -> NULL; NULL AND FALSE -> FALSE
        assert ev("b AND TRUE", (0, 0, "", None)) is None
        assert ev("b AND FALSE", (0, 0, "", None)) is False
        assert ev("TRUE AND b", (0, 0, "", None)) is None
        assert ev("FALSE AND b", (0, 0, "", None)) is False

    def test_or_table(self):
        assert ev("b OR FALSE", (0, 0, "", None)) is None
        assert ev("b OR TRUE", (0, 0, "", None)) is True
        assert ev("FALSE OR b", (0, 0, "", None)) is None
        assert ev("TRUE OR b", (0, 0, "", None)) is True

    def test_not_null(self):
        assert ev("NOT b", (0, 0, "", None)) is None

    def test_comparison_with_null(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            assert ev(f"i {op} 1", (None, 0, "", False)) is None

    def test_arithmetic_null_propagation(self):
        assert ev("i + 1", (None, 0, "", False)) is None
        assert ev("i * f", (2, None, "", False)) is None


class TestOperators:
    ROW = (7, 2.5, "hello", True)

    def test_arithmetic(self):
        assert ev("i + 2", self.ROW) == 9
        assert ev("i - 10", self.ROW) == -3
        assert ev("i * f", self.ROW) == 17.5
        assert ev("i / 2", self.ROW) == 3
        assert ev("i / 2.0", self.ROW) == 3.5
        assert ev("i % 4", self.ROW) == 3

    def test_division_errors(self):
        with pytest.raises(ExecutionError):
            ev("i / 0", self.ROW)
        with pytest.raises(ExecutionError):
            ev("i % 0", self.ROW)

    def test_concat(self):
        assert ev("t || '!'", self.ROW) == "hello!"
        assert ev("t || i", self.ROW) == "hello7"

    def test_comparisons(self):
        assert ev("i >= 7", self.ROW) is True
        assert ev("f < 2.5", self.ROW) is False
        assert ev("t = 'hello'", self.ROW) is True

    def test_type_mismatch_rejected_at_bind(self):
        with pytest.raises(TypeMismatchError):
            bind("i = 'text'")
        with pytest.raises(TypeMismatchError):
            bind("t + 1")
        with pytest.raises(TypeMismatchError):
            bind("i AND b")
        with pytest.raises(TypeMismatchError):
            bind("NOT i")


class TestLikeRegex:
    def test_percent(self):
        assert like_to_regex("a%") == "a.*\\Z"

    def test_underscore(self):
        assert like_to_regex("a_c") == "a.c\\Z"

    def test_specials_escaped(self):
        import re

        regex = like_to_regex("a.b+c")
        assert re.match(regex, "a.b+c")
        assert not re.match(regex, "aXb+c")

    def test_like_matches_whole_string(self):
        assert ev("t LIKE 'hell'", (0, 0, "hello", True)) is False
        assert ev("t LIKE 'hell%'", (0, 0, "hello", True)) is True

    def test_like_multiline_text(self):
        assert ev("t LIKE 'a%b'", (0, 0, "a\nb", True)) is True


class TestUtilities:
    def test_columns_used(self):
        expr = bind("i + f > 2 AND t LIKE 'x%'")
        assert columns_used(expr) == frozenset({0, 1, 2})

    def test_is_constant(self):
        assert is_constant(bind("1 + 2"))
        assert not is_constant(bind("i + 2"))

    def test_split_and_conjoin_round_trip(self):
        expr = bind("i > 1 AND f < 2 AND b")
        parts = split_conjuncts(expr)
        assert len(parts) == 3
        rebuilt = conjoin(parts)
        row = (5, 1.0, "", True)
        assert rebuilt.eval(row) == expr.eval(row)

    def test_split_does_not_cross_or(self):
        expr = bind("i > 1 OR f < 2")
        assert len(split_conjuncts(expr)) == 1

    def test_conjoin_empty(self):
        assert conjoin([]) is None

    def test_shift_columns(self):
        expr = bind("i + f")
        shifted = shift_columns(expr, 2)
        assert columns_used(shifted) == frozenset({2, 3})
        assert shifted.eval((None, None, 3, 4.0)) == 7.0

    def test_remap_requires_full_coverage(self):
        expr = bind("i + f")
        with pytest.raises(BindError):
            remap_columns(expr, {0: 5})

    def test_remap_reaches_all_node_kinds(self):
        expr = bind(
            "CASE WHEN i IN (1,2) AND t LIKE 'a%' THEN COALESCE(f, 0.0) "
            "ELSE ABS(i) END"
        )
        mapping = {c: c + 10 for c in columns_used(expr)}
        remapped = remap_columns(expr, mapping)
        assert columns_used(remapped) == frozenset(mapping.values())
        wide = (None,) * 10 + (1, 2.0, "abc", True)
        assert remapped.eval(wide) == expr.eval((1, 2.0, "abc", True))


@settings(max_examples=60, deadline=None)
@given(
    st.integers(-100, 100) | st.none(),
    st.floats(-100, 100) | st.none(),
    st.booleans() | st.none(),
)
def test_predicate_never_crashes_property(i, f, b):
    """Random NULL-laden rows evaluate every predicate to True/False/None."""
    row = (i, f, "txt", b)
    for text in (
        "i > 0 AND f < 50 OR b",
        "NOT (i = 0) OR f >= 0 AND b",
        "i BETWEEN -50 AND 50",
        "i IN (1, 2, 3) OR b IS NULL",
    ):
        value = bind(text).eval(row)
        assert value in (True, False, None)
