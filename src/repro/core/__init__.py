"""Core public API: the type system, error hierarchy, and Database facade."""

from repro.core.errors import (
    BindError,
    CatalogError,
    ExecutionError,
    IntegrityError,
    ParseError,
    PlanError,
    ReproError,
    StorageError,
    TransactionAborted,
    TransactionError,
    TypeMismatchError,
)
from repro.core.types import Column, DataType, Row, Schema, validate_row

__all__ = [
    "BindError",
    "CatalogError",
    "ExecutionError",
    "IntegrityError",
    "ParseError",
    "PlanError",
    "ReproError",
    "StorageError",
    "TransactionAborted",
    "TransactionError",
    "TypeMismatchError",
    "Column",
    "DataType",
    "Row",
    "Schema",
    "validate_row",
]
