"""Compiled-vs-interpreted smoke benchmark (≈30 s) → BENCH_compile.json.

Runs a small subset of E1 (TPC-H Q1/Q6) and an E6-style repeated-statement
workload under two configurations:

* **interpreted** — expression codegen disabled, plan cache disabled
  (the pre-codegen engine);
* **compiled** — expression→closure codegen + plan cache + prepared
  statements (the defaults after this change).

Emits ``BENCH_compile.json`` next to this file so future changes have a
machine-readable perf trajectory.  Run directly::

    PYTHONPATH=src python benchmarks/bench_compare.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_json import write_report  # noqa: E402
from repro.core.database import Database  # noqa: E402
from repro.exec import compile as compile_mod  # noqa: E402
from repro.workloads.tpch import load_tpch, tpch_query  # noqa: E402

TPCH_SCALE = 0.1
TPCH_QUERIES = ["Q1", "Q6"]
TPCH_ROUNDS = 3
OLTP_ROWS = 5000
OLTP_STATEMENTS = 2000


def best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_tpch(codegen: bool) -> dict:
    """Best-of-N latency for each TPC-H query under one configuration."""
    compile_mod.set_enabled(codegen)
    try:
        db = Database(plan_cache_size=128 if codegen else 0)
        load_tpch(db, scale_factor=TPCH_SCALE, seed=7)
        out = {}
        for name in TPCH_QUERIES:
            sql = tpch_query(name)
            rows = {}

            def run():
                rows["result"] = db.execute(sql).rows

            out[name] = {
                "best_ms": best_of(run, TPCH_ROUNDS) * 1e3,
                "rows": len(rows["result"]),
            }
        return out
    finally:
        compile_mod.set_enabled(True)


def make_oltp_db(plan_cache: bool) -> Database:
    db = Database(plan_cache_size=128 if plan_cache else 0)
    db.execute("CREATE TABLE accounts (id INTEGER NOT NULL, owner TEXT, balance DOUBLE)")
    db.insert_rows(
        "accounts",
        [(i, f"owner-{i % 97}", float(i % 1000)) for i in range(OLTP_ROWS)],
    )
    db.execute("CREATE INDEX idx_accounts_id ON accounts (id)")
    db.analyze()
    return db


def bench_oltp(codegen: bool) -> dict:
    """Repeated point-SELECT throughput (statements/second)."""
    compile_mod.set_enabled(codegen)
    try:
        db = make_oltp_db(plan_cache=codegen)
        out = {}

        # Identical statement text re-executed: the plan-cache sweet spot.
        sql = f"SELECT owner, balance FROM accounts WHERE id = {OLTP_ROWS // 2}"
        t0 = time.perf_counter()
        for _ in range(OLTP_STATEMENTS):
            db.execute(sql)
        out["repeated_statement_tps"] = OLTP_STATEMENTS / (time.perf_counter() - t0)

        # Parameterized workload: prepared statements vs text substitution.
        if codegen:
            stmt = db.prepare("SELECT owner, balance FROM accounts WHERE id = ?")
            t0 = time.perf_counter()
            for i in range(OLTP_STATEMENTS):
                stmt.execute(((i * 37) % OLTP_ROWS,))
            out["parameterized_tps"] = OLTP_STATEMENTS / (time.perf_counter() - t0)
        else:
            sql = "SELECT owner, balance FROM accounts WHERE id = ?"
            t0 = time.perf_counter()
            for i in range(OLTP_STATEMENTS):
                db.execute(sql, params=((i * 37) % OLTP_ROWS,))
            out["parameterized_tps"] = OLTP_STATEMENTS / (time.perf_counter() - t0)
        return out
    finally:
        compile_mod.set_enabled(True)


def main() -> int:
    started = time.time()
    report = {
        "scale_factor": TPCH_SCALE,
        "tpch": {},
        "oltp": {},
        "speedups": {},
    }

    interpreted = bench_tpch(codegen=False)
    compiled = bench_tpch(codegen=True)
    for name in TPCH_QUERIES:
        speedup = interpreted[name]["best_ms"] / compiled[name]["best_ms"]
        report["tpch"][name] = {
            "interpreted_ms": round(interpreted[name]["best_ms"], 2),
            "compiled_ms": round(compiled[name]["best_ms"], 2),
            "speedup": round(speedup, 2),
        }
        report["speedups"][f"tpch_{name}"] = round(speedup, 2)

    oltp_before = bench_oltp(codegen=False)
    oltp_after = bench_oltp(codegen=True)
    for key in ("repeated_statement_tps", "parameterized_tps"):
        speedup = oltp_after[key] / oltp_before[key]
        report["oltp"][key] = {
            "interpreted": round(oltp_before[key], 1),
            "compiled": round(oltp_after[key], 1),
            "speedup": round(speedup, 2),
        }
        report["speedups"][f"oltp_{key}"] = round(speedup, 2)

    report["elapsed_s"] = round(time.time() - started, 1)
    out_path = write_report("compile", report)
    ok = all(s >= 1.5 for k, s in report["speedups"].items() if k.startswith("tpch_"))
    ok &= report["speedups"]["oltp_repeated_statement_tps"] >= 2.0
    print(f"\nwrote {out_path}; targets {'MET' if ok else 'NOT MET'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
