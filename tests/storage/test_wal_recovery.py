"""Tests for the WAL and crash recovery (repro.storage.wal / recovery)."""

import pytest

from repro.storage.recovery import analyze, replay, undo_operations
from repro.storage.wal import (
    LogRecord,
    LogRecordType,
    WriteAheadLog,
    decode_records,
    encode_record,
    read_log_file,
)


def _scripted_log(wal: WriteAheadLog) -> None:
    """txn 1 commits an insert+update, txn 2 inserts but never commits,
    txn 3 aborts a delete."""
    wal.append(1, LogRecordType.BEGIN)
    wal.append(1, LogRecordType.INSERT, "t", (0, 0), None, (1, "a"))
    wal.append(2, LogRecordType.BEGIN)
    wal.append(2, LogRecordType.INSERT, "t", (0, 1), None, (2, "b"))
    wal.append(1, LogRecordType.UPDATE, "t", (0, 0), (1, "a"), (1, "a2"))
    wal.append(1, LogRecordType.COMMIT)
    wal.append(3, LogRecordType.BEGIN)
    wal.append(3, LogRecordType.DELETE, "t", (0, 0), (1, "a2"), None)
    wal.append(3, LogRecordType.ABORT)


class TestWAL:
    def test_lsns_monotonic(self):
        wal = WriteAheadLog()
        lsns = [wal.append(1, LogRecordType.BEGIN) for _ in range(5)]
        assert lsns == [1, 2, 3, 4, 5]
        assert wal.last_lsn == 5

    def test_flush_advances_flushed_lsn(self):
        wal = WriteAheadLog()
        wal.append(1, LogRecordType.BEGIN)
        assert wal.flushed_lsn == 0
        assert wal.flush() == 1
        assert wal.flushed_lsn == 1

    def test_records_for_txn(self):
        wal = WriteAheadLog()
        _scripted_log(wal)
        assert len(wal.records_for(1)) == 4
        assert len(wal.records_for(2)) == 2

    def test_record_binary_round_trip(self):
        record = LogRecord(
            7, 3, LogRecordType.UPDATE, "tbl", (12, 4), (1, "x", None), (2, "y", 1.5)
        )
        decoded = decode_records(encode_record(record))
        assert decoded == [record]

    def test_torn_tail_discarded(self):
        record = LogRecord(1, 1, LogRecordType.INSERT, "t", (0, 0), None, (1,))
        data = encode_record(record) + encode_record(record)[:-5]
        decoded = decode_records(data)
        assert len(decoded) == 1

    def test_file_backed_log_survives(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        _scripted_log(wal)
        wal.flush()
        wal.close()
        restored = read_log_file(path)
        assert [r.lsn for r in restored] == list(range(1, 10))
        assert restored[1].after == (1, "a")


class TestRecovery:
    def test_analyze_classifies_txns(self):
        wal = WriteAheadLog()
        _scripted_log(wal)
        committed, aborted, in_flight = analyze(wal.records())
        assert committed == {1}
        assert aborted == {3}
        assert in_flight == {2}

    def test_replay_applies_only_committed(self):
        wal = WriteAheadLog()
        _scripted_log(wal)
        state = replay(wal.records())
        # txn 1: insert (1,'a') then update to (1,'a2'). txn 2 uncommitted,
        # txn 3 aborted — neither is visible.
        assert state.rows("t") == [(1, "a2")]
        assert state.replayed_ops == 2

    def test_replay_is_idempotent(self):
        wal = WriteAheadLog()
        _scripted_log(wal)
        once = replay(wal.records())
        twice = replay(list(wal.records()) + list(wal.records()))
        assert once.rows("t") == twice.rows("t")

    def test_replay_committed_delete(self):
        wal = WriteAheadLog()
        wal.append(1, LogRecordType.BEGIN)
        wal.append(1, LogRecordType.INSERT, "t", (0, 0), None, (1, "a"))
        wal.append(1, LogRecordType.DELETE, "t", (0, 0), (1, "a"), None)
        wal.append(1, LogRecordType.COMMIT)
        assert replay(wal.records()).rows("t") == []

    def test_replay_out_of_order_input(self):
        wal = WriteAheadLog()
        _scripted_log(wal)
        shuffled = list(reversed(wal.records()))
        assert replay(shuffled).rows("t") == [(1, "a2")]

    def test_undo_operations_reversed(self):
        wal = WriteAheadLog()
        _scripted_log(wal)
        ops = undo_operations(wal.records_for(1))
        assert [op.type for op in ops] == [LogRecordType.UPDATE, LogRecordType.INSERT]

    def test_crash_before_commit_loses_nothing_committed(self, tmp_path):
        """Simulated crash: only flushed records survive; committed effects
        are reconstructed, in-flight ones are dropped."""
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(1, LogRecordType.BEGIN)
        wal.append(1, LogRecordType.INSERT, "t", (0, 0), None, (10, "keep"))
        wal.append(1, LogRecordType.COMMIT)
        wal.flush()  # durable point
        wal.append(2, LogRecordType.BEGIN)
        wal.append(2, LogRecordType.INSERT, "t", (0, 1), None, (11, "lost"))
        wal.flush()
        wal.close()
        # After the "crash", replay whatever made it to disk.
        state = replay(read_log_file(path))
        assert state.rows("t") == [(10, "keep")]
        assert 2 in state.in_flight
