"""Tests for catalog persistence (reopenable file-backed databases)."""

import os

import pytest

from repro.catalog.persistence import load_catalog, metadata_path, save_catalog
from repro.core.database import Database
from repro.core.errors import CatalogError


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "data.db")


def _make(db_path, rows=200):
    db = Database(path=db_path)
    db.execute(
        "CREATE TABLE items (id INTEGER NOT NULL, name TEXT, price FLOAT, "
        "emb VECTOR(2))"
    )
    db.insert_rows(
        "items", [(i, f"item{i}", i * 1.5, [float(i), 0.0]) for i in range(rows)]
    )
    db.execute("CREATE INDEX idx_items_id ON items (id)")
    db.execute("CREATE INDEX idx_items_name ON items (name) USING hash")
    return db


class TestReopenCycle:
    def test_rows_survive_reopen(self, db_path):
        _make(db_path).close()
        db = Database(path=db_path)
        assert db.catalog.table_names() == ["items"]
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 200
        assert db.execute("SELECT name FROM items WHERE id = 42").scalar() == "item42"
        db.close()

    def test_schema_types_survive(self, db_path):
        _make(db_path).close()
        db = Database(path=db_path)
        schema = db.table("items").schema
        assert schema.column("id").nullable is False
        assert schema.column("emb").vector_width == 2
        assert db.execute("SELECT emb FROM items WHERE id = 3").scalar() == (3.0, 0.0)
        db.close()

    def test_indexes_rebuilt_and_used(self, db_path):
        _make(db_path).close()
        db = Database(path=db_path)
        db.analyze()
        assert "IndexScan" in db.explain("SELECT name FROM items WHERE id = 7")
        info = db.table("items").index_on("name", kind_filter="hash")
        assert info is not None
        db.close()

    def test_writes_after_reopen_persist(self, db_path):
        _make(db_path, rows=50).close()
        db = Database(path=db_path)
        db.execute("INSERT INTO items VALUES (500, 'late', 1.0, [0.0, 0.0])")
        db.execute("DELETE FROM items WHERE id = 0")
        db.execute("UPDATE items SET price = 99.0 WHERE id = 1")
        db.close()
        final = Database(path=db_path)
        assert final.execute("SELECT COUNT(*) FROM items").scalar() == 50
        assert final.execute("SELECT price FROM items WHERE id = 1").scalar() == 99.0
        assert final.execute("SELECT COUNT(*) FROM items WHERE id = 0").scalar() == 0
        final.close()

    def test_multiple_tables(self, db_path):
        db = Database(path=db_path)
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (y TEXT)")
        db.execute("INSERT INTO a VALUES (1)")
        db.execute("INSERT INTO b VALUES ('hello')")
        db.close()
        reopened = Database(path=db_path)
        assert reopened.catalog.table_names() == ["a", "b"]
        assert reopened.execute("SELECT y FROM b").scalar() == "hello"
        reopened.close()

    def test_memory_database_ignores_persistence(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.close()  # must not try to write any sidecar


class TestMetadataFile:
    def test_sidecar_created_on_close(self, db_path):
        _make(db_path).close()
        assert os.path.exists(metadata_path(db_path))

    def test_missing_sidecar_triggers_wal_recovery(self, db_path):
        # A data file without a metadata sidecar is a crash signature: the
        # WAL next to it is the source of truth and recovery rebuilds from
        # it (this used to silently present a fresh, empty database).
        db = Database(path=db_path)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (7)")
        db.pool.flush_all()
        db.disk.close()  # "crash": no close(), no sidecar
        db.wal.close()
        recovered = Database(path=db_path)
        assert recovered.recovery_stats == {"t": 1}
        assert recovered.execute("SELECT a FROM t").scalar() == 7
        recovered.close()

    def test_no_files_at_all_is_fresh_database(self, db_path):
        # Nothing on disk (no data file, no sidecar, no WAL): fresh start.
        fresh = Database(path=db_path)
        assert fresh.catalog.table_names() == []
        assert fresh.recovery_stats is None
        fresh.close()

    def test_version_mismatch_rejected(self, db_path):
        _make(db_path).close()
        import json

        meta = metadata_path(db_path)
        payload = json.load(open(meta))
        payload["version"] = 999
        json.dump(payload, open(meta, "w"))
        with pytest.raises(CatalogError, match="version"):
            Database(path=db_path)

    def test_column_layout_rejected_loudly(self, db_path):
        db = Database(path=db_path, default_layout="column")
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(CatalogError, match="column layout"):
            db.close()
