"""The ORM N+1 anti-pattern, measured.

"Many performance problems are due to the ORM and never arise at the DBMS":
the same 1:N traversal three ways, with query counts and timings.

Run:  python examples/orm_antipattern.py
"""

import time

from repro.bench.harness import format_table
from repro.core.database import Database
from repro.orm import ForeignKeyField, IntegerField, Model, Session, TextField, eager


class Author(Model):
    __tablename__ = "authors"
    id = IntegerField(primary_key=True)
    name = TextField()


class Book(Model):
    __tablename__ = "books"
    id = IntegerField(primary_key=True)
    author_id = ForeignKeyField("authors.id")
    title = TextField()


Author.relate("books", Book, foreign_key="author_id")

N_AUTHORS = 300
BOOKS_EACH = 4


def main() -> None:
    session = Session(Database())
    session.create_all([Author, Book])
    for i in range(N_AUTHORS):
        session.add(Author(id=i, name=f"author{i}"))
        for j in range(BOOKS_EACH):
            session.add(Book(id=i * 10 + j, author_id=i, title=f"book {i}.{j}"))
    session.flush()

    rows = []

    def measure(label, fn):
        fresh = Session(session.db)
        fresh.reset_query_count()
        started = time.perf_counter()
        total = fn(fresh)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        rows.append([label, fresh.query_count, elapsed_ms, total])

    measure(
        "lazy ORM (N+1)",
        # The anti-pattern is the point of this example; the static detector
        # (python -m repro lint examples/) flags this exact line otherwise.
        lambda s: sum(len(a.books) for a in s.query(Author).all()),  # lint: allow(orm-n-plus-one)
    )
    measure(
        "eager ORM (1 JOIN)",
        lambda s: sum(
            len(a.books) for a in s.query(Author).options(eager("books")).all()
        ),
    )
    measure(
        "raw SQL (set-oriented)",
        lambda s: s.execute("SELECT COUNT(*) FROM books").scalar(),
    )

    print(
        format_table(
            ["approach", "queries", "ms", "books counted"],
            rows,
            title=f"Counting every author's books ({N_AUTHORS} authors x {BOOKS_EACH})",
        )
    )
    lazy_ms, raw_ms = rows[0][2], rows[2][2]
    print(
        f"\nThe DBMS executes each of the {rows[0][1]} lazy queries quickly —\n"
        f"the {lazy_ms / raw_ms:.0f}x slowdown lives entirely in the access\n"
        "pattern the ORM generated.  The problem never 'arises at the DBMS'."
    )


if __name__ == "__main__":
    main()
