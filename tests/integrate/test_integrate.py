"""Tests for LLM-powered data integration (repro.integrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Column, DataType
from repro.integrate import (
    BlockedLLMMatcher,
    CascadeMatcher,
    LLMAllPairsMatcher,
    SimilarityMatcher,
    SimulatedLLM,
    block_candidates,
    evaluate_pairs,
    jaccard_similarity,
    levenshtein_distance,
    make_matching_dataset,
    match_schemas,
    record_similarity,
    trigram_similarity,
)
from repro.integrate.blocking import all_pairs, pair_completeness, token_blocks
from repro.integrate.dataset import make_oracle
from repro.integrate.llm import MatchOracle
from repro.integrate.similarity import levenshtein_similarity


class TestSimilarity:
    def test_levenshtein_basics(self):
        assert levenshtein_distance("", "") == 0
        assert levenshtein_distance("abc", "abc") == 0
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("flaw", "lawn") == 2

    def test_levenshtein_symmetry(self):
        assert levenshtein_distance("abc", "acb") == levenshtein_distance("acb", "abc")

    def test_levenshtein_similarity_bounds(self):
        assert levenshtein_similarity("same", "same") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0

    def test_jaccard(self):
        assert jaccard_similarity("a b c", "a b c") == 1.0
        assert jaccard_similarity("a b", "b c") == pytest.approx(1 / 3)
        assert jaccard_similarity("", "") == 1.0
        assert jaccard_similarity("a", "") == 0.0

    def test_jaccard_order_insensitive(self):
        assert jaccard_similarity("acme corp", "corp acme") == 1.0

    def test_trigram_tolerates_typos(self):
        clean = trigram_similarity("acme systems", "acme systems")
        typo = trigram_similarity("acme systems", "acme systms")
        different = trigram_similarity("acme systems", "zenith foods")
        assert clean == 1.0
        assert 0.4 < typo < 1.0
        assert different < 0.2

    def test_record_similarity_weights(self):
        a = {"name": "acme corp", "city": "salem"}
        b = {"name": "acme corp", "city": "dover"}
        name_heavy = record_similarity(a, b, weights={"name": 10.0, "city": 1.0})
        city_heavy = record_similarity(a, b, weights={"name": 1.0, "city": 10.0})
        assert name_heavy > city_heavy

    def test_record_similarity_missing_field(self):
        assert record_similarity({"name": "x"}, {"city": "y"}) == 0.0


class TestBlocking:
    def records(self):
        return {
            1: {"name": "acme systems inc", "city": "salem"},
            2: {"name": "acme systems incorporated", "city": "salem"},
            3: {"name": "zenith foods", "city": "dover"},
            4: {"name": "zenith robotics", "city": "dover"},
        }

    def test_shared_tokens_pair_up(self):
        candidates = block_candidates(self.records(), fields=("name",))
        assert (1, 2) in candidates
        assert (3, 4) in candidates
        assert (1, 3) not in candidates

    def test_city_field_adds_pairs(self):
        candidates = block_candidates(self.records(), fields=("name", "city"))
        assert (1, 2) in candidates and (3, 4) in candidates

    def test_short_tokens_ignored(self):
        blocks = token_blocks(self.records(), fields=("name",), min_token_length=3)
        assert "inc" not in blocks  # appears in a single record: block dropped
        assert "acme" in blocks
        candidates = block_candidates(
            self.records(), fields=("name",), min_token_length=4
        )
        assert (1, 2) in candidates  # still paired via "acme"/"systems"

    def test_oversized_blocks_dropped(self):
        records = {i: {"name": "common token"} for i in range(50)}
        assert block_candidates(records, fields=("name",), max_block_size=10) == set()

    def test_all_pairs_count(self):
        assert len(all_pairs(range(5))) == 10

    def test_pair_completeness(self):
        candidates = block_candidates(self.records(), fields=("name",))
        assert pair_completeness(candidates, {(1, 2)}) == 1.0
        assert pair_completeness(candidates, {(1, 3)}) == 0.0
        assert pair_completeness(set(), set()) == 1.0

    def test_blocking_much_smaller_than_all_pairs(self):
        dataset = make_matching_dataset(num_entities=100, seed=1)
        candidates = block_candidates(dataset.records, fields=("name", "city"))
        assert len(candidates) < len(all_pairs(dataset.records)) / 2


class TestSimulatedLLM:
    def test_deterministic(self):
        a = SimulatedLLM(accuracy=0.7, seed=1)
        b = SimulatedLLM(accuracy=0.7, seed=1)
        answers_a = [a.judge(f"q{i}", True) for i in range(50)]
        answers_b = [b.judge(f"q{i}", True) for i in range(50)]
        assert answers_a == answers_b

    def test_perfect_accuracy_never_errs(self):
        llm = SimulatedLLM(accuracy=1.0)
        assert all(llm.judge(f"q{i}", i % 2 == 0) == (i % 2 == 0) for i in range(100))

    def test_error_rate_scales_with_difficulty(self):
        hard = SimulatedLLM(accuracy=0.7, seed=2)
        easy = SimulatedLLM(accuracy=0.7, seed=2)
        hard_errs = sum(not hard.judge(f"q{i}", True, difficulty=1.0) for i in range(400))
        easy_errs = sum(not easy.judge(f"q{i}", True, difficulty=0.1) for i in range(400))
        assert hard_errs > easy_errs
        assert 60 < hard_errs < 180  # ~30% of 400
        assert easy_errs < 10

    def test_usage_metering(self):
        llm = SimulatedLLM(cost_per_1k_tokens=2.0)
        llm.judge("x" * 4000, True)
        assert llm.usage.calls == 1
        assert llm.usage.input_tokens == 1000
        assert llm.usage.cost == pytest.approx(2.0)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            SimulatedLLM(accuracy=1.5)


class TestEvaluatePairs:
    def test_perfect(self):
        assert evaluate_pairs({(1, 2)}, {(2, 1)}) == (1.0, 1.0, 1.0)

    def test_empty_prediction(self):
        precision, recall, f1 = evaluate_pairs(set(), {(1, 2)})
        assert (precision, recall, f1) == (0.0, 0.0, 0.0)

    def test_mixed(self):
        precision, recall, f1 = evaluate_pairs({(1, 2), (3, 4)}, {(1, 2), (5, 6)})
        assert precision == 0.5 and recall == 0.5 and f1 == 0.5

    def test_both_empty(self):
        assert evaluate_pairs(set(), set()) == (1.0, 1.0, 1.0)


class TestMatchers:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_matching_dataset(num_entities=100, seed=11)

    def run(self, matcher, dataset, accuracy=0.9):
        llm = SimulatedLLM(accuracy=accuracy, seed=3)
        return matcher.run(dataset, make_oracle(dataset, llm))

    def test_perfect_llm_all_pairs_is_perfect(self, dataset):
        report = self.run(LLMAllPairsMatcher(), dataset, accuracy=1.0)
        assert report.f1 == 1.0

    def test_frontier_shape(self, dataset):
        """E7's claim: the cascade reaches ~all-pairs quality at a tiny
        fraction of the LLM cost."""
        similarity = self.run(SimilarityMatcher(), dataset)
        cascade = self.run(CascadeMatcher(), dataset)
        blocked = self.run(BlockedLLMMatcher(), dataset)
        all_pairs_run = self.run(LLMAllPairsMatcher(), dataset)
        # Quality: cascade ≥ 85% of the all-pairs F1 and above similarity-only.
        assert cascade.f1 >= 0.85 * all_pairs_run.f1
        assert cascade.f1 > similarity.f1
        # Cost: strictly ordered.
        assert similarity.llm_cost == 0.0
        assert cascade.llm_cost < 0.25 * blocked.llm_cost
        assert blocked.llm_cost < all_pairs_run.llm_cost

    def test_cascade_threshold_validation(self):
        with pytest.raises(ValueError):
            CascadeMatcher(accept=0.3, reject=0.5)

    def test_similarity_matcher_threshold_tradeoff(self, dataset):
        strict = self.run(SimilarityMatcher(0.8), dataset)
        loose = self.run(SimilarityMatcher(0.3), dataset)
        assert strict.precision >= loose.precision
        assert loose.recall >= strict.recall

    def test_dataset_determinism(self):
        a = make_matching_dataset(num_entities=30, seed=9)
        b = make_matching_dataset(num_entities=30, seed=9)
        assert a.records == b.records
        assert a.true_pairs == b.true_pairs


class TestSchemaMatching:
    def test_name_and_type_alignment(self):
        matches = match_schemas(
            [Column("customer_id", DataType.INTEGER), Column("full_name", DataType.TEXT)],
            [Column("cust_id", DataType.INTEGER), Column("name_full", DataType.TEXT)],
        )
        mapping = {m.left: m.right for m in matches}
        assert mapping["customer_id"] == "cust_id"
        assert mapping["full_name"] == "name_full"

    def test_instances_break_name_ties(self):
        matches = match_schemas(
            [Column("code", DataType.TEXT)],
            [Column("code_a", DataType.TEXT), Column("code_b", DataType.TEXT)],
            left_samples={"code": ["x1", "x2", "x3"]},
            right_samples={"code_a": ["y1", "y2"], "code_b": ["x1", "x2", "x3"]},
        )
        assert matches[0].right == "code_b"

    def test_one_to_one(self):
        matches = match_schemas(
            [Column("a_name", DataType.TEXT), Column("b_name", DataType.TEXT)],
            [Column("name", DataType.TEXT)],
        )
        assert len(matches) == 1

    def test_threshold_prunes_garbage(self):
        matches = match_schemas(
            [Column("zzz_qqq", DataType.INTEGER)],
            [Column("alpha", DataType.TEXT)],
            threshold=0.5,
        )
        assert matches == []

    def test_incompatible_types_score_low(self):
        with_types = match_schemas(
            [Column("value", DataType.INTEGER)],
            [Column("value", DataType.TEXT), Column("value2", DataType.INTEGER)],
        )
        assert with_types[0].type_score in (0.0, 1.0, 0.7)


@settings(max_examples=50, deadline=None)
@given(st.text(max_size=20), st.text(max_size=20), st.text(max_size=20))
def test_levenshtein_triangle_inequality_property(a, b, c):
    assert levenshtein_distance(a, c) <= (
        levenshtein_distance(a, b) + levenshtein_distance(b, c)
    )
