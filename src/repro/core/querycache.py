"""Query-result caching with write invalidation.

An LRU of fully-materialized SELECT results keyed by (SQL text, engine).
Every cached entry records the base tables it read; any write (DML, DDL,
rollback) to one of those tables evicts the affected entries, so readers
can never observe stale data.  The feature is off by default — construct
``Database(result_cache_size=N)`` to enable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.sql import ast

CacheKey = Tuple[str, str]  # (sql text, engine)


@dataclass
class QueryCacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    columns: List[str]
    rows: list
    tables: FrozenSet[str]


class QueryCache:
    """LRU result cache with per-table invalidation."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self.stats = QueryCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[_Entry]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: CacheKey, columns: List[str], rows: list, tables: Set[str]) -> None:
        self._entries[key] = _Entry(columns, rows, frozenset(t.lower() for t in tables))
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_tables(self, tables: Iterable[str]) -> int:
        """Evict entries reading any of ``tables``; returns evictions."""
        lowered = {t.lower() for t in tables}
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.tables & lowered
        ]
        for key in doomed:
            del self._entries[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self.stats.invalidations += len(self._entries)
        self._entries.clear()


def referenced_tables(statement: ast.Statement) -> Optional[Set[str]]:
    """Base tables a query reads, or None when analysis is incomplete.

    Walks FROM clauses plus every subquery inside expressions; any
    construct this walker does not recognize disables caching for the
    statement (conservative).
    """
    tables: Set[str] = set()

    def walk_from(item) -> bool:
        if item is None:
            return True
        if isinstance(item, ast.TableRef):
            tables.add(item.name.lower())
            return True
        if isinstance(item, ast.Join):
            return walk_from(item.left) and walk_from(item.right)
        return False

    def walk_expr(expr) -> bool:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Subquery):
                if not walk_statement(node.select):
                    return False
            if isinstance(node, ast.ExistsExpr):
                if not walk_statement(node.subquery.select):
                    return False
        return True

    def walk_select(stmt: ast.SelectStmt) -> bool:
        if not walk_from(stmt.from_item):
            return False
        exprs = [i.expr for i in stmt.items]
        if stmt.where is not None:
            exprs.append(stmt.where)
        if stmt.having is not None:
            exprs.append(stmt.having)
        exprs.extend(stmt.group_by)
        exprs.extend(i.expr for i in stmt.order_by)
        return all(walk_expr(e) for e in exprs)

    def walk_statement(stmt) -> bool:
        if isinstance(stmt, ast.SelectStmt):
            return walk_select(stmt)
        if isinstance(stmt, ast.SetOpStmt):
            return (
                walk_statement(stmt.left)
                and walk_statement(stmt.right)
                and all(walk_expr(i.expr) for i in stmt.order_by)
            )
        return False

    if not walk_statement(statement):
        return None
    return tables
