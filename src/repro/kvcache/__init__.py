"""LLM KV-cache simulation with database buffer-management policies.

Paolo Papotti's panel example — "the key-value cache of LLMs and its
connection to buffering to reduce inference time and cost" — made literal:
the cache manager here evicts KV *blocks* (paged-attention style, keyed by
token-prefix hashes) using the **exact same policy classes** that evict
pages in :mod:`repro.storage.buffer` (`repro.storage.replacement`).

Experiment E5 replays a serving trace with shared system prompts under each
policy and reports hit rate, recomputed tokens, and modeled latency.
"""

from repro.kvcache.manager import CacheStats, KVCacheManager
from repro.kvcache.simulator import SimulationReport, run_simulation
from repro.kvcache.workload import ServingRequest, ServingTrace, make_trace

__all__ = [
    "KVCacheManager",
    "CacheStats",
    "run_simulation",
    "SimulationReport",
    "ServingRequest",
    "ServingTrace",
    "make_trace",
]
