"""Plan-invariant verifier overhead on the TPC-H-like suite.

Measures end-to-end query latency with ``verify_plans`` off vs. on, in two
regimes:

* **cached** (default configuration, plan cache enabled) — the verifier
  runs only on the first planning of each query text, so steady-state
  overhead must stay within the acceptance budget (<= 10%);
* **cold** (plan cache disabled) — every execution replans and re-verifies;
  reported for information, as the worst case the verifier can cost.

Writes ``BENCH_verify.json`` next to this script.

Usage: python benchmarks/bench_verify_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_json import write_report  # noqa: E402
from repro.core.database import Database  # noqa: E402
from repro.workloads.tpch import TPCH_QUERIES, load_tpch  # noqa: E402

OVERHEAD_BUDGET_PCT = 10.0  # acceptance: cached overhead <= 10%


def _build(verify: bool, cold: bool, scale_factor: float) -> Database:
    db = Database(
        verify_plans=verify,
        plan_cache_size=0 if cold else 128,
    )
    load_tpch(db, scale_factor=scale_factor, seed=0)
    db.execute("ANALYZE")
    return db


def _time_suite(db: Database, repeats: int) -> float:
    """Median over `repeats` of one full pass over all queries (ms)."""
    queries = [make_sql() for make_sql in TPCH_QUERIES.values()]
    for sql in queries:  # warm plan cache / interpreter
        db.execute(sql)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for sql in queries:
            db.execute(sql)
        samples.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(samples)


def run(scale_factor: float, repeats: int) -> dict:
    results = {"scale_factor": scale_factor, "queries": sorted(TPCH_QUERIES)}
    for regime, cold in (("cached", False), ("cold", True)):
        base_ms = _time_suite(_build(False, cold, scale_factor), repeats)
        verified_ms = _time_suite(_build(True, cold, scale_factor), repeats)
        overhead_pct = (verified_ms / base_ms - 1.0) * 100.0
        results[regime] = {
            "baseline_ms": round(base_ms, 2),
            "verify_on_ms": round(verified_ms, 2),
            "overhead_pct": round(overhead_pct, 2),
        }
    results["budget_pct"] = OVERHEAD_BUDGET_PCT
    results["within_budget"] = (
        results["cached"]["overhead_pct"] <= OVERHEAD_BUDGET_PCT
    )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small scale, fewer repeats")
    parser.add_argument("--scale-factor", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    scale_factor = args.scale_factor or (0.02 if args.quick else 0.05)
    repeats = args.repeats or (3 if args.quick else 5)

    results = run(scale_factor, repeats)
    out_path = write_report("verify", results)

    for regime in ("cached", "cold"):
        r = results[regime]
        print(
            f"{regime:>7}: baseline {r['baseline_ms']:.1f} ms, "
            f"verify-on {r['verify_on_ms']:.1f} ms "
            f"({r['overhead_pct']:+.1f}%)"
        )
    status = "PASS" if results["within_budget"] else "FAIL"
    print(
        f"cached-regime budget (<= {OVERHEAD_BUDGET_PCT:.0f}%): {status} "
        f"-> {out_path}"
    )
    return 0 if results["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
