"""Shared constants for the experiment benchmarks."""

E1_SCALE_FACTORS = [0.05, 0.1, 0.25, 0.5]
EMBED_DIM = 16
