"""Benchmark harness: timing, energy model, and table-formatted reporting."""

from repro.bench.energy import EnergyModel, EnergyReport
from repro.bench.harness import Timer, format_table, geometric_mean, time_call

__all__ = [
    "Timer",
    "time_call",
    "format_table",
    "geometric_mean",
    "EnergyModel",
    "EnergyReport",
]
