"""Classic top-k rank aggregation: Fagin's TA and NRA.

The paper's panelist statement (Amer-Yahia) cites exactly this lineage:
"viewing database query processing from the perspective of information
retrieval led us to top-k query processing."  These are the canonical
algorithms of that line of work:

* **TA (Threshold Algorithm)** — sorted access round-robin over per-source
  ranked lists plus random access to complete each seen object's score;
  stops when the k-th best score ≥ the threshold (sum of the last-seen
  scores per source).  Instance-optimal when random access is available.
* **NRA (No Random Access)** — maintains lower/upper score bounds from
  sorted access only; stops when the k-th best lower bound ≥ every other
  candidate's upper bound.

Both operate on any monotone aggregation (default: weighted sum) and count
their accesses, so tests and ablations can verify TA/NRA touch far fewer
entries than a full scan while returning exactly the same top-k.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ReproError

#: One source: a list of (object_id, score) sorted by score descending.
RankedList = Sequence[Tuple[Any, float]]


@dataclass
class TopKResult:
    """Top-k answer plus the access accounting the ablation reports."""

    items: List[Tuple[Any, float]]
    sorted_accesses: int = 0
    random_accesses: int = 0
    rounds: int = 0

    def ids(self) -> List[Any]:
        return [obj for obj, _ in self.items]


def _validate(lists: Sequence[RankedList]) -> None:
    if not lists:
        raise ReproError("top-k aggregation needs at least one ranked list")
    for i, ranked in enumerate(lists):
        scores = [s for _, s in ranked]
        if any(b > a for a, b in zip(scores, scores[1:])):
            pass  # ascending pair found below; explicit loop for clarity
        for a, b in zip(scores, scores[1:]):
            if b > a + 1e-12:
                raise ReproError(f"ranked list {i} is not sorted descending")


def _default_agg(scores: Sequence[float]) -> float:
    return sum(scores)


def full_scan_topk(
    lists: Sequence[RankedList],
    k: int,
    aggregate: Callable[[Sequence[float]], float] = _default_agg,
    missing_score: float = 0.0,
) -> TopKResult:
    """The baseline: materialize every object's full score, then sort."""
    _validate(lists)
    per_source: List[Dict[Any, float]] = [dict(ranked) for ranked in lists]
    accesses = sum(len(ranked) for ranked in lists)
    universe = set()
    for source in per_source:
        universe.update(source)
    scored = [
        (obj, aggregate([source.get(obj, missing_score) for source in per_source]))
        for obj in universe
    ]
    scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
    return TopKResult(scored[:k], sorted_accesses=accesses)


def threshold_algorithm(
    lists: Sequence[RankedList],
    k: int,
    aggregate: Callable[[Sequence[float]], float] = _default_agg,
    missing_score: float = 0.0,
) -> TopKResult:
    """Fagin's TA: round-robin sorted access + random access completion."""
    _validate(lists)
    if k < 1:
        raise ReproError("k must be >= 1")
    per_source: List[Dict[Any, float]] = [dict(ranked) for ranked in lists]
    result = TopKResult(items=[])
    best: Dict[Any, float] = {}
    last_seen: List[Optional[float]] = [None] * len(lists)
    depth = 0
    max_depth = max(len(ranked) for ranked in lists)
    while depth < max_depth:
        for source_idx, ranked in enumerate(lists):
            if depth >= len(ranked):
                continue
            obj, score = ranked[depth]
            result.sorted_accesses += 1
            last_seen[source_idx] = score
            if obj not in best:
                # Random access to every other source for the full score.
                scores = []
                for other_idx, source in enumerate(per_source):
                    if other_idx == source_idx:
                        scores.append(score)
                        continue
                    result.random_accesses += 1
                    scores.append(source.get(obj, missing_score))
                best[obj] = aggregate(scores)
        depth += 1
        result.rounds = depth
        # Threshold: the best score any unseen object could still have.
        if all(s is not None for s in last_seen):
            threshold = aggregate([s for s in last_seen])
            top = heapq.nlargest(k, best.items(), key=lambda kv: (kv[1], str(kv[0])))
            if len(top) >= k and top[-1][1] >= threshold:
                break
    ordered = sorted(best.items(), key=lambda kv: (-kv[1], str(kv[0])))[:k]
    result.items = ordered
    return result


@dataclass
class _NRACandidate:
    lower: float
    known: Dict[int, float] = field(default_factory=dict)


def no_random_access(
    lists: Sequence[RankedList],
    k: int,
    missing_score: float = 0.0,
) -> TopKResult:
    """NRA for weighted-sum aggregation (bounds need linearity).

    Sorted access only; maintains [lower, upper] score bounds per seen
    object and stops when the k-th lower bound dominates every competing
    upper bound.
    """
    _validate(lists)
    if k < 1:
        raise ReproError("k must be >= 1")
    result = TopKResult(items=[])
    candidates: Dict[Any, _NRACandidate] = {}
    last_seen: List[float] = [ranked[0][1] if ranked else missing_score for ranked in lists]
    exhausted: List[bool] = [not ranked for ranked in lists]
    depth = 0
    max_depth = max(len(ranked) for ranked in lists)
    while depth < max_depth:
        for source_idx, ranked in enumerate(lists):
            if depth >= len(ranked):
                if depth == len(ranked):
                    exhausted[source_idx] = True
                    last_seen[source_idx] = missing_score
                continue
            obj, score = ranked[depth]
            result.sorted_accesses += 1
            last_seen[source_idx] = score
            entry = candidates.setdefault(obj, _NRACandidate(0.0))
            entry.known[source_idx] = score
            entry.lower = sum(entry.known.values())
        depth += 1
        result.rounds = depth

        def upper(entry: _NRACandidate) -> float:
            total = 0.0
            for source_idx in range(len(lists)):
                if source_idx in entry.known:
                    total += entry.known[source_idx]
                elif exhausted[source_idx]:
                    total += missing_score
                else:
                    total += last_seen[source_idx]
            return total

        ranked_now = sorted(
            candidates.items(), key=lambda kv: (-kv[1].lower, str(kv[0]))
        )
        if len(ranked_now) >= k:
            kth_lower = ranked_now[k - 1][1].lower
            contenders = ranked_now[k:]
            threshold_unseen = sum(last_seen)
            if kth_lower >= threshold_unseen and all(
                kth_lower >= upper(entry) for _, entry in contenders
            ):
                break
    final = sorted(candidates.items(), key=lambda kv: (-kv[1].lower, str(kv[0])))[:k]
    result.items = [(obj, entry.lower) for obj, entry in final]
    return result
