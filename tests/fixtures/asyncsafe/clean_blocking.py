"""Fixture: the same work as bad_blocking.py, done safely.

Blocking calls shipped to worker threads via ``run_in_executor`` /
``asyncio.to_thread`` never run on the event loop, so nothing here should
be flagged.  Passing a bound method *reference* (not calling it) is the
idiom the real server uses.
"""

import asyncio
import time


def slow_helper() -> None:
    time.sleep(0.5)


async def shipped_to_executor() -> None:
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, slow_helper)


async def shipped_to_thread() -> None:
    await asyncio.to_thread(slow_helper)


async def native_sleep() -> None:
    await asyncio.sleep(1.0)
