"""Durability integration tests: file-backed pages + WAL crash recovery."""

import pytest

from repro.core.database import Database
from repro.core.errors import CatalogError

DDL = "CREATE TABLE accounts (id INTEGER NOT NULL, owner TEXT, balance FLOAT)"


class TestFileBackedDatabase:
    def test_pages_persist_through_flush(self, tmp_path):
        path = str(tmp_path / "data.db")
        db = Database(path=path)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(i,) for i in range(100)])
        db.close()
        import os

        assert os.path.getsize(path) > 0

    def test_reads_after_eviction_hit_disk(self, tmp_path):
        path = str(tmp_path / "small.db")
        db = Database(path=path, buffer_capacity=2)
        db.execute("CREATE TABLE t (a INTEGER, pad TEXT)")
        db.insert_rows("t", [(i, "x" * 500) for i in range(100)])
        total = db.execute("SELECT COUNT(*) FROM t").scalar()
        assert total == 100
        assert db.disk.reads > 0  # the tiny pool forced real I/O
        db.close()


class TestWALRecovery:
    def _run_crashing_workload(self, wal_path: str) -> None:
        """Committed work + an in-flight transaction, then a 'crash'
        (the database object is dropped without close)."""
        db = Database(wal_path=wal_path)
        db.execute(DDL)
        db.execute(
            "INSERT INTO accounts VALUES (1, 'alice', 100.0), (2, 'bob', 50.0)"
        )
        db.execute("BEGIN")
        db.execute("UPDATE accounts SET balance = balance - 30 WHERE id = 1")
        db.execute("UPDATE accounts SET balance = balance + 30 WHERE id = 2")
        db.execute("COMMIT")
        db.execute("BEGIN")
        db.execute("UPDATE accounts SET balance = 0")  # never commits
        db.execute("INSERT INTO accounts VALUES (3, 'eve', 1000000.0)")
        db.wal.flush()  # even flushed uncommitted work must not survive

    def test_committed_state_restored(self, tmp_path):
        wal_path = str(tmp_path / "txn.wal")
        self._run_crashing_workload(wal_path)

        recovered = Database()
        recovered.execute(DDL)
        restored = recovered.restore_from_wal(wal_path)
        assert restored == {"accounts": 2}
        rows = recovered.execute(
            "SELECT id, owner, balance FROM accounts ORDER BY id"
        ).rows
        assert rows == [(1, "alice", 70.0), (2, "bob", 80.0)]

    def test_uncommitted_money_never_appears(self, tmp_path):
        wal_path = str(tmp_path / "txn2.wal")
        self._run_crashing_workload(wal_path)
        recovered = Database()
        recovered.execute(DDL)
        recovered.restore_from_wal(wal_path)
        assert recovered.execute(
            "SELECT COUNT(*) FROM accounts WHERE owner = 'eve'"
        ).scalar() == 0
        total = recovered.execute("SELECT SUM(balance) FROM accounts").scalar()
        assert total == 150.0  # money conserved across the transfer

    def test_restore_requires_schema(self, tmp_path):
        wal_path = str(tmp_path / "txn3.wal")
        self._run_crashing_workload(wal_path)
        fresh = Database()
        with pytest.raises(CatalogError, match="recreate its schema"):
            fresh.restore_from_wal(wal_path)

    def test_restore_is_queryable_and_writable(self, tmp_path):
        wal_path = str(tmp_path / "txn4.wal")
        self._run_crashing_workload(wal_path)
        recovered = Database()
        recovered.execute(DDL)
        recovered.restore_from_wal(wal_path)
        recovered.execute("INSERT INTO accounts VALUES (4, 'dan', 5.0)")
        assert recovered.execute("SELECT COUNT(*) FROM accounts").scalar() == 3

    def test_deleted_rows_stay_deleted(self, tmp_path):
        wal_path = str(tmp_path / "txn5.wal")
        db = Database(wal_path=wal_path)
        db.execute(DDL)
        db.execute("INSERT INTO accounts VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
        db.execute("DELETE FROM accounts WHERE id = 1")
        db.wal.flush()

        recovered = Database()
        recovered.execute(DDL)
        recovered.restore_from_wal(wal_path)
        assert recovered.execute("SELECT COUNT(*) FROM accounts").scalar() == 1
        assert recovered.execute("SELECT owner FROM accounts").scalar() == "b"
