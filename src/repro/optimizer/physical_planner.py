"""Physical planning: access paths and join algorithms.

Lowers an (already rewritten) logical plan to a physical tree:

* ``Filter(Scan)`` chooses between a sequential scan and an index scan by
  comparing cost-model estimates for every usable index predicate;
* inner/left joins with extractable equality keys become hash joins, the
  rest nested loops;
* ``Limit(Sort)`` plants a top-N hint on the sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.catalog.catalog import Catalog, IndexInfo, TableInfo
from repro.core.errors import PlanError
from repro.exec import physical as phys
from repro.optimizer.cardinality import Estimator
from repro.optimizer.cost import CostModel
from repro.optimizer.rules import extract_equi_keys
from repro.plan import logical
from repro.plan.expressions import (
    BoundBinary,
    BoundColumn,
    BoundExpr,
    BoundLiteral,
    BoundParam,
    conjoin,
    split_conjuncts,
)


@dataclass
class PlannerFlags:
    """Feature switches (E9's ablations flip these)."""

    enable_index_scan: bool = True
    enable_hash_join: bool = True
    enable_topn_sort: bool = True
    #: 0 disables the parallelism pass; 1 keeps exchange operators but runs
    #: their morsels inline (the overhead-measurement configuration); >= 2
    #: fans morsels out to the shared worker pool.
    workers: int = 0
    morsel_size: int = 8192
    #: Tables below this row count stay serial: morsel dispatch overhead
    #: would dominate.  Tests force parallel plans by setting it to 0.
    parallel_min_rows: int = 2048
    #: Radix partition count for parallel joins; 0 picks workers * 4
    #: (enough partitions that LPT scheduling absorbs skew).
    join_partitions: int = 0


#: Aggregate functions with a known partial-state decomposition.
_PARALLEL_AGG_FUNCS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass
class _IndexChoice:
    index: IndexInfo
    column_index: int
    eq_value: Any = None
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True
    consumed: Tuple[int, ...] = ()  # positions in the conjunct list
    estimated_rows: float = 0.0


class PhysicalPlanner:
    """Lowers logical plans to physical plans."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        flags: Optional[PlannerFlags] = None,
    ):
        self.catalog = catalog
        self.cost = cost_model if cost_model is not None else CostModel()
        self.flags = flags if flags is not None else PlannerFlags()
        self.estimator = Estimator(catalog)

    # ------------------------------------------------------------------

    def plan(self, node: logical.LogicalPlan) -> phys.PhysicalPlan:
        rows = self.estimator.estimate(node)
        if isinstance(node, logical.Scan):
            return phys.PSeqScan(node.table, node.alias, node.schema, rows)
        if isinstance(node, logical.Values):
            return phys.PValues(node.rows, node.schema, rows)
        if isinstance(node, logical.Filter):
            return self._plan_filter(node, rows)
        if isinstance(node, logical.Project):
            child = self.plan(node.child)
            return phys.PProject(child, node.exprs, node.output_schema(), rows)
        if isinstance(node, logical.Join):
            return self._plan_join(node, rows)
        if isinstance(node, logical.Aggregate):
            child = self.plan(node.child)
            return phys.PAggregate(
                child, node.group_exprs, node.aggregates, node.output_schema(), rows
            )
        if isinstance(node, logical.Sort):
            child = self.plan(node.child)
            return phys.PSort(child, node.keys, node.output_schema(), rows)
        if isinstance(node, logical.Limit):
            child = self.plan(node.child)
            if (
                self.flags.enable_topn_sort
                and isinstance(child, phys.PSort)
                and node.limit is not None
            ):
                child.limit_hint = node.limit + (node.offset or 0)
            return phys.PLimit(child, node.limit, node.offset, node.output_schema(), rows)
        if isinstance(node, logical.Distinct):
            child = self.plan(node.child)
            return phys.PDistinct(child, node.output_schema(), rows)
        if isinstance(node, logical.SetOp):
            return phys.PSetOp(
                self.plan(node.left),
                self.plan(node.right),
                node.kind,
                node.all,
                node.output_schema(),
                rows,
            )
        raise PlanError(f"cannot lower {type(node).__name__} to a physical plan")

    # -- filter / access path ------------------------------------------------

    def _plan_filter(self, node: logical.Filter, rows: float) -> phys.PhysicalPlan:
        if self.flags.enable_index_scan and isinstance(node.child, logical.Scan):
            scan = node.child
            table = self.catalog.get_table(scan.table)
            choice = self._choose_index(table, scan, node.predicate)
            if choice is not None:
                conjuncts = list(split_conjuncts(node.predicate))
                residual = conjoin(
                    [c for i, c in enumerate(conjuncts) if i not in choice.consumed]
                )
                return phys.PIndexScan(
                    table=scan.table,
                    alias=scan.alias,
                    schema=scan.schema,
                    index_name=choice.index.name,
                    column_index=choice.column_index,
                    eq_value=choice.eq_value,
                    low=choice.low,
                    high=choice.high,
                    include_low=choice.include_low,
                    include_high=choice.include_high,
                    residual=residual,
                    cardinality=rows,
                )
        child = self.plan(node.child)
        return phys.PFilter(child, node.predicate, node.output_schema(), rows)

    def _choose_index(
        self, table: TableInfo, scan: logical.Scan, predicate: BoundExpr
    ) -> Optional[_IndexChoice]:
        conjuncts = list(split_conjuncts(predicate))
        table_rows = float(max(table.row_count, 1))
        snapshot = table.stats_snapshot()
        pages = max(snapshot.page_count, 1)
        seq_cost = self.cost.seq_scan(pages, table_rows) + self.cost.filter(
            table_rows, len(conjuncts)
        )
        best: Optional[_IndexChoice] = None
        best_cost = seq_cost
        origins = self.estimator.origins(scan)
        for pos, conjunct in enumerate(conjuncts):
            candidate = self._match_index_conjunct(table, conjunct, pos)
            if candidate is None:
                continue
            sel = self.estimator.selectivity(conjunct, origins)
            matching = table_rows * sel
            candidate.estimated_rows = matching
            cost = self.cost.index_scan(matching) + self.cost.filter(
                matching, len(conjuncts) - 1
            )
            if cost < best_cost:
                best = candidate
                best_cost = cost
        return best

    def _match_index_conjunct(
        self, table: TableInfo, conjunct: BoundExpr, position: int
    ) -> Optional[_IndexChoice]:
        if not isinstance(conjunct, BoundBinary):
            return None
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(right, BoundColumn) and isinstance(left, (BoundLiteral, BoundParam)):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not (
            isinstance(left, BoundColumn)
            and isinstance(right, (BoundLiteral, BoundParam))
        ):
            return None
        if isinstance(right, BoundLiteral):
            if right.value is None:
                return None
            probe = right.value
        else:
            # Parameter placeholder: the executor resolves the BoundParam's
            # current value on every run, so prepared plans keep index access.
            probe = right
        column_name = table.schema[left.index].name
        if op == "=":
            info = table.index_on(column_name)
            if info is None:
                return None
            return _IndexChoice(info, left.index, eq_value=probe, consumed=(position,))
        if op in ("<", "<=", ">", ">="):
            info = table.index_on(column_name, kind_filter="btree")
            if info is None:
                return None
            if op in ("<", "<="):
                return _IndexChoice(
                    info,
                    left.index,
                    high=probe,
                    include_high=(op == "<="),
                    consumed=(position,),
                )
            return _IndexChoice(
                info,
                left.index,
                low=probe,
                include_low=(op == ">="),
                consumed=(position,),
            )
        return None

    # -- parallelism ---------------------------------------------------------

    def parallelize(self, plan: phys.PhysicalPlan) -> phys.PhysicalPlan:
        """Rewrite eligible subtrees into exchange operators.

        The decision pass is deliberately conservative — the serial plan is
        always the fallback:

        * only ``Project(Filter(SeqScan))`` chains (either stage optional)
          become parallel scans; index scans keep their access-path order
          and stay serial;
        * tables under ``parallel_min_rows`` stay serial (morsel dispatch
          would cost more than it saves);
        * aggregates parallelize only when every function has a partial
          decomposition; hash joins and sorts only when their probe side /
          input is an eligible chain.

        Everything the pass leaves serial executes exactly as before, so a
        parallel plan is always a drop-in replacement — and the ordered
        gather in :mod:`repro.exec.parallel` means even row *order* matches.
        """
        if self.flags.workers <= 0:
            return plan
        return self._parallelize(plan)

    def _parallel_chain(self, node: phys.PhysicalPlan) -> Optional[phys.PParallelScan]:
        """A PParallelScan for a Project/Filter/SeqScan chain, else None."""
        project: Optional[phys.PProject] = None
        filter_: Optional[phys.PFilter] = None
        cur = node
        if isinstance(cur, phys.PProject):
            project, cur = cur, cur.child
        if isinstance(cur, phys.PFilter):
            filter_, cur = cur, cur.child
        if not isinstance(cur, phys.PSeqScan):
            return None
        table = self.catalog.get_table(cur.table)
        if table.row_count < self.flags.parallel_min_rows:
            return None
        return phys.PParallelScan(
            table=cur.table,
            alias=cur.alias,
            base_schema=cur.schema,
            predicate=filter_.predicate if filter_ is not None else None,
            exprs=project.exprs if project is not None else None,
            schema=node.schema,
            workers=self.flags.workers,
            morsel_size=self.flags.morsel_size,
            cardinality=node.estimated_rows(),
        )

    def _parallelize(self, node: phys.PhysicalPlan) -> phys.PhysicalPlan:
        chain = self._parallel_chain(node)
        if chain is not None:
            return chain
        if isinstance(node, phys.PAggregate):
            child_chain = self._parallel_chain(node.child)
            if child_chain is not None and all(
                spec.func in _PARALLEL_AGG_FUNCS for spec in node.aggregates
            ):
                return phys.PTwoPhaseAggregate(
                    child=child_chain,
                    group_exprs=node.group_exprs,
                    aggregates=node.aggregates,
                    schema=node.schema,
                    workers=self.flags.workers,
                    cardinality=node.cardinality,
                )
        if isinstance(node, phys.PHashJoin):
            left_chain = self._parallel_chain(node.left)
            if left_chain is not None:
                return phys.PPartitionedHashJoin(
                    left=left_chain,
                    right=self._parallelize(node.right),
                    kind=node.kind,
                    left_keys=node.left_keys,
                    right_keys=node.right_keys,
                    residual=node.residual,
                    schema=node.schema,
                    workers=self.flags.workers,
                    partitions=self.flags.join_partitions
                    or max(4, self.flags.workers * 4),
                    cardinality=node.cardinality,
                )
        if isinstance(node, phys.PSort):
            child_chain = self._parallel_chain(node.child)
            if child_chain is not None:
                # The top-N hint was planted by the Limit lowering before
                # this pass ran, so it transfers to the per-morsel sorts.
                return phys.PParallelSort(
                    child=child_chain,
                    keys=node.keys,
                    schema=node.schema,
                    workers=self.flags.workers,
                    limit_hint=node.limit_hint,
                    cardinality=node.cardinality,
                )
        for attr in ("child", "left", "right"):
            child = getattr(node, attr, None)
            if isinstance(child, phys.PhysicalPlan):
                setattr(node, attr, self._parallelize(child))
        return node

    # -- joins ------------------------------------------------------------------

    def _plan_join(self, node: logical.Join, rows: float) -> phys.PhysicalPlan:
        left = self.plan(node.left)
        right = self.plan(node.right)
        schema = node.output_schema()
        if (
            self.flags.enable_hash_join
            and node.condition is not None
            and node.kind in (logical.INNER, logical.LEFT_OUTER)
        ):
            left_width = len(node.left.output_schema())
            left_keys, right_keys, residual_parts = extract_equi_keys(
                node.condition, left_width
            )
            if left_keys:
                residual = conjoin(residual_parts)
                return phys.PHashJoin(
                    left,
                    right,
                    node.kind,
                    tuple(left_keys),
                    tuple(right_keys),
                    residual,
                    schema,
                    rows,
                )
        return phys.PNestedLoopJoin(left, right, node.kind, node.condition, schema, rows)
