"""thread-escaping-local: ``stats`` is a local of ``tally`` captured by
the nested ``worker`` closure, which is then shipped to a pool many times.
Each instance does an unlocked check-then-act on the same shared slot,
racing its siblings (lost updates on ``stats["n"]``)."""

from concurrent.futures import ThreadPoolExecutor


def tally(items):
    stats = {"n": 0}

    def worker(item):
        observe(item)
        stats["n"] = stats["n"] + 1  # MARK: escaping-write

    with ThreadPoolExecutor(4) as pool:
        for item in items:
            pool.submit(worker, item)
    return stats


def observe(item):
    return item
