"""``python -m repro`` — interactive SQL shell, or ``lint``/``sanitize``/``asynccheck``/``racecheck``/``check``/``serve`` subcommands."""

import sys

if len(sys.argv) > 1 and sys.argv[1] == "serve":
    from repro.net.serve import main as serve_main

    raise SystemExit(serve_main(sys.argv[2:]))

if len(sys.argv) > 1 and sys.argv[1] == "lint":
    from repro.analyze.cli import main as lint_main

    raise SystemExit(lint_main(sys.argv[2:]))

if len(sys.argv) > 1 and sys.argv[1] == "asynccheck":
    from repro.analyze.cli import asynccheck_main

    raise SystemExit(asynccheck_main(sys.argv[2:]))

if len(sys.argv) > 1 and sys.argv[1] == "racecheck":
    from repro.analyze.cli import racecheck_main

    raise SystemExit(racecheck_main(sys.argv[2:]))

if len(sys.argv) > 1 and sys.argv[1] == "check":
    from repro.analyze.cli import check_main

    raise SystemExit(check_main(sys.argv[2:]))

if len(sys.argv) > 1 and sys.argv[1] == "sanitize":
    from repro.analyze.sanitize_cli import main as sanitize_main

    raise SystemExit(sanitize_main(sys.argv[2:]))

from repro.cli import main

raise SystemExit(main())
