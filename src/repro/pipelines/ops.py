"""Dataset operators.

Records are plain dicts.  Every operator declares:

* ``reads`` — fields its function looks at,
* ``writes`` — fields it creates or mutates (empty for filters),
* ``cost_per_row`` — abstract CPU cost units per input row,
* ``gpu`` — whether the cost counts as accelerator time (tokenizers,
  embedders); the optimizer tries hardest to shrink the input of these.

Read/write sets give the rewriter exact commutation rules: ``a`` may move
before ``b`` iff ``a.reads ∩ b.writes = ∅`` (a never looks at anything b
produces) and ``a.writes ∩ (b.reads ∪ b.writes) = ∅``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.core.errors import PipelineError

Record = Dict[str, Any]


@dataclass(frozen=True)
class Op:
    """Base operator; concrete kinds below."""

    name: str
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    cost_per_row: float = 1.0
    gpu: bool = False

    def kind(self) -> str:
        return type(self).__name__.lower()

    def describe(self) -> str:
        tag = " [gpu]" if self.gpu else ""
        return f"{self.kind()}:{self.name}{tag}"


@dataclass(frozen=True)
class Filter(Op):
    """Keep records where ``fn(record)`` is truthy."""

    fn: Callable[[Record], bool] = None
    selectivity: float = 0.5  # estimated keep fraction (for ordering)

    def __post_init__(self):
        if self.fn is None:
            raise PipelineError(f"filter {self.name!r} needs a function")


@dataclass(frozen=True)
class Map(Op):
    """Transform each record (must return the record, possibly mutated copy)."""

    fn: Callable[[Record], Record] = None
    output_ratio: float = 1.0  # output bytes per input byte (estimate)

    def __post_init__(self):
        if self.fn is None:
            raise PipelineError(f"map {self.name!r} needs a function")


@dataclass(frozen=True)
class FlatMap(Op):
    """Expand each record into zero or more records."""

    fn: Callable[[Record], Iterable[Record]] = None
    fanout: float = 1.0

    def __post_init__(self):
        if self.fn is None:
            raise PipelineError(f"flatmap {self.name!r} needs a function")


@dataclass(frozen=True)
class Dedup(Op):
    """Drop records whose key was already seen (exact or minhash-banded)."""

    key: Callable[[Record], Any] = None
    method: str = "exact"  # "exact" | "minhash"
    num_hashes: int = 32
    bands: int = 8
    duplicate_fraction: float = 0.2  # estimated drop fraction

    def __post_init__(self):
        if self.key is None:
            raise PipelineError(f"dedup {self.name!r} needs a key function")
        if self.method not in ("exact", "minhash"):
            raise PipelineError(f"unknown dedup method {self.method!r}")
        if self.method == "minhash" and self.num_hashes % self.bands != 0:
            raise PipelineError("num_hashes must be divisible by bands")


@dataclass(frozen=True)
class Lookup(Op):
    """Enrich records by joining against a keyed side table.

    One match per record (first wins): ``how="inner"`` drops records with
    no match; ``how="left"`` keeps them with ``None`` for the taken fields.
    ``writes`` is exactly ``take`` — the fields copied from the side table.
    """

    key: Callable[[Record], Any] = None
    table: Dict[Any, Record] = None  # pre-keyed side input
    take: FrozenSet[str] = frozenset()
    how: str = "inner"
    match_fraction: float = 0.9  # estimated hit rate (for inner-join sizing)

    def __post_init__(self):
        if self.key is None or self.table is None:
            raise PipelineError(f"lookup {self.name!r} needs a key fn and a table")
        if self.how not in ("inner", "left"):
            raise PipelineError(f"unknown lookup how={self.how!r}")


@dataclass(frozen=True)
class Sample(Op):
    """Keep a deterministic pseudo-random fraction of records."""

    fraction: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.fraction <= 1.0:
            raise PipelineError("sample fraction must be in [0, 1]")


# --------------------------------------------------------------------------
# Execution helpers (used by the executor)
# --------------------------------------------------------------------------


def _stable_hash(text: str) -> int:
    """Process-independent 32-bit hash (str hash() is salted per run)."""
    import zlib

    return zlib.crc32(text.encode("utf-8"))


def minhash_signature(tokens: List[str], num_hashes: int, seed: int = 0) -> tuple:
    """MinHash signature of a token set (stable across runs)."""
    if not tokens:
        return (0,) * num_hashes
    sig = []
    for i in range(num_hashes):
        sig.append(min(_stable_hash(f"{seed}:{i}:{t}") for t in set(tokens)))
    return tuple(sig)


def minhash_bands(signature: tuple, bands: int) -> List[tuple]:
    """Split a signature into LSH bands; any shared band = near-duplicate."""
    rows = len(signature) // bands
    return [tuple(signature[b * rows : (b + 1) * rows]) for b in range(bands)]


def record_size(record: Record) -> int:
    """Approximate byte size of a record (cost accounting)."""
    total = 0
    for key, value in record.items():
        total += len(key)
        if isinstance(value, str):
            total += len(value)
        elif isinstance(value, (list, tuple)):
            total += 8 * len(value)
        else:
            total += 8
    return total


def sample_keeps(op: Sample, index: int) -> bool:
    """Deterministic per-record sampling decision."""
    rng = random.Random(f"{op.seed}:{index}")
    return rng.random() < op.fraction
