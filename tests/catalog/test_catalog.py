"""Tests for the catalog and table layer (repro.catalog.catalog)."""

import pytest

from repro.catalog.catalog import Catalog
from repro.core.errors import CatalogError, StorageError
from repro.core.types import Column, DataType, Schema
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


@pytest.fixture
def catalog():
    return Catalog(BufferPool(InMemoryDiskManager(), capacity=64))


SCHEMA = Schema(
    [
        Column("id", DataType.INTEGER, nullable=False),
        Column("name", DataType.TEXT),
        Column("score", DataType.FLOAT),
    ]
)


class TestTableLifecycle:
    def test_create_get_drop(self, catalog):
        catalog.create_table("t", SCHEMA)
        assert catalog.has_table("t")
        assert catalog.get_table("t").name == "t"
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_names_case_insensitive(self, catalog):
        catalog.create_table("MyTable", SCHEMA)
        assert catalog.has_table("mytable")
        assert catalog.get_table("MYTABLE").name == "MyTable"

    def test_duplicate_rejected(self, catalog):
        catalog.create_table("t", SCHEMA)
        with pytest.raises(CatalogError):
            catalog.create_table("T", SCHEMA)

    def test_drop_missing_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop_table("ghost")

    def test_table_names_sorted(self, catalog):
        for name in ("zeta", "alpha", "mid"):
            catalog.create_table(name, SCHEMA)
        assert catalog.table_names() == ["alpha", "mid", "zeta"]

    def test_schema_qualified_by_table(self, catalog):
        table = catalog.create_table("t", SCHEMA)
        assert table.schema.index_of("t.id") == 0

    def test_bad_layout_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_table("t", SCHEMA, layout="pax")


@pytest.mark.parametrize("layout", ["row", "column"])
class TestTableOps:
    def test_crud_round_trip(self, catalog, layout):
        table = catalog.create_table("t", SCHEMA, layout=layout)
        rid = table.insert((1, "a", 0.5))
        assert table.get(rid) == (1, "a", 0.5)
        new_rid = table.update(rid, (1, "b", 0.9))
        assert table.get(new_rid) == (1, "b", 0.9)
        removed = table.delete(new_rid)
        assert removed == (1, "b", 0.9)
        assert table.row_count == 0

    def test_delete_missing_rid(self, catalog, layout):
        table = catalog.create_table("t", SCHEMA, layout=layout)
        rid = table.insert((1, "a", 0.5))
        table.delete(rid)
        with pytest.raises(StorageError):
            table.delete(rid)

    def test_scan_order(self, catalog, layout):
        table = catalog.create_table("t", SCHEMA, layout=layout)
        table.insert_many([(i, f"r{i}", float(i)) for i in range(5)])
        assert [row[0] for row in table.scan_rows()] == [0, 1, 2, 3, 4]


class TestIndexMaintenance:
    def test_backfill_on_create(self, catalog):
        table = catalog.create_table("t", SCHEMA)
        rids = table.insert_many([(i, f"r{i}", float(i)) for i in range(10)])
        info = catalog.create_index("idx", "t", "id")
        assert info.structure.search(3) == [rids[3]]

    def test_insert_updates_index(self, catalog):
        table = catalog.create_table("t", SCHEMA)
        info = catalog.create_index("idx", "t", "id")
        rid = table.insert((42, "x", 1.0))
        assert info.structure.search(42) == [rid]

    def test_delete_updates_index(self, catalog):
        table = catalog.create_table("t", SCHEMA)
        info = catalog.create_index("idx", "t", "id")
        rid = table.insert((42, "x", 1.0))
        table.delete(rid)
        assert info.structure.search(42) == []

    def test_update_moves_index_entry(self, catalog):
        table = catalog.create_table("t", SCHEMA)
        info = catalog.create_index("idx", "t", "id")
        rid = table.insert((1, "x", 1.0))
        new_rid = table.update(rid, (2, "x", 1.0))
        assert info.structure.search(1) == []
        assert info.structure.search(2) == [new_rid]

    def test_null_keys_skipped_everywhere(self, catalog):
        table = catalog.create_table("t", SCHEMA)
        info = catalog.create_index("idx", "t", "score")
        rid = table.insert((1, "x", None))
        assert len(info.structure) == 0
        table.update(rid, (1, "x", 2.0))
        assert info.structure.search(2.0) == [rid]
        table.update(rid, (1, "x", None))
        assert len(info.structure) == 0

    def test_duplicate_index_name_rejected(self, catalog):
        catalog.create_table("t", SCHEMA)
        catalog.create_index("idx", "t", "id")
        with pytest.raises(CatalogError):
            catalog.create_index("idx", "t", "name")

    def test_unknown_kind_rejected(self, catalog):
        catalog.create_table("t", SCHEMA)
        with pytest.raises(CatalogError):
            catalog.create_index("idx", "t", "id", kind="bitmap")

    def test_hash_index_kind(self, catalog):
        table = catalog.create_table("t", SCHEMA)
        info = catalog.create_index("idx", "t", "name", kind="hash")
        rid = table.insert((1, "bob", 1.0))
        assert info.structure.search("bob") == [rid]
        assert not info.supports_range()

    def test_drop_index(self, catalog):
        catalog.create_table("t", SCHEMA)
        catalog.create_index("idx", "t", "id")
        catalog.drop_index("idx")
        assert catalog.get_table("t").index_on("id") is None
        with pytest.raises(CatalogError):
            catalog.drop_index("idx")

    def test_index_on_filters_by_kind(self, catalog):
        table = catalog.create_table("t", SCHEMA)
        catalog.create_index("h", "t", "id", kind="hash")
        assert table.index_on("id") is not None
        assert table.index_on("id", kind_filter="btree") is None


class TestAnalyze:
    def test_analyze_single_and_all(self, catalog):
        t1 = catalog.create_table("t1", SCHEMA)
        t2 = catalog.create_table("t2", SCHEMA)
        t1.insert((1, "a", 1.0))
        catalog.analyze("t1")
        assert t1.stats is not None and t2.stats is None
        catalog.analyze()
        assert t2.stats is not None
        assert t1.stats.row_count == 1
