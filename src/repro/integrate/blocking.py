"""Blocking: cheap candidate generation before expensive matching."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple


def token_blocks(
    records: Dict[int, Dict[str, str]],
    fields: Iterable[str],
    min_token_length: int = 3,
    max_block_size: int = 200,
) -> Dict[str, List[int]]:
    """Group record ids by shared tokens in the given fields.

    Overlong blocks (ubiquitous tokens like "inc") are dropped — the classic
    stop-block rule; without it blocking degenerates to all-pairs.
    """
    blocks: Dict[str, List[int]] = {}
    for record_id, record in records.items():
        seen: Set[str] = set()
        for field in fields:
            value = record.get(field) or ""
            for token in value.lower().split():
                if len(token) < min_token_length or token in seen:
                    continue
                seen.add(token)
                blocks.setdefault(token, []).append(record_id)
    return {
        token: ids for token, ids in blocks.items() if 2 <= len(ids) <= max_block_size
    }


def block_candidates(
    records: Dict[int, Dict[str, str]],
    fields: Iterable[str],
    min_token_length: int = 3,
    max_block_size: int = 200,
) -> Set[Tuple[int, int]]:
    """Candidate pairs: records co-occurring in at least one block."""
    candidates: Set[Tuple[int, int]] = set()
    for ids in token_blocks(records, fields, min_token_length, max_block_size).values():
        ordered = sorted(ids)
        for i in range(len(ordered)):
            for j in range(i + 1, len(ordered)):
                candidates.add((ordered[i], ordered[j]))
    return candidates


def all_pairs(record_ids: Iterable[int]) -> Set[Tuple[int, int]]:
    """Every unordered pair (the quadratic baseline blocking avoids)."""
    ordered = sorted(record_ids)
    return {
        (ordered[i], ordered[j])
        for i in range(len(ordered))
        for j in range(i + 1, len(ordered))
    }


def pair_completeness(
    candidates: Set[Tuple[int, int]], true_pairs: Set[Tuple[int, int]]
) -> float:
    """Fraction of true matches surviving blocking (blocking recall)."""
    if not true_pairs:
        return 1.0
    normalized = {tuple(sorted(p)) for p in true_pairs}
    return len(candidates & normalized) / len(normalized)
