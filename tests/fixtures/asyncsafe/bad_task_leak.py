"""Fixture: fire-and-forget tasks with no strong reference (rule 4).

The event loop keeps only a weak reference to tasks; a task whose handle
is dropped can be garbage-collected mid-flight, and its exceptions vanish.
"""

import asyncio


async def worker(n: int) -> None:
    await asyncio.sleep(0)


async def fire_and_forget() -> None:
    asyncio.create_task(worker(1))  # MARK: discarded-task


async def bound_and_dropped() -> None:
    task = asyncio.create_task(worker(2))  # MARK: bound-unused-task
    print("handle never awaited or stored")


async def ensured() -> None:
    asyncio.ensure_future(worker(3))  # MARK: discarded-ensure-future
