"""Hybrid search: vectors + keywords + relational filters in one query.

The panel's claim — "solutions are crappy when you combine diverse
workloads" — demonstrated live: a unified planner vs the three-services-
and-glue architecture on the same corpus.

Run:  python examples/hybrid_search.py
"""

import random

from repro.bench.harness import format_table
from repro.core.types import Column, DataType
from repro.multimodal import (
    DocumentStore,
    FederatedHybridEngine,
    HybridQuery,
    UnifiedHybridEngine,
    ground_truth,
    recall_at_k,
)
from repro.workloads.corpus import make_corpus
from repro.workloads.embeddings import embed_text

DIM = 16


def build_store() -> DocumentStore:
    docs = make_corpus(num_docs=500, duplicate_fraction=0.0, seed=42)
    store = DocumentStore(
        dim=DIM,
        attr_columns=[
            Column("price", DataType.FLOAT),
            Column("topic", DataType.TEXT),
        ],
    )
    rng = random.Random(42)
    for doc in docs:
        store.add(
            doc.doc_id,
            doc.text,
            embed_text(doc.text, dim=DIM),
            (round(rng.uniform(1, 100), 2), doc.topic),
        )
    store.finalize()
    return store


def main() -> None:
    store = build_store()
    unified = UnifiedHybridEngine(store)
    federated = FederatedHybridEngine(store, service_top_k=40)

    question = "query optimizer join index"
    rows = []
    for label, filter_sql in [
        ("selective (price<5)", "price < 5"),
        ("medium (price<40)", "price < 40"),
        ("none", None),
    ]:
        query = HybridQuery(
            keywords=question,
            vector=embed_text(question, dim=DIM).tolist(),
            filter_sql=filter_sql,
            k=8,
        )
        truth = ground_truth(store, query)
        uni = unified.search(query)
        fed = federated.search(query)
        rows.append(
            [
                label,
                uni.strategy,
                recall_at_k(uni.ids(), truth),
                uni.docs_scored,
                recall_at_k(fed.ids(), truth),
                fed.docs_scored,
            ]
        )
    print(
        format_table(
            [
                "filter",
                "unified strategy",
                "unified recall",
                "unified work",
                "federated recall",
                "federated work",
            ],
            rows,
            title=f'Hybrid top-8 for "{question}" over {len(store)} documents',
        )
    )
    print(
        "\nThe unified planner picks pre- vs post-filtering from the SQL\n"
        "optimizer's selectivity estimate; the federated glue always runs\n"
        "all three services and intersects, losing recall under selective\n"
        "filters — the panel's 'crappy when combined' failure mode."
    )

    # A peek at one result set.
    query = HybridQuery(
        keywords=question,
        vector=embed_text(question, dim=DIM).tolist(),
        filter_sql="price < 40",
        k=5,
    )
    print("\nTop hits (unified, price < 40):")
    for doc_id, score in unified.search(query).hits:
        doc = store.get(doc_id)
        print(f"  #{doc_id:<4} score={score:.3f} price={doc.attrs[0]:<6} {doc.text[:60]}")


if __name__ == "__main__":
    main()
