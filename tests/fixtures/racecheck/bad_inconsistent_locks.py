"""inconsistent-locksets: both writers are disciplined about taking *a*
lock — just not the same one, so neither serializes against the other.
``put`` guards the registry with ``lock_a`` while ``drop`` guards it with
``lock_b``."""

import threading
from concurrent.futures import ThreadPoolExecutor


class Registry:
    def __init__(self):
        self.lock_a = threading.Lock()
        self.lock_b = threading.Lock()
        self.items = {}

    def put(self, key):
        with self.lock_a:
            if key not in self.items:
                self.items[key] = 1  # MARK: inconsistent-put

    def drop(self, key):
        with self.lock_b:
            if key in self.items:
                del self.items[key]  # MARK: inconsistent-drop


def run():
    registry = Registry()
    with ThreadPoolExecutor(2) as pool:
        for key in ("a", "b", "c"):
            pool.submit(registry.put, key)
            pool.submit(registry.drop, key)
