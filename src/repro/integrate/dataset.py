"""Synthetic entity-matching datasets.

Company-style records (name, city, phone) with seeded duplicate generation:
each duplicate applies a random mix of perturbations — typos, token drops,
abbreviations, field swaps — so similarity scores spread realistically
between easy matches and hard ones that only the (simulated) LLM resolves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

_NAME_PARTS_A = [
    "acme", "global", "united", "pacific", "summit", "pioneer", "sterling",
    "vertex", "cascade", "beacon", "harbor", "granite", "aurora", "atlas",
    "meridian", "zenith", "quantum", "nova", "delta", "orion",
]
_NAME_PARTS_B = [
    "systems", "logistics", "foods", "industries", "analytics", "holdings",
    "manufacturing", "software", "energy", "materials", "robotics",
    "networks", "labs", "partners", "dynamics", "solutions",
]
_SUFFIXES = ["inc", "llc", "corp", "co", "group", "ltd"]
_CITIES = [
    "springfield", "riverton", "fairview", "georgetown", "arlington",
    "salem", "clinton", "madison", "ashland", "dover", "bristol", "milton",
]
_ABBREVIATIONS = {
    "incorporated": "inc", "corporation": "corp", "company": "co",
    "systems": "sys", "manufacturing": "mfg", "international": "intl",
    "solutions": "sols", "industries": "ind",
}


@dataclass
class MatchingDataset:
    """Records + ground-truth duplicate pairs."""

    records: Dict[int, Dict[str, str]] = field(default_factory=dict)
    true_pairs: Set[Tuple[int, int]] = field(default_factory=set)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def render(self, record_id: int) -> str:
        record = self.records[record_id]
        return ", ".join(f"{k}={v}" for k, v in sorted(record.items()))


def _typo(rng: random.Random, text: str) -> str:
    if len(text) < 4:
        return text
    i = rng.randrange(1, len(text) - 1)
    kind = rng.random()
    if kind < 0.34:
        return text[:i] + text[i + 1 :]  # deletion
    if kind < 0.67:
        return text[:i] + text[i] + text[i:]  # duplication
    return text[: i - 1] + text[i] + text[i - 1] + text[i + 1 :]  # swap


def _perturb(rng: random.Random, record: Dict[str, str], strength: float) -> Dict[str, str]:
    out = dict(record)
    name_tokens = out["name"].split()
    if rng.random() < strength and len(name_tokens) > 2:
        name_tokens.pop(rng.randrange(len(name_tokens)))  # drop a token
    name_tokens = [
        _ABBREVIATIONS.get(t, t) if rng.random() < strength else t
        for t in name_tokens
    ]
    for _ in range(2):
        if rng.random() < strength:
            idx = rng.randrange(len(name_tokens))
            name_tokens[idx] = _typo(rng, name_tokens[idx])
    out["name"] = " ".join(name_tokens)
    if rng.random() < strength * 0.6:
        out["city"] = _typo(rng, out["city"])
    if rng.random() < strength * 0.4:
        digits = list(out["phone"])
        digits[rng.randrange(len(digits))] = str(rng.randrange(10))
        out["phone"] = "".join(digits)
    return out


def make_oracle(dataset: "MatchingDataset", llm) -> "MatchOracle":
    """Wrap a dataset + SimulatedLLM into a metered judgment oracle.

    Pair difficulty peaks where record similarity is most ambiguous
    (~0.5) and vanishes for clear matches/non-matches, mirroring where
    real models actually err.
    """
    from repro.integrate.llm import MatchOracle
    from repro.integrate.similarity import record_similarity

    truth = {tuple(sorted(p)) for p in dataset.true_pairs}

    def difficulty(id_a: int, id_b: int) -> float:
        sim = record_similarity(dataset.records[id_a], dataset.records[id_b])
        # A pair is hard when surface similarity contradicts the truth:
        # look-alike non-matches and look-different matches.
        raw = (1.0 - sim) if tuple(sorted((id_a, id_b))) in truth else sim
        return max(0.05, raw ** 1.5)

    return MatchOracle(llm, dataset.true_pairs, dataset.render, difficulty)


def make_matching_dataset(
    num_entities: int = 150,
    duplicate_probability: float = 0.5,
    perturbation: float = 0.9,
    seed: int = 0,
) -> MatchingDataset:
    """Build a dataset of ``num_entities`` base records plus noisy duplicates."""
    rng = random.Random(seed)
    dataset = MatchingDataset(seed=seed)
    next_id = 0
    for _ in range(num_entities):
        name = (
            f"{rng.choice(_NAME_PARTS_A)} {rng.choice(_NAME_PARTS_B)} "
            f"{rng.choice(_SUFFIXES)}"
        )
        record = {
            "name": name,
            "city": rng.choice(_CITIES),
            "phone": "".join(str(rng.randrange(10)) for _ in range(10)),
        }
        base_id = next_id
        dataset.records[base_id] = record
        next_id += 1
        if rng.random() < duplicate_probability:
            dup = _perturb(rng, record, perturbation)
            dataset.records[next_id] = dup
            dataset.true_pairs.add((base_id, next_id))
            next_id += 1
    return dataset
