"""Wall-clock budget for the whole-program async-safety analyzer.

The CI lint job runs ``python -m repro asynccheck src/repro`` on every
push, so the analyzer has a hard latency budget: a full build-and-analyze
pass over ``src/repro`` must finish in <= 10 s, or it gets kicked out of
the fast lint tier.  This benchmark times the two phases separately —
call-graph construction (parse + resolve every module) and rule execution
(reachability, lock scans) — because they regress for different reasons:
graph build cost scales with package size, rule cost with async surface
area and blocking-set fan-in.

Acceptance: best full-pass sample <= 10 s.  Writes
``BENCH_asynccheck.json`` next to this script.

Usage: python benchmarks/bench_asynccheck.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_json import write_report  # noqa: E402
from repro.analyze.asyncsafe import analyze_paths  # noqa: E402
from repro.analyze.callgraph import build_callgraph  # noqa: E402

BUDGET_SECONDS = 10.0  # acceptance: full pass over src/repro in <= 10 s

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def run(repeats: int) -> dict:
    build_s = []
    full_s = []
    graph = None
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        graph = build_callgraph([SRC_REPRO])
        build_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        report = analyze_paths([SRC_REPRO])
        full_s.append(time.perf_counter() - start)

    call_sites = sum(len(f.calls) for f in graph.functions.values())
    resolved = sum(
        1 for f in graph.functions.values() for s in f.calls if s.targets
    )
    best_full = min(full_s)
    return {
        "target": "src/repro",
        "repeats": repeats,
        "modules": len(graph.modules),
        "functions": len(graph.functions),
        "classes": len(graph.classes),
        "async_functions": sum(1 for _ in graph.async_functions()),
        "call_sites": call_sites,
        "resolved_call_sites": resolved,
        "findings": len(report),
        "build_graph_s": round(min(build_s), 3),
        "full_pass_s": round(best_full, 3),
        "full_pass_mean_s": round(statistics.mean(full_s), 3),
        "budget_s": BUDGET_SECONDS,
        "within_budget": best_full <= BUDGET_SECONDS,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer repeats")
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    repeats = args.repeats or (2 if args.quick else 5)

    results = run(repeats)
    out_path = write_report("asynccheck", results)

    print(
        f"asynccheck src/repro: {results['modules']} modules, "
        f"{results['functions']} functions "
        f"({results['async_functions']} async), "
        f"{results['resolved_call_sites']}/{results['call_sites']} "
        f"call sites resolved, {results['findings']} findings"
    )
    print(
        f"graph build {results['build_graph_s']:.2f} s, "
        f"full pass {results['full_pass_s']:.2f} s "
        f"(mean {results['full_pass_mean_s']:.2f} s over {repeats})"
    )
    status = "PASS" if results["within_budget"] else "FAIL"
    print(f"budget (<= {BUDGET_SECONDS:.0f} s): {status} -> {out_path}")
    return 0 if results["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
