"""Catalog persistence: make file-backed databases reopenable.

Page images persist through :class:`~repro.storage.disk.FileDiskManager`,
but the catalog (which tables exist, which pages belong to which heap,
which indexes to maintain) lives in memory.  This module serializes that
metadata to a JSON sidecar (``<data file>.meta.json``) on
:meth:`Database.close` and reattaches everything on open:

* row-layout tables reattach their heap pages directly (no data copy);
* secondary indexes are rebuilt by one scan (indexes are derived state);
* column-layout tables are memory-resident by design and are **not**
  persisted — ``save_catalog`` refuses them loudly rather than silently
  dropping data.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.catalog.catalog import Catalog, ROW_LAYOUT
from repro.core.errors import CatalogError
from repro.core.types import Column, DataType, Schema

META_SUFFIX = ".meta.json"
FORMAT_VERSION = 1


def metadata_path(data_path: str) -> str:
    return data_path + META_SUFFIX


def _schema_to_json(schema: Schema) -> List[Dict[str, Any]]:
    return [
        {
            "name": c.name,
            "dtype": c.dtype.value,
            "nullable": c.nullable,
            "vector_width": c.vector_width,
        }
        for c in schema.columns
    ]


def _schema_from_json(columns: List[Dict[str, Any]]) -> Schema:
    return Schema(
        [
            Column(
                c["name"],
                DataType(c["dtype"]),
                nullable=c["nullable"],
                vector_width=c.get("vector_width", 0),
            )
            for c in columns
        ]
    )


def save_catalog(catalog: Catalog, data_path: str) -> str:
    """Write catalog metadata next to the data file; returns the path."""
    tables = {}
    for name in catalog.table_names():
        table = catalog.get_table(name)
        if table.layout != ROW_LAYOUT:
            raise CatalogError(
                f"table {name!r} uses the in-memory column layout and cannot "
                "be persisted; copy it into a row-layout table first"
            )
        tables[table.name] = {
            "schema": _schema_to_json(
                Schema([c.with_table(None) for c in table.schema.columns])
            ),
            "page_ids": table.heap.page_ids(),
            "indexes": [
                {
                    "name": info.name,
                    "column": info.column,
                    "kind": info.kind,
                    "unique": info.unique,
                }
                for info in table.indexes.values()
            ],
        }
    payload = {"version": FORMAT_VERSION, "tables": tables}
    path = metadata_path(data_path)
    with open(path, "w") as f:
        json.dump(payload, f, indent=1)
    return path


def load_catalog(catalog: Catalog, data_path: str) -> List[str]:
    """Reattach persisted tables and rebuild their indexes.

    Returns the reattached table names.  No-op (empty list) when no
    metadata sidecar exists.
    """
    from repro.storage.heap import HeapFile

    path = metadata_path(data_path)
    if not os.path.exists(path):
        return []
    with open(path) as f:
        payload = json.load(f)
    if payload.get("version") != FORMAT_VERSION:
        raise CatalogError(
            f"metadata {path!r} has version {payload.get('version')}, "
            f"expected {FORMAT_VERSION}"
        )
    restored = []
    for name, spec in payload["tables"].items():
        schema = _schema_from_json(spec["schema"])
        table = catalog.create_table(name, schema)
        table.heap = HeapFile.attach(
            catalog.pool, table.schema, name, spec["page_ids"]
        )
        for index_spec in spec["indexes"]:
            catalog.create_index(
                index_spec["name"],
                name,
                index_spec["column"],
                kind=index_spec["kind"],
                unique=index_spec["unique"],
            )
        restored.append(name)
    return restored
