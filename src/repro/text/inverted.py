"""Inverted index with BM25 ranking and boolean retrieval."""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import IndexError_
from repro.text.tokenizer import tokenize

BM25_K1 = 1.5
BM25_B = 0.75


class InvertedIndex:
    """Term → postings index over documents, with BM25 scoring.

    Documents are arbitrary hashable ids mapped to text.  The index stores
    term frequencies and document lengths; scoring uses the standard BM25
    formulation with the "+ 0.5 smoothing, floored at 0" IDF.
    """

    def __init__(self, k1: float = BM25_K1, b: float = BM25_B):
        self.k1 = k1
        self.b = b
        self._postings: Dict[str, Dict[Any, int]] = {}
        self._doc_lengths: Dict[Any, int] = {}
        self._total_length = 0

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: Any) -> bool:
        return doc_id in self._doc_lengths

    @property
    def average_length(self) -> float:
        return self._total_length / len(self._doc_lengths) if self._doc_lengths else 0.0

    # -- maintenance ------------------------------------------------------------

    def add(self, doc_id: Any, text: str) -> None:
        """Index a document; ids must be unique."""
        if doc_id in self._doc_lengths:
            raise IndexError_(f"duplicate document id {doc_id!r}")
        terms = tokenize(text)
        self._doc_lengths[doc_id] = len(terms)
        self._total_length += len(terms)
        for term in terms:
            bucket = self._postings.setdefault(term, {})
            bucket[doc_id] = bucket.get(doc_id, 0) + 1

    def remove(self, doc_id: Any) -> None:
        if doc_id not in self._doc_lengths:
            raise IndexError_(f"document id {doc_id!r} not found")
        self._total_length -= self._doc_lengths.pop(doc_id)
        empty_terms = []
        for term, bucket in self._postings.items():
            if doc_id in bucket:
                del bucket[doc_id]
                if not bucket:
                    empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    # -- retrieval ---------------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def idf(self, term: str) -> float:
        n = len(self._doc_lengths)
        df = self.document_frequency(term)
        if n == 0 or df == 0:
            return 0.0
        return max(0.0, math.log((n - df + 0.5) / (df + 0.5) + 1.0))

    def score(self, doc_id: Any, query: str) -> float:
        """BM25 score of one document for a query."""
        if doc_id not in self._doc_lengths:
            return 0.0
        total = 0.0
        dl = self._doc_lengths[doc_id]
        avg = self.average_length or 1.0
        for term in tokenize(query):
            tf = self._postings.get(term, {}).get(doc_id, 0)
            if tf == 0:
                continue
            idf = self.idf(term)
            total += idf * (tf * (self.k1 + 1)) / (
                tf + self.k1 * (1 - self.b + self.b * dl / avg)
            )
        return total

    def search(self, query: str, k: int = 10) -> List[Tuple[Any, float]]:
        """Top-k (doc_id, bm25_score), descending; ties by id order."""
        if k < 1:
            raise IndexError_("k must be >= 1")
        scores: Dict[Any, float] = {}
        avg = self.average_length or 1.0
        for term in set(tokenize(query)):
            bucket = self._postings.get(term)
            if not bucket:
                continue
            idf = self.idf(term)
            for doc_id, tf in bucket.items():
                dl = self._doc_lengths[doc_id]
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * (
                    tf * (self.k1 + 1)
                ) / (tf + self.k1 * (1 - self.b + self.b * dl / avg))
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:k]

    def match_all(self, query: str) -> Set[Any]:
        """Boolean AND retrieval: documents containing every query term."""
        terms = set(tokenize(query))
        if not terms:
            return set()
        result: Optional[Set[Any]] = None
        for term in terms:
            docs = set(self._postings.get(term, ()))
            result = docs if result is None else result & docs
            if not result:
                return set()
        return result or set()

    def match_any(self, query: str) -> Set[Any]:
        """Boolean OR retrieval: documents containing any query term."""
        result: Set[Any] = set()
        for term in set(tokenize(query)):
            result |= set(self._postings.get(term, ()))
        return result

    def vocabulary(self) -> List[str]:
        return sorted(self._postings)
