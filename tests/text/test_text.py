"""Tests for the full-text module (repro.text)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.text.inverted import InvertedIndex
from repro.text.tokenizer import STOPWORDS, normalize, tokenize


class TestTokenizer:
    def test_lowercase_and_split(self):
        assert tokenize("Hello WORLD", stem=False) == ["hello", "world"]

    def test_punctuation_stripped(self):
        assert tokenize("a-b_c, d.e!", remove_stopwords=False, stem=False) == [
            "a", "b", "c", "d", "e",
        ]

    def test_stopwords_removed(self):
        assert "the" not in tokenize("the quick fox")
        assert tokenize("the and of", remove_stopwords=True) == []

    def test_stopwords_kept_when_disabled(self):
        assert "the" in tokenize("the fox", remove_stopwords=False)

    def test_numbers_kept(self):
        assert tokenize("tpc-h 1000") == ["tpc", "h", "1000"]

    def test_normalize_suffixes(self):
        assert normalize("running") == "runn"
        assert normalize("jumped") == "jump"
        # Singular and plural collapse to one stem.
        assert normalize("databases") == normalize("database")
        assert normalize("indexes") == normalize("index")
        assert normalize("tables") == normalize("table")
        assert normalize("class") == "class"  # -ss protected

    def test_stemming_unifies_variants(self):
        assert tokenize("index indexes") == ["index", "index"]


class TestInvertedIndexMaintenance:
    def test_add_and_len(self):
        index = InvertedIndex()
        index.add(1, "hello world")
        assert len(index) == 1
        assert 1 in index

    def test_duplicate_id_rejected(self):
        index = InvertedIndex()
        index.add(1, "x")
        with pytest.raises(IndexError_):
            index.add(1, "y")

    def test_remove_cleans_postings(self):
        index = InvertedIndex()
        index.add(1, "unique_term common")
        index.add(2, "common")
        index.remove(1)
        assert index.document_frequency("unique_term") == 0
        assert index.document_frequency("common") == 1
        assert "unique_term" not in index.vocabulary()

    def test_remove_missing(self):
        with pytest.raises(IndexError_):
            InvertedIndex().remove(1)

    def test_average_length(self):
        index = InvertedIndex()
        index.add(1, "one two three")
        index.add(2, "one")
        assert index.average_length == 2.0


class TestBM25:
    def corpus(self):
        index = InvertedIndex()
        index.add("db", "database systems store data in tables with indexes")
        index.add("ml", "neural networks train on data with gradient descent")
        index.add("cook", "bake bread with flour water salt yeast oven")
        index.add("db2", "query optimizer picks index scans for selective database queries")
        return index

    def test_topical_ranking(self):
        index = self.corpus()
        hits = index.search("database index")
        assert hits[0][0] in ("db", "db2")
        ids = [doc for doc, _ in hits]
        assert "cook" not in ids

    def test_scores_descending(self):
        hits = self.corpus().search("data query database")
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_score_positive_only_with_matching_terms(self):
        index = self.corpus()
        assert index.score("cook", "database") == 0.0
        assert index.score("db", "database") > 0.0

    def test_rare_term_outweighs_common(self):
        index = InvertedIndex()
        index.add(1, "common rare")
        index.add(2, "common common common")
        index.add(3, "common filler words here")
        assert index.idf("rare") > index.idf("common")
        hits = dict(index.search("rare"))
        assert 1 in hits and 2 not in hits

    def test_idf_zero_for_missing_term(self):
        assert self.corpus().idf("zzz") == 0.0

    def test_k_limits_results(self):
        assert len(self.corpus().search("data", k=1)) == 1

    def test_bad_k(self):
        with pytest.raises(IndexError_):
            self.corpus().search("data", k=0)

    def test_length_normalization(self):
        """Same tf: the shorter document ranks higher."""
        index = InvertedIndex()
        index.add("short", "target word")
        index.add("long", "target word plus many extra filler tokens diluting relevance")
        hits = index.search("target")
        assert hits[0][0] == "short"


class TestBooleanRetrieval:
    def test_match_all(self):
        index = InvertedIndex()
        index.add(1, "apple banana")
        index.add(2, "apple cherry")
        index.add(3, "banana cherry")
        assert index.match_all("apple banana") == {1}
        assert index.match_all("cherry") == {2, 3}
        assert index.match_all("apple zebra") == set()

    def test_match_any(self):
        index = InvertedIndex()
        index.add(1, "apple")
        index.add(2, "banana")
        assert index.match_any("apple banana") == {1, 2}
        assert index.match_any("zebra") == set()

    def test_empty_query(self):
        index = InvertedIndex()
        index.add(1, "x")
        assert index.match_all("") == set()
        assert index.match_any("the of and") == set()


@settings(max_examples=40, deadline=None)
@given(st.lists(st.text(alphabet="abcdefg ", min_size=1, max_size=30), max_size=10))
def test_search_hits_subset_of_match_any_property(texts):
    """Every BM25 hit contains at least one query term."""
    index = InvertedIndex()
    for i, text in enumerate(texts):
        index.add(i, text)
    hits = index.search("abc def g", k=20)
    allowed = index.match_any("abc def g")
    assert {doc for doc, _ in hits} <= allowed
