"""Thread-safety tests for the buffer pool."""

import random
import threading

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.page import PAGE_SIZE
from repro.storage.replacement import make_policy

THREADS = 8
OPS_PER_THREAD = 300
NUM_PAGES = 20
CAPACITY = 6


@pytest.mark.parametrize("policy", ["lru", "clock", "2q"])
def test_concurrent_fetch_unpin_is_consistent(policy):
    """Hammer the pool from many threads: contents never corrupt, capacity
    never exceeded, every pin gets released."""
    disk = InMemoryDiskManager()
    page_ids = []
    for i in range(NUM_PAGES):
        pid = disk.allocate_page()
        image = bytearray(PAGE_SIZE)
        image[0] = i  # per-page fingerprint
        disk.write_page(pid, bytes(image))
        page_ids.append(pid)
    pool = BufferPool(disk, capacity=CAPACITY, policy=make_policy(policy))
    errors = []

    def worker(worker_id: int) -> None:
        rng = random.Random(worker_id)
        try:
            for __ in range(OPS_PER_THREAD):
                pid = rng.choice(page_ids)
                page = pool.fetch_page(pid)
                try:
                    if page.data[0] != pid:
                        errors.append(f"corrupt page {pid}: saw {page.data[0]}")
                finally:
                    pool.unpin(pid)
        except Exception as exc:  # noqa: BLE001 - surfacing to the main thread
            errors.append(repr(exc))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert errors == []
    assert pool.pinned_count() == 0
    assert len(pool.cached_page_ids()) <= CAPACITY
    stats = pool.stats
    assert stats.hits + stats.misses == THREADS * OPS_PER_THREAD


def test_concurrent_writers_preserve_all_modifications():
    """Each thread owns one byte offset of a shared page; concurrent
    read-modify-write through the pool must not lose any thread's writes
    (the page object is shared, pins protect residency not mutation)."""
    disk = InMemoryDiskManager()
    pid = disk.allocate_page()
    pool = BufferPool(disk, capacity=2)
    rounds = 200

    def writer(offset: int) -> None:
        for __ in range(rounds):
            page = pool.fetch_page(pid)
            try:
                page.data[100 + offset] = (page.data[100 + offset] + 1) % 256
            finally:
                pool.unpin(pid, dirty=True)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    pool.flush_all()
    final = disk.read_page(pid)
    assert list(final[100:104]) == [rounds % 256] * 4
