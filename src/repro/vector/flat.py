"""Flat (exact, brute-force) vector index.

Vectors live in one contiguous numpy matrix; search is a single vectorized
distance computation plus a partial sort.  Exact by construction, so it
doubles as the ground truth for the IVF index's recall measurements.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import IndexError_
from repro.vector.metrics import BATCH_METRICS, resolve_metric


class FlatIndex:
    """Exact nearest-neighbor search over fixed-dimension vectors."""

    def __init__(self, dim: int, metric: str = "l2", initial_capacity: int = 64):
        if dim < 1:
            raise IndexError_("vector dimension must be >= 1")
        self.dim = dim
        self.metric = resolve_metric(metric)
        self._matrix = np.zeros((max(initial_capacity, 1), dim), dtype=np.float64)
        self._ids: List[Any] = []
        self._slot_of: Dict[Any, int] = {}
        self._live = np.zeros(max(initial_capacity, 1), dtype=bool)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: Any) -> bool:
        return key in self._slot_of

    # -- writes ---------------------------------------------------------------

    def add(self, key: Any, vector: Sequence[float]) -> None:
        """Insert one vector; keys must be unique."""
        if key in self._slot_of:
            raise IndexError_(f"duplicate vector key {key!r}")
        vec = np.asarray(vector, dtype=np.float64)
        if vec.shape != (self.dim,):
            raise IndexError_(
                f"vector for {key!r} has shape {vec.shape}, expected ({self.dim},)"
            )
        slot = len(self._ids)
        if slot >= len(self._matrix):
            self._grow()
        self._matrix[slot] = vec
        self._live[slot] = True
        self._ids.append(key)
        self._slot_of[key] = slot
        self._count += 1

    def add_batch(self, items: Sequence[Tuple[Any, Sequence[float]]]) -> None:
        for key, vector in items:
            self.add(key, vector)

    def remove(self, key: Any) -> None:
        """Delete a vector (tombstoned; space reused only via rebuild)."""
        slot = self._slot_of.pop(key, None)
        if slot is None:
            raise IndexError_(f"vector key {key!r} not found")
        self._live[slot] = False
        self._count -= 1

    def get(self, key: Any) -> Optional[np.ndarray]:
        slot = self._slot_of.get(key)
        if slot is None:
            return None
        return self._matrix[slot].copy()

    # -- search ------------------------------------------------------------------

    def search(
        self, query: Sequence[float], k: int = 10
    ) -> List[Tuple[Any, float]]:
        """Top-k nearest (key, distance), ascending by distance."""
        if k < 1:
            raise IndexError_("k must be >= 1")
        if self._count == 0:
            return []
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise IndexError_(f"query has shape {q.shape}, expected ({self.dim},)")
        n = len(self._ids)
        distances = BATCH_METRICS[self.metric](self._matrix[:n], q)
        distances = np.where(self._live[:n], distances, np.inf)
        k_eff = min(k, self._count)
        candidates = np.argpartition(distances, k_eff - 1)[:k_eff]
        ranked = candidates[np.argsort(distances[candidates], kind="stable")]
        return [(self._ids[i], float(distances[i])) for i in ranked]

    def search_many(
        self, queries: Sequence[Sequence[float]], k: int = 10
    ) -> List[List[Tuple[Any, float]]]:
        return [self.search(q, k) for q in queries]

    def keys(self) -> List[Any]:
        return [key for key in self._ids if key in self._slot_of]

    # -- internals ------------------------------------------------------------------

    def _grow(self) -> None:
        new_capacity = len(self._matrix) * 2
        matrix = np.zeros((new_capacity, self.dim), dtype=np.float64)
        matrix[: len(self._matrix)] = self._matrix
        self._matrix = matrix
        live = np.zeros(new_capacity, dtype=bool)
        live[: len(self._live)] = self._live
        self._live = live
