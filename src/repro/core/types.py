"""Type system shared by every layer of the engine.

The engine is deliberately small but honest: values carry one of a fixed set
of :class:`DataType` tags, rows are plain tuples, and :class:`Schema` maps
between positions and (optionally qualified) column names.  The storage layer
uses :class:`DataType` to pick a binary codec; the binder uses it for type
checking; the executor uses it to coerce literals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import BindError, TypeMismatchError

Row = Tuple[Any, ...]


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    VECTOR = "VECTOR"  # fixed-width list of floats; width stored on the column
    NULL = "NULL"  # type of the untyped NULL literal

    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)

    @staticmethod
    def of_value(value: Any) -> "DataType":
        """Infer the logical type of a Python value."""
        if value is None:
            return DataType.NULL
        if isinstance(value, bool):
            return DataType.BOOLEAN
        if isinstance(value, int):
            return DataType.INTEGER
        if isinstance(value, float):
            return DataType.FLOAT
        if isinstance(value, str):
            return DataType.TEXT
        if isinstance(value, (list, tuple)):
            return DataType.VECTOR
        raise TypeMismatchError(f"unsupported Python value type: {type(value).__name__}")

    @staticmethod
    def parse(name: str) -> "DataType":
        """Parse a SQL type name (with common aliases) into a DataType."""
        upper = name.strip().upper()
        aliases = {
            "INT": DataType.INTEGER,
            "INTEGER": DataType.INTEGER,
            "BIGINT": DataType.INTEGER,
            "SMALLINT": DataType.INTEGER,
            "FLOAT": DataType.FLOAT,
            "REAL": DataType.FLOAT,
            "DOUBLE": DataType.FLOAT,
            "DECIMAL": DataType.FLOAT,
            "NUMERIC": DataType.FLOAT,
            "TEXT": DataType.TEXT,
            "VARCHAR": DataType.TEXT,
            "CHAR": DataType.TEXT,
            "STRING": DataType.TEXT,
            "BOOL": DataType.BOOLEAN,
            "BOOLEAN": DataType.BOOLEAN,
            "VECTOR": DataType.VECTOR,
        }
        if upper not in aliases:
            raise TypeMismatchError(f"unknown SQL type: {name!r}")
        return aliases[upper]


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """Result type of an arithmetic op over two numeric (or NULL) operands."""
    if DataType.FLOAT in (left, right):
        return DataType.FLOAT
    if left is DataType.NULL:
        return right
    if right is DataType.NULL:
        return left
    return DataType.INTEGER


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce a Python value to the storage representation of ``dtype``.

    ``None`` passes through for every type (SQL NULL).  Raises
    :class:`TypeMismatchError` when the value cannot represent the type.
    """
    if value is None:
        return None
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeMismatchError(f"cannot store {value!r} as INTEGER")
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            raise TypeMismatchError(f"cannot store {value!r} as FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeMismatchError(f"cannot store {value!r} as FLOAT")
    if dtype is DataType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"cannot store {value!r} as TEXT")
    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeMismatchError(f"cannot store {value!r} as BOOLEAN")
    if dtype is DataType.VECTOR:
        if isinstance(value, (list, tuple)):
            return tuple(float(x) for x in value)
        raise TypeMismatchError(f"cannot store {value!r} as VECTOR")
    raise TypeMismatchError(f"cannot coerce to {dtype}")


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Attributes:
        name: bare column name (no table qualifier).
        dtype: logical type.
        nullable: whether NULL is admitted (enforced on insert).
        table: optional qualifier, used by the binder for name resolution.
        vector_width: dimensionality for VECTOR columns (0 = unspecified).
    """

    name: str
    dtype: DataType
    nullable: bool = True
    table: Optional[str] = None
    vector_width: int = 0

    def qualified_name(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def with_table(self, table: Optional[str]) -> "Column":
        return Column(self.name, self.dtype, self.nullable, table, self.vector_width)


class Schema:
    """An ordered list of columns with name-based lookup.

    Lookup accepts bare names (``"price"``) and qualified names
    (``"orders.price"``).  Ambiguous bare names raise :class:`BindError`.
    """

    __slots__ = ("columns", "_by_name")

    def __init__(self, columns: Sequence[Column]):
        self.columns: List[Column] = list(columns)
        self._by_name = {}
        for idx, col in enumerate(self.columns):
            self._by_name.setdefault(col.name, []).append(idx)
            if col.table:
                self._by_name.setdefault(f"{col.table}.{col.name}", []).append(idx)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __getitem__(self, idx: int) -> Column:
        return self.columns[idx]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.qualified_name()}:{c.dtype.value}" for c in self.columns)
        return f"Schema({cols})"

    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    def index_of(self, name: str) -> int:
        """Resolve ``name`` to a column position.

        Raises :class:`BindError` for unknown or ambiguous names.
        """
        hits = self._by_name.get(name)
        if not hits:
            raise BindError(f"unknown column: {name!r}")
        if len(hits) > 1:
            raise BindError(f"ambiguous column reference: {name!r}")
        return hits[0]

    def maybe_index_of(self, name: str) -> Optional[int]:
        """Like :meth:`index_of` but returns None for unknown names."""
        hits = self._by_name.get(name)
        if not hits or len(hits) > 1:
            return None
        return hits[0]

    def has(self, name: str) -> bool:
        return bool(self._by_name.get(name))

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self.columns + other.columns)

    def with_table(self, table: Optional[str]) -> "Schema":
        return Schema([c.with_table(table) for c in self.columns])

    def project(self, indexes: Iterable[int]) -> "Schema":
        return Schema([self.columns[i] for i in indexes])


def validate_row(schema: Schema, row: Sequence[Any]) -> Row:
    """Validate & coerce a row against a schema; returns the stored tuple.

    Enforces arity, per-column type coercion, NOT NULL, and vector width.
    """
    from repro.core.errors import IntegrityError

    if len(row) != len(schema):
        raise IntegrityError(
            f"row has {len(row)} values but schema has {len(schema)} columns"
        )
    out = []
    for value, col in zip(row, schema.columns):
        if value is None and not col.nullable:
            raise IntegrityError(f"column {col.name!r} is NOT NULL")
        coerced = coerce_value(value, col.dtype)
        if (
            col.dtype is DataType.VECTOR
            and coerced is not None
            and col.vector_width
            and len(coerced) != col.vector_width
        ):
            raise IntegrityError(
                f"column {col.name!r} expects vectors of width {col.vector_width}, "
                f"got {len(coerced)}"
            )
        out.append(coerced)
    return tuple(out)


@dataclass
class TableStatsSnapshot:
    """Lightweight row/byte counts reported by storage for costing."""

    row_count: int = 0
    byte_count: int = 0
    page_count: int = 0
    fields: dict = field(default_factory=dict)
