"""Regression tests for MVCC check-then-act races on transaction state.

The audit behind these tests moved every ``txn.active`` check inside
``self._latch`` next to the action it guards.  Checked outside, two
threads could both pass ``_require_active`` and (a) double-install the
same write set with two commit timestamps, or (b) commit *and* abort one
transaction, leaking or double-freeing its write locks.  These tests race
the state transitions through a barrier and assert exactly-once outcomes;
on the pre-audit code they fail within a few hundred attempts.
"""

from __future__ import annotations

import threading

from repro.core.errors import TransactionError
from repro.txn.schemes import MVCCScheme

ATTEMPTS = 300


def _race(fn_a, fn_b):
    """Run both closures through a barrier; return their outcomes."""
    barrier = threading.Barrier(2)
    outcomes = [None, None]

    def run(slot, fn):
        barrier.wait()
        try:
            fn()
            outcomes[slot] = "ok"
        except TransactionError:
            outcomes[slot] = "refused"

    threads = [
        threading.Thread(target=run, args=(0, fn_a)),
        threading.Thread(target=run, args=(1, fn_b)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes


class TestCommitCommitRace:
    def test_double_commit_installs_versions_once(self):
        for _ in range(ATTEMPTS):
            scheme = MVCCScheme()
            txn = scheme.begin()
            scheme.write(txn, "x", 1)
            outcomes = _race(
                lambda: scheme.commit(txn), lambda: scheme.commit(txn)
            )
            # Exactly one commit wins; the loser sees an inactive handle.
            assert sorted(outcomes) == ["ok", "refused"]
            assert scheme.commits == 1
            assert scheme.version_count("x") == 1


class TestCommitAbortRace:
    def test_commit_vs_abort_resolves_to_one(self):
        for _ in range(ATTEMPTS):
            scheme = MVCCScheme()
            txn = scheme.begin()
            scheme.write(txn, "x", 1)
            _race(lambda: scheme.commit(txn), lambda: scheme.abort(txn))
            # abort() on an already-inactive handle is a quiet no-op, so
            # assert on the counters: one transition happened, not both.
            assert scheme.commits + scheme.aborts == 1
            reader = scheme.begin()
            value = scheme.read(reader, "x")
            if scheme.commits:
                assert value == 1
            else:
                assert value is None
            # Either way the write lock is gone: a new writer proceeds.
            writer = scheme.begin()
            scheme.write(writer, "x", 2)
            scheme.commit(writer)


class TestAbortAbortRace:
    def test_double_abort_counts_once(self):
        for _ in range(ATTEMPTS):
            scheme = MVCCScheme()
            txn = scheme.begin()
            scheme.write(txn, "x", 1)
            _race(lambda: scheme.abort(txn), lambda: scheme.abort(txn))
            assert scheme.aborts == 1
