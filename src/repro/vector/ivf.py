"""IVF (inverted-file) approximate vector index.

Vectors are partitioned into ``nlist`` clusters by k-means (own seeded
implementation — no external dependency beyond numpy); a query probes the
``nprobe`` nearest centroids and scans only those lists.  Recall/latency
trade off through ``nprobe``, which experiment E3's ablation sweeps.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import IndexError_
from repro.vector.metrics import BATCH_METRICS, resolve_metric


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    seed: int = 0,
    max_iters: int = 20,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with k-means++-style seeding.

    Returns (centroids, assignments).  Deterministic for a given seed.
    """
    n = len(points)
    if n == 0:
        raise IndexError_("cannot cluster zero points")
    k = min(n_clusters, n)
    rng = np.random.default_rng(seed)
    # k-means++ seeding: spread initial centroids out.
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(n)]
    closest = np.full(n, np.inf)
    for i in range(1, k):
        dist = np.linalg.norm(points - centroids[i - 1], axis=1) ** 2
        closest = np.minimum(closest, dist)
        total = closest.sum()
        if total <= 0:
            centroids[i:] = points[rng.integers(n, size=k - i)]
            break
        probs = closest / total
        centroids[i] = points[rng.choice(n, p=probs)]
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max_iters):
        distances = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments) and _ > 0:
            break
        assignments = new_assignments
        for c in range(k):
            members = points[assignments == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    return centroids, assignments


class IVFIndex:
    """Approximate nearest-neighbor index with inverted cluster lists."""

    def __init__(
        self,
        dim: int,
        metric: str = "l2",
        nlist: int = 16,
        nprobe: int = 2,
        seed: int = 0,
    ):
        if dim < 1:
            raise IndexError_("vector dimension must be >= 1")
        if nlist < 1:
            raise IndexError_("nlist must be >= 1")
        self.dim = dim
        self.metric = resolve_metric(metric)
        self.nlist = nlist
        self.nprobe = max(1, min(nprobe, nlist))
        self.seed = seed
        self._centroids: Optional[np.ndarray] = None
        self._lists: List[List[Any]] = []
        self._vectors: Dict[Any, np.ndarray] = {}
        self._assignment: Dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    # -- build ---------------------------------------------------------------

    def train(self, sample: Sequence[Sequence[float]]) -> None:
        """Cluster a training sample into ``nlist`` centroids."""
        points = np.asarray(sample, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise IndexError_(f"training sample must be (n, {self.dim})")
        self._centroids, _ = kmeans(points, self.nlist, seed=self.seed)
        self._lists = [[] for _ in range(len(self._centroids))]
        # Re-assign anything already added.
        existing = list(self._vectors.items())
        self._assignment.clear()
        for key, vec in existing:
            self._append_to_list(key, vec)

    def add(self, key: Any, vector: Sequence[float]) -> None:
        if key in self._vectors:
            raise IndexError_(f"duplicate vector key {key!r}")
        vec = np.asarray(vector, dtype=np.float64)
        if vec.shape != (self.dim,):
            raise IndexError_(f"vector has shape {vec.shape}, expected ({self.dim},)")
        self._vectors[key] = vec
        if self.is_trained:
            self._append_to_list(key, vec)

    def build(self, items: Sequence[Tuple[Any, Sequence[float]]]) -> None:
        """Train on the data itself, then add everything."""
        vectors = [np.asarray(v, dtype=np.float64) for _, v in items]
        if not vectors:
            raise IndexError_("cannot build an empty IVF index")
        for key, vector in items:
            if key in self._vectors:
                raise IndexError_(f"duplicate vector key {key!r}")
            self._vectors[key] = np.asarray(vector, dtype=np.float64)
        self.train(np.stack(vectors))

    def remove(self, key: Any) -> None:
        if key not in self._vectors:
            raise IndexError_(f"vector key {key!r} not found")
        del self._vectors[key]
        cluster = self._assignment.pop(key, None)
        if cluster is not None:
            self._lists[cluster].remove(key)

    def _append_to_list(self, key: Any, vec: np.ndarray) -> None:
        cluster = int(np.linalg.norm(self._centroids - vec, axis=1).argmin())
        self._lists[cluster].append(key)
        self._assignment[key] = cluster

    # -- search ------------------------------------------------------------------

    def search(
        self, query: Sequence[float], k: int = 10, nprobe: Optional[int] = None
    ) -> List[Tuple[Any, float]]:
        """Approximate top-k (key, distance) probing ``nprobe`` clusters."""
        if not self.is_trained:
            raise IndexError_("IVF index is not trained; call train() or build()")
        if not self._vectors:
            return []
        probes = max(1, min(nprobe or self.nprobe, len(self._centroids)))
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self.dim,):
            raise IndexError_(f"query has shape {q.shape}, expected ({self.dim},)")
        centroid_order = np.argsort(np.linalg.norm(self._centroids - q, axis=1))
        candidates: List[Any] = []
        for cluster in centroid_order[:probes]:
            candidates.extend(self._lists[cluster])
        if not candidates:
            return []
        matrix = np.stack([self._vectors[key] for key in candidates])
        distances = BATCH_METRICS[self.metric](matrix, q)
        order = np.argsort(distances, kind="stable")[: min(k, len(candidates))]
        return [(candidates[i], float(distances[i])) for i in order]

    def scanned_fraction(self, nprobe: Optional[int] = None) -> float:
        """Average fraction of vectors touched per query (cost proxy)."""
        if not self.is_trained or not self._vectors:
            return 1.0
        probes = max(1, min(nprobe or self.nprobe, len(self._centroids)))
        sizes = sorted((len(lst) for lst in self._lists), reverse=True)
        return sum(sizes[:probes]) / len(self._vectors)
