"""Regression harness: adversarial query shapes under full verification.

The suite-wide ``REPRO_VERIFY_PLANS=1`` already checks every test query;
this file concentrates the shapes most likely to break a rewrite —
outer joins with pushable/unpushable predicates, self-joins, aggregate
key pushdown, set operations re-scanning the same tables, multi-join
reordering — on both execution engines, so a future rule change that
violates an invariant fails here with a precise stage name even if no
behavioral test notices.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database

ADVERSARIAL_QUERIES = [
    # outer join: right-side predicate must NOT sink below the join
    "SELECT p.name, o.amount FROM people AS p LEFT JOIN orders AS o "
    "ON p.id = o.pid WHERE p.age > 26 ORDER BY o.amount DESC LIMIT 3",
    # aggregate over a join, HAVING on an aggregate
    "SELECT p.city, COUNT(*), SUM(o.amount) FROM people AS p JOIN orders AS o "
    "ON p.id = o.pid GROUP BY p.city HAVING SUM(o.amount) > 10 ORDER BY p.city",
    # OR at the top keeps the conjunct intact through pushdown
    "SELECT name FROM people WHERE age + 1 > 26 AND city = 'nyc' OR name LIKE 'a%'",
    # self-join through distinct aliases (alias-unique within one scope)
    "SELECT x.name, y.name FROM people AS x, people AS y "
    "WHERE x.id < y.id AND x.city = y.city",
    # uncorrelated subquery folded at bind time
    "SELECT name FROM people WHERE id IN (SELECT pid FROM orders WHERE amount > 15)",
    # set op arms scanning the same table (separate alias scopes)
    "SELECT city FROM people WHERE age > 25 UNION "
    "SELECT city FROM people WHERE name LIKE '%o%' ORDER BY city",
    # aggregate key pushdown (HAVING references a group key)
    "SELECT p.city, COUNT(*) FROM people AS p GROUP BY p.city HAVING p.city != 'sf'",
    # anti-join pattern over an outer join with a join-condition filter
    "SELECT p.name FROM people AS p LEFT JOIN orders AS o "
    "ON p.id = o.pid AND o.amount > 20 WHERE o.oid IS NULL",
    # EXCEPT/INTERSECT schema alignment
    "SELECT city FROM people EXCEPT SELECT city FROM people WHERE age < 29",
    "SELECT city FROM people INTERSECT SELECT 'nyc'",
    # three-way join: DP reorder + restored column order
    "SELECT t1.name FROM people AS t1 JOIN people AS t2 ON t1.id = t2.id "
    "JOIN orders AS o ON t1.id = o.pid WHERE t2.age > 24",
    "SELECT COUNT(*) FROM people AS p, orders AS o, people AS q "
    "WHERE p.id = o.pid AND q.id = p.id AND q.age > 20",
    # CASE folding keeps the projection's schema
    "SELECT name, CASE WHEN age > 30 THEN 'old' WHEN age > 26 THEN 'mid' "
    "ELSE 'young' END FROM people",
    # constant folding in projections and filters
    "SELECT 1 + 2 * 3, UPPER(name) FROM people WHERE LENGTH(name) > 3",
]


@pytest.fixture(scope="module")
def verified_db():
    db = Database(verify_plans=True)
    db.execute(
        "CREATE TABLE people (id INTEGER NOT NULL, name TEXT, age INTEGER, city TEXT)"
    )
    db.execute(
        "INSERT INTO people VALUES "
        "(1, 'alice', 30, 'nyc'), (2, 'bob', 25, 'sf'), (3, 'carol', 35, 'nyc'), "
        "(4, 'dave', 28, 'chi'), (5, 'erin', NULL, 'sf')"
    )
    db.execute("CREATE TABLE orders (oid INTEGER, pid INTEGER, amount FLOAT)")
    db.execute(
        "INSERT INTO orders VALUES "
        "(100, 1, 20.0), (101, 1, 35.5), (102, 2, 10.0), (103, 3, 7.25), "
        "(104, 3, 99.0), (105, 9, 1.0)"
    )
    db.execute("CREATE INDEX idx_age ON people (age)")
    db.execute("ANALYZE")
    return db


@pytest.mark.parametrize("query", ADVERSARIAL_QUERIES)
@pytest.mark.parametrize("engine", ["volcano", "vectorized"])
def test_adversarial_query_passes_verification(verified_db, query, engine):
    verified_db.execute(query, engine=engine)  # raises on any violation


def test_prepared_statements_are_verified(verified_db):
    prep = verified_db.prepare("SELECT name FROM people WHERE age > ? AND city = ?")
    assert prep.execute((26, "nyc")).rows == [("alice",), ("carol",)]


def test_explain_is_verified(verified_db):
    verified_db.execute(
        "EXPLAIN SELECT p.name FROM people AS p JOIN orders AS o "
        "ON p.id = o.pid WHERE o.amount > 15"
    )
