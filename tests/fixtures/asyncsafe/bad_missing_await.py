"""Fixture: coroutines called without await (rule 3).

Calling an ``async def`` returns a coroutine object without running it;
dropping that object (or binding it and never using it) means the work
silently never happens — Python only warns at garbage-collection time,
long after the bug site.
"""

import asyncio


async def fetch(n: int) -> int:
    await asyncio.sleep(0)
    return n * 2


async def writer(n: int) -> None:
    await asyncio.sleep(0)


async def discarded_call() -> None:
    fetch(1)  # MARK: discarded-coroutine


async def bound_never_used() -> None:
    result = fetch(2)  # MARK: bound-unused-coroutine
    print("did some other work")


class Pipeline:
    async def run(self) -> None:
        writer(3)  # MARK: method-discarded-coroutine
