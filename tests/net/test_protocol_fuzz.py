"""Protocol fuzzer: hostile byte streams against a live server.

Each seeded case opens a raw socket and feeds the server a randomized
attack script — truncated frames, oversized length prefixes, garbage
bytes, frames out of protocol order, malformed payload encodings, and
random SQL.  The contract under fuzz:

* the server never crashes (a **canary** session keeps getting correct
  answers after every case);
* no case corrupts another session's data (the canary table's contents
  are pinned);
* every byte the server sends back parses as a well-formed frame — a
  hostile client gets a clean ERROR frame or a clean disconnect, never
  garbage or a hang.

25 seeds per push; ``REPRO_NIGHTLY=1`` multiplies to 400.
"""

from __future__ import annotations

import os
import random
import socket
import struct

import pytest

from repro.net import ServerThread, connect
from repro.net import protocol as proto

NUM_SEEDS = 25
NIGHTLY_MULTIPLIER = 16  # 400 seeds

CANARY_ROWS = [(1, "alpha", 1.5), (2, "beta", 2.5), (3, "gamma", 3.5)]


def num_seeds() -> int:
    if os.environ.get("REPRO_NIGHTLY"):
        return NUM_SEEDS * NIGHTLY_MULTIPLIER
    return NUM_SEEDS


@pytest.fixture(scope="module")
def fuzz_server():
    """One long-lived server shared by every seed (cross-case survival is
    itself part of the contract), with a pinned canary table."""
    with ServerThread(max_connections=32, max_inflight=4) as srv:
        srv.db.execute("CREATE TABLE canary (id INTEGER, name TEXT, val FLOAT)")
        for row in CANARY_ROWS:
            srv.db.execute(f"INSERT INTO canary VALUES ({row[0]}, '{row[1]}', {row[2]})")
        yield srv


def _check_canary(srv: ServerThread) -> None:
    """A fresh well-behaved session still gets exact, uncorrupted answers."""
    with connect(port=srv.port, timeout=10.0) as conn:
        rows = conn.execute("SELECT id, name, val FROM canary WHERE id >= ?", (1,)).rows
        assert sorted(rows) == CANARY_ROWS, "fuzzing corrupted another session's data"


# -- attack generators -------------------------------------------------------
#
# Each returns bytes to send.  None of them may reference the canary table:
# a *valid* DML against it would be the fuzzer corrupting data itself.


def _garbage(rng: random.Random) -> bytes:
    return bytes(rng.randrange(256) for _ in range(rng.randint(1, 512)))


def _oversized_length(rng: random.Random) -> bytes:
    n = rng.choice([proto.MAX_FRAME + 1, 2**31 - 1, 2**32 - 1, 0])
    return struct.pack(">I", n) + bytes([proto.QUERY])


def _truncated_frame(rng: random.Random) -> bytes:
    frame = proto.encode_message(proto.QUERY, ["SELECT id FROM fuzz_t", []])
    return frame[: rng.randint(1, len(frame) - 1)]


def _bad_payload(rng: random.Random) -> bytes:
    frame_type = rng.choice(
        [proto.HELLO, proto.QUERY, proto.PARSE, proto.EXECUTE, proto.KV_READ]
    )
    return proto.encode_frame(frame_type, _garbage(rng))


def _huge_declared_count(rng: random.Random) -> bytes:
    # A list value whose declared element count vastly exceeds the bytes
    # present: the decoder must reject it instead of allocating.
    payload = b"l" + struct.pack(">I", 2**31 - 1) + b"i" + struct.pack(">q", 7)
    return proto.encode_frame(proto.QUERY, payload)


def _wrong_order(rng: random.Random) -> bytes:
    return rng.choice(
        [
            proto.encode_message(proto.EXECUTE, ["ghost", []]),
            proto.encode_message(proto.KV_READ, [999, "k"]),
            proto.encode_message(proto.KV_COMMIT, 12345),
            proto.encode_frame(proto.KV_BEGIN),
            proto.encode_message(proto.CLOSE_STMT, "nothing"),
            proto.encode_frame(0x7F, b"x"),  # unassigned frame type
            proto.encode_frame(proto.WELCOME, b"m\x00\x00\x00\x00"),  # server-only type
        ]
    )


def _random_sql(rng: random.Random) -> bytes:
    sql = rng.choice(
        [
            "SELECT id FROM fuzz_t",
            "SELEKT nonsense",
            "INSERT INTO fuzz_t VALUES (1)",
            "DROP TABLE fuzz_t",
            "COMMIT",
            "ROLLBACK",
            "SELECT " + "x" * rng.randint(1, 200),
            "",
            "\x00\xff" * rng.randint(1, 50),
        ]
    )
    return proto.encode_message(proto.QUERY, [sql, []])


ATTACKS = [
    _garbage,
    _oversized_length,
    _truncated_frame,
    _bad_payload,
    _huge_declared_count,
    _wrong_order,
    _random_sql,
]


def _drain_responses(sock: socket.socket) -> int:
    """Read until disconnect or quiescence; every frame must parse clean.

    Returns the number of well-formed frames observed.  Raises (failing
    the test) if the server emits bytes that do not frame-decode.
    """
    decoder = proto.FrameDecoder()
    frames = 0
    sock.settimeout(0.25)
    while True:
        try:
            data = sock.recv(65536)
        except socket.timeout:
            break
        except OSError:
            break
        if not data:
            break  # clean disconnect
        decoder.feed(data)
        for frame_type, payload in decoder.frames():
            # Every server-sent frame must carry a decodable payload.
            if payload:
                proto.decode_payload(payload)
            assert frame_type in proto.FRAME_NAMES, hex(frame_type)
            frames += 1
    return frames


@pytest.mark.parametrize("seed", range(num_seeds()))
def test_fuzz_seed(fuzz_server, seed):
    rng = random.Random(0xF00D + seed)
    sock = socket.create_connection(("127.0.0.1", fuzz_server.port), timeout=10.0)
    try:
        if rng.random() < 0.5:
            # Half the cases authenticate first, so attacks also exercise
            # the post-handshake handlers, not just the HELLO gate.
            sock.sendall(proto.encode_message(proto.HELLO, {"user": "fuzz"}))
        for _ in range(rng.randint(1, 12)):
            attack = rng.choice(ATTACKS)
            try:
                sock.sendall(attack(rng))
            except OSError:
                break  # server already dropped us: a legal outcome
            if rng.random() < 0.3:
                _drain_responses(sock)
        _drain_responses(sock)
    finally:
        sock.close()
    _check_canary(fuzz_server)


def test_fuzz_interleaved_with_healthy_session(fuzz_server):
    """A well-behaved session in the middle of hostile ones stays correct."""
    healthy = connect(port=fuzz_server.port, timeout=10.0)
    try:
        rng = random.Random(0xBEEF)
        for i in range(10):
            sock = socket.create_connection(
                ("127.0.0.1", fuzz_server.port), timeout=10.0
            )
            try:
                sock.sendall(rng.choice(ATTACKS)(rng))
                _drain_responses(sock)
            finally:
                sock.close()
            rows = healthy.execute(
                "SELECT COUNT(*), SUM(val) FROM canary WHERE id >= $1", (1,)
            ).rows
            assert rows == [(3, 7.5)], f"healthy session diverged at step {i}"
    finally:
        healthy.close()
