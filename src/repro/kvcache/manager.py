"""Paged KV-cache manager.

Follows the paged-attention design: a request's KV state is stored in
fixed-size *blocks* of ``block_size`` tokens.  A block's identity is the
hash of the full token prefix it completes, so requests sharing a prefix
(system prompts, few-shot preambles, conversation history) share cached
blocks automatically.

Eviction is delegated to any :class:`repro.storage.replacement.
ReplacementPolicy` — the same objects the relational buffer pool uses.
Blocks belonging to the request currently being served are pinned, exactly
like pinned pages during query execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import ReproError
from repro.storage.replacement import ReplacementPolicy, make_policy

DEFAULT_BLOCK_SIZE = 16


@dataclass
class CacheStats:
    """Token-level accounting of one simulation run."""

    requests: int = 0
    blocks_hit: int = 0
    blocks_missed: int = 0
    tokens_reused: int = 0
    tokens_computed: int = 0
    evictions: int = 0
    rejected: int = 0  # requests larger than the whole cache

    def block_hit_rate(self) -> float:
        total = self.blocks_hit + self.blocks_missed
        return self.blocks_hit / total if total else 0.0

    def token_reuse_rate(self) -> float:
        total = self.tokens_reused + self.tokens_computed
        return self.tokens_reused / total if total else 0.0


class KVCacheManager:
    """Prefix-keyed block cache with pluggable replacement."""

    def __init__(
        self,
        capacity_blocks: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        policy: Optional[ReplacementPolicy] = None,
    ):
        if capacity_blocks < 1:
            raise ReproError("cache needs at least one block")
        if block_size < 1:
            raise ReproError("block size must be >= 1 token")
        self.capacity_blocks = capacity_blocks
        self.block_size = block_size
        self.policy = policy if policy is not None else make_policy("lru")
        self._blocks: Set[Tuple] = set()
        self._pinned: Set[Tuple] = set()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._blocks)

    # -- serving --------------------------------------------------------------

    def block_keys(self, tokens: Sequence[int]) -> List[Tuple]:
        """Prefix-hash keys for every full or partial block of a sequence."""
        keys: List[Tuple] = []
        for end in range(self.block_size, len(tokens), self.block_size):
            keys.append(("blk", hash(tuple(tokens[:end]))))
        if len(tokens) % self.block_size or len(tokens) < self.block_size:
            keys.append(("blk", hash(tuple(tokens))))
        elif len(tokens) >= self.block_size:
            keys.append(("blk", hash(tuple(tokens))))
        return keys

    def serve(self, tokens: Sequence[int]) -> Tuple[int, int]:
        """Process one request; returns (tokens_reused, tokens_computed).

        The longest cached prefix (in whole blocks) is reused; the remaining
        suffix is "computed" and its blocks inserted.  All of the request's
        blocks are pinned for the duration so a request never evicts itself.
        """
        self.stats.requests += 1
        keys = self.block_keys(tokens)
        if len(keys) > self.capacity_blocks:
            # Request cannot fit even with an empty cache: compute fully,
            # cache nothing (vLLM would run it unpaged / reject).
            self.stats.rejected += 1
            self.stats.tokens_computed += len(tokens)
            self.stats.blocks_missed += len(keys)
            return 0, len(tokens)
        sizes = self._block_token_sizes(len(tokens))
        reused = 0
        computed = 0
        prefix_intact = True
        try:
            for key, size in zip(keys, sizes):
                if prefix_intact and key in self._blocks:
                    self.stats.blocks_hit += 1
                    reused += size
                    self.policy.record_access(key)
                    self._pinned.add(key)
                    continue
                prefix_intact = False
                self.stats.blocks_missed += 1
                computed += size
                self._insert(key)
                self._pinned.add(key)
        finally:
            self._pinned.clear()
        self.stats.tokens_reused += reused
        self.stats.tokens_computed += computed
        return reused, computed

    # -- internals ------------------------------------------------------------

    def _block_token_sizes(self, total_tokens: int) -> List[int]:
        sizes = [self.block_size] * (total_tokens // self.block_size)
        tail = total_tokens % self.block_size
        if tail:
            sizes.append(tail)
        if not sizes:
            sizes = [0]
        return sizes

    def _insert(self, key: Tuple) -> None:
        if key in self._blocks:
            self.policy.record_access(key)
            return
        while len(self._blocks) >= self.capacity_blocks:
            victim = self.policy.victim(lambda k: k not in self._pinned)
            if victim is None:
                raise ReproError("all cache blocks pinned; cannot evict")
            self._blocks.discard(victim)
            self.policy.remove(victim)
            self.stats.evictions += 1
        self._blocks.add(key)
        self.policy.record_insert(key)

    def contains_prefix(self, tokens: Sequence[int]) -> bool:
        """True when every block of ``tokens`` is currently cached."""
        return all(key in self._blocks for key in self.block_keys(tokens))
