"""Hybrid query definition."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class HybridQuery:
    """One query spanning up to three modalities.

    Attributes:
        keywords: free-text query for BM25 relevance (None = skip text).
        vector: embedding for similarity ranking (None = skip vectors).
        filter_sql: SQL boolean expression over the store's attribute
            columns, e.g. ``"price < 50 AND category = 'tools'"``
            (None = no relational filter).
        k: number of results wanted.
        vector_weight / text_weight: fused-score weights.
        fusion: ``"weighted"`` (normalized weighted sum) or ``"rrf"``
            (reciprocal-rank fusion).
    """

    keywords: Optional[str] = None
    vector: Optional[Sequence[float]] = None
    filter_sql: Optional[str] = None
    k: int = 10
    vector_weight: float = 0.5
    text_weight: float = 0.5
    fusion: str = "weighted"

    def __post_init__(self):
        if self.keywords is None and self.vector is None and self.filter_sql is None:
            raise ValueError("hybrid query needs at least one modality")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.fusion not in ("weighted", "rrf"):
            raise ValueError(f"unknown fusion {self.fusion!r}")

    @property
    def uses_ranking(self) -> bool:
        return self.keywords is not None or self.vector is not None
