"""The pipeline rewriter: query-optimization rules for data-prep DAGs.

Rules (all result-preserving, enforced by the commutation conditions):

1. **Selective-cheap first** — movable Filters and exact Dedups sink toward
   the source, ordered by rank = cost / (1 - keep_fraction), the classic
   predicate-ordering rule.
2. **GPU shielding** — the mechanism by which rule 1 pays off: every row
   removed before a ``gpu=True`` operator saves its (large) per-row cost.
3. **Map fusion** — adjacent CPU Maps compose into one operator, removing
   per-op overhead (one pass instead of two).

Commutation (may ``a`` execute before ``b`` when originally after it):

* never across :class:`FlatMap` or :class:`Sample` (they change the record
  stream itself — counts, identities, or positional sampling decisions);
* ``a.reads ∩ b.writes = ∅`` (a must not observe b's outputs);
* ``a.writes ∩ (b.reads ∪ b.writes) = ∅`` (a must not clobber b's inputs);
* a Filter crosses an exact Dedup only when ``filter.reads ⊆ dedup.reads``
  (the decision is then constant within each key group, so the surviving
  representative is filtered identically);
* Dedups move only when exact (minhash representatives are order-sensitive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.pipelines.ops import Dedup, Filter, FlatMap, Lookup, Map, Op, Sample
from repro.pipelines.pipeline import Pipeline


@dataclass
class RewriteTrace:
    """What the optimizer did (for EXPLAIN-style output and tests)."""

    moves: List[str] = field(default_factory=list)
    fusions: List[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"moved: {m}" for m in self.moves]
        lines += [f"fused: {f}" for f in self.fusions]
        return "\n".join(lines) or "(no rewrites)"


def _is_movable(op: Op) -> bool:
    if isinstance(op, Filter):
        return True
    if isinstance(op, Dedup):
        return op.method == "exact"
    if isinstance(op, Lookup):
        # An inner lookup is a row reducer (drops non-matching records); its
        # commutation is still gated by read/write sets like everything else.
        return op.how == "inner"
    return False


def _keep_fraction(op: Op) -> float:
    if isinstance(op, Filter):
        return max(0.0, min(1.0, op.selectivity))
    if isinstance(op, Dedup):
        return max(0.0, min(1.0, 1.0 - op.duplicate_fraction))
    if isinstance(op, Lookup) and op.how == "inner":
        return max(0.0, min(1.0, op.match_fraction))
    return 1.0


def _can_swap_before(mover: Op, fixed: Op) -> bool:
    """May ``mover`` (currently after ``fixed``) run before it?"""
    if isinstance(fixed, (FlatMap, Sample)) or isinstance(mover, (FlatMap, Sample)):
        return False
    if mover.reads & fixed.writes:
        return False
    if mover.writes & (fixed.reads | fixed.writes):
        return False
    if isinstance(fixed, Dedup):
        if fixed.method != "exact":
            return False
        if isinstance(mover, Filter) and not (mover.reads <= fixed.reads):
            return False
        if isinstance(mover, Dedup):
            return False  # reordering dedups swaps representatives
    if isinstance(fixed, Lookup) and isinstance(mover, Dedup) and fixed.how == "inner":
        # An inner lookup drops records: moving a dedup across it can change
        # which duplicate representative survives.
        return False
    if isinstance(mover, Dedup) and isinstance(fixed, Filter):
        # Dedup jumping before a filter changes which representative the
        # filter sees unless the filter reads only key fields.
        if not (fixed.reads <= mover.reads):
            return False
    return True


class PipelineOptimizer:
    """Applies the rewrite rules; returns a new Pipeline + trace."""

    def __init__(self, enable_reorder: bool = True, enable_fusion: bool = True):
        self.enable_reorder = enable_reorder
        self.enable_fusion = enable_fusion

    def optimize(self, pipeline: Pipeline) -> Pipeline:
        optimized, _ = self.optimize_traced(pipeline)
        return optimized

    def optimize_traced(self, pipeline: Pipeline) -> tuple:
        ops = list(pipeline.ops)
        trace = RewriteTrace()
        if self.enable_reorder:
            ops = self._sink_reducers(ops, trace)
            ops = self._order_adjacent_reducers(ops, trace)
        if self.enable_fusion:
            ops = self._fuse_maps(ops, trace)
        return pipeline.with_ops(ops), trace

    # -- rule 1 + 2: sink movable reducers toward the source ----------------

    def _sink_reducers(self, ops: List[Op], trace: RewriteTrace) -> List[Op]:
        changed = True
        while changed:
            changed = False
            for i in range(1, len(ops)):
                mover, ahead = ops[i], ops[i - 1]
                if not _is_movable(mover):
                    continue
                if _keep_fraction(mover) >= 1.0:
                    continue
                # Only hop over ops that are more expensive to feed than the
                # mover saves nothing by skipping — i.e. hop over anything
                # legal; ordering among reducers is fixed by rule below.
                if _is_movable(ahead):
                    continue  # handled by _order_adjacent_reducers
                if _can_swap_before(mover, ahead):
                    ops[i - 1], ops[i] = mover, ahead
                    trace.moves.append(f"{mover.describe()} before {ahead.describe()}")
                    changed = True
        return ops

    # -- rule 1: rank adjacent movable reducers --------------------------------

    def _order_adjacent_reducers(self, ops: List[Op], trace: RewriteTrace) -> List[Op]:
        """Order runs of adjacent movable reducers by cost/(1-keep)."""

        def rank(op: Op) -> float:
            drop = 1.0 - _keep_fraction(op)
            if drop <= 0.0:
                return float("inf")
            return op.cost_per_row / drop

        i = 0
        while i < len(ops):
            j = i
            while j < len(ops) and _is_movable(ops[j]):
                j += 1
            if j - i > 1:
                run = ops[i:j]
                ordered = sorted(run, key=rank)
                if [o.name for o in ordered] != [o.name for o in run]:
                    if self._run_reorder_legal(run, ordered):
                        ops[i:j] = ordered
                        trace.moves.append(
                            "ranked reducers: " + ", ".join(o.name for o in ordered)
                        )
            i = max(j, i + 1)
        return ops

    def _run_reorder_legal(self, original: List[Op], proposed: List[Op]) -> bool:
        """Every op that moves earlier must commute with those it passes."""
        for new_pos, op in enumerate(proposed):
            old_pos = original.index(op)
            for passed in original[:old_pos]:
                if passed in proposed[new_pos:]:
                    if not _can_swap_before(op, passed):
                        return False
        return True

    # -- rule 3: fuse adjacent maps ------------------------------------------------

    def _fuse_maps(self, ops: List[Op], trace: RewriteTrace) -> List[Op]:
        out: List[Op] = []
        for op in ops:
            previous = out[-1] if out else None
            if (
                isinstance(op, Map)
                and isinstance(previous, Map)
                and not op.gpu
                and not previous.gpu
            ):
                fused = Map(
                    name=f"{previous.name}+{op.name}",
                    fn=_compose(previous.fn, op.fn),
                    reads=previous.reads | (op.reads - previous.writes),
                    writes=previous.writes | op.writes,
                    cost_per_row=previous.cost_per_row + op.cost_per_row,
                    output_ratio=previous.output_ratio * op.output_ratio,
                )
                out[-1] = fused
                trace.fusions.append(fused.name)
                continue
            out.append(op)
        return out


def _compose(first, second):
    def fused(record):
        return second(first(record))

    return fused
