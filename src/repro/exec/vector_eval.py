"""Batch (column-at-a-time) expression evaluation.

The vectorized engine represents a batch as a list of columns, each a Python
list of length ``n``.  Expressions evaluate whole batches: numeric
arithmetic and comparisons take a numpy fast path when the operand columns
contain no NULLs; everything else falls back to a tight per-row loop over
the already-decoded column values.

The contract mirrors row-at-a-time evaluation exactly (same three-valued
logic), and the cross-engine property tests enforce it.
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np

from repro.core.errors import ExecutionError
from repro.exec.compile import evaluator
from repro.plan.expressions import (
    BoundBinary,
    BoundCase,
    BoundColumn,
    BoundExpr,
    BoundFunc,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundParam,
    BoundUnary,
)

Batch = List[List[Any]]  # column-major: batch[column][row]

_NUMPY_ARITH = {"+": np.add, "-": np.subtract, "*": np.multiply}
_NUMPY_CMP = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def eval_batch(expr: BoundExpr, batch: Batch, n: int) -> List[Any]:
    """Evaluate ``expr`` over every row of a column-major batch."""
    if isinstance(expr, BoundColumn):
        return batch[expr.index]
    if isinstance(expr, BoundLiteral):
        return [expr.value] * n
    if isinstance(expr, BoundParam):
        return [expr.slots[expr.index]] * n
    if isinstance(expr, BoundBinary):
        return _eval_binary(expr, batch, n)
    if isinstance(expr, BoundUnary):
        operand = eval_batch(expr.operand, batch, n)
        if expr.op == "NOT":
            return [None if v is None else (not v) for v in operand]
        return [None if v is None else -v for v in operand]
    if isinstance(expr, BoundIsNull):
        operand = eval_batch(expr.operand, batch, n)
        if expr.negated:
            return [v is not None for v in operand]
        return [v is None for v in operand]
    if isinstance(expr, BoundInList):
        operand = eval_batch(expr.operand, batch, n)
        out: List[Any] = []
        for v in operand:
            if v is None:
                out.append(None)
                continue
            found = v in expr.values
            if not found and expr.has_null:
                out.append(None)
                continue
            out.append(not found if expr.negated else found)
        return out
    if isinstance(expr, (BoundLike, BoundFunc, BoundCase)):
        # Row-wise evaluation against a virtual row view of the batch.
        return _eval_rowwise(expr, batch, n)
    raise ExecutionError(f"cannot batch-evaluate {type(expr).__name__}")


def normalize_mask(values: Sequence[Any]) -> List[Any]:
    """Coerce a predicate column to plain ``True`` / ``False`` / ``None``.

    The numpy fast path can hand back ``np.bool_`` values, for which identity
    tests like ``v is True`` are silently always false.  Normalizing at this
    boundary lets consumers use plain truthiness (``None`` is falsy).
    """
    return [None if v is None else bool(v) for v in values]


def _eval_rowwise(expr: BoundExpr, batch: Batch, n: int) -> List[Any]:
    columns = sorted(_columns_of(expr))
    fn = evaluator(expr)
    out = []
    width = len(batch)
    row: List[Any] = [None] * width
    for i in range(n):
        for c in columns:
            row[c] = batch[c][i]
        out.append(fn(row))
    return out


def _columns_of(expr: BoundExpr) -> set:
    cols = set()

    def walk(node: BoundExpr) -> None:
        if isinstance(node, BoundColumn):
            cols.add(node.index)
        for child in node.children():
            walk(child)

    walk(expr)
    return cols


def _numeric_array(values: Sequence[Any]):
    """numpy array for a null-free numeric column, else None."""
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError):
        return None
    if arr.dtype.kind in ("i", "f", "b") and arr.ndim == 1:
        return arr
    return None


def _eval_binary(expr: BoundBinary, batch: Batch, n: int) -> List[Any]:
    op = expr.op
    if op == "AND":
        left = eval_batch(expr.left, batch, n)
        right = eval_batch(expr.right, batch, n)
        out = []
        for a, b in zip(left, right):
            if a is False or b is False:
                out.append(False)
            elif a is None or b is None:
                out.append(None)
            else:
                out.append(True)
        return out
    if op == "OR":
        left = eval_batch(expr.left, batch, n)
        right = eval_batch(expr.right, batch, n)
        out = []
        for a, b in zip(left, right):
            if a is True or b is True:
                out.append(True)
            elif a is None or b is None:
                out.append(None)
            else:
                out.append(False)
        return out
    left = eval_batch(expr.left, batch, n)
    right = eval_batch(expr.right, batch, n)
    # numpy fast path: null-free numeric columns.
    if op in _NUMPY_ARITH or op in _NUMPY_CMP:
        if None not in left and None not in right:
            la = _numeric_array(left)
            ra = _numeric_array(right)
            if la is not None and ra is not None:
                fn = _NUMPY_ARITH.get(op) or _NUMPY_CMP[op]
                return fn(la, ra).tolist()
    # General path with NULL propagation, reusing scalar semantics.  The
    # two-slot probe closure is memoized on the expression node so repeated
    # batches (and plan-cache hits) compile it exactly once.
    probe_fn = getattr(expr, "_probe_fn", None)
    if probe_fn is None:
        probe = BoundBinary(
            op, _Slot(0, expr.left.dtype), _Slot(1, expr.right.dtype), expr.dtype
        )
        probe_fn = evaluator(probe)
        object.__setattr__(expr, "_probe_fn", probe_fn)
    return [probe_fn((a, b)) for a, b in zip(left, right)]


class _Slot(BoundColumn):
    """A positional placeholder used to reuse scalar binary semantics."""
