"""Tests for UNION / UNION ALL / INTERSECT / EXCEPT."""

import pytest

from repro.core.database import Database
from repro.core.errors import BindError, ParseError, TypeMismatchError
from repro.sql import ast
from repro.sql.parser import parse


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE a (x INTEGER, y TEXT)")
    database.execute("CREATE TABLE b (x INTEGER, y TEXT)")
    database.execute("INSERT INTO a VALUES (1,'p'),(2,'q'),(2,'q'),(3,'r')")
    database.execute("INSERT INTO b VALUES (2,'q'),(4,'s'),(4,'s')")
    return database


class TestParsing:
    def test_union_parses(self):
        stmt = parse("SELECT x FROM a UNION SELECT x FROM b")
        assert isinstance(stmt, ast.SetOpStmt)
        assert stmt.op == "union" and not stmt.all

    def test_union_all(self):
        assert parse("SELECT x FROM a UNION ALL SELECT x FROM b").all

    def test_chain_is_left_associative(self):
        stmt = parse("SELECT 1 UNION SELECT 2 INTERSECT SELECT 3")
        assert stmt.op == "intersect"
        assert stmt.left.op == "union"

    def test_trailing_order_limit_lifted_to_compound(self):
        stmt = parse("SELECT x FROM a UNION SELECT x FROM b ORDER BY 1 LIMIT 3")
        assert stmt.limit == 3
        assert len(stmt.order_by) == 1
        assert stmt.right.order_by == ()
        assert stmt.right.limit is None

    def test_inner_order_by_rejected(self):
        with pytest.raises(ParseError, match="parenthesize|set operation"):
            parse("SELECT x FROM a ORDER BY x UNION SELECT x FROM b")

    def test_round_trip(self):
        sql = "SELECT x FROM a UNION ALL SELECT x FROM b EXCEPT SELECT x FROM c ORDER BY 1 ASC LIMIT 2"
        stmt = parse(sql)
        assert parse(stmt.to_sql()) == stmt


class TestSemantics:
    def test_union_distinct(self, db):
        rows = db.execute("SELECT x, y FROM a UNION SELECT x, y FROM b ORDER BY 1").rows
        assert rows == [(1, "p"), (2, "q"), (3, "r"), (4, "s")]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.execute("SELECT x FROM a UNION ALL SELECT x FROM b").rows
        assert len(rows) == 7

    def test_intersect(self, db):
        rows = db.execute("SELECT x, y FROM a INTERSECT SELECT x, y FROM b").rows
        assert rows == [(2, "q")]

    def test_except(self, db):
        rows = db.execute(
            "SELECT x, y FROM a EXCEPT SELECT x, y FROM b ORDER BY x"
        ).rows
        assert rows == [(1, "p"), (3, "r")]

    def test_except_is_asymmetric(self, db):
        rows = db.execute("SELECT x FROM b EXCEPT SELECT x FROM a").rows
        assert rows == [(4,)]

    def test_compound_order_and_limit(self, db):
        rows = db.execute(
            "SELECT x FROM a UNION SELECT x FROM b ORDER BY x DESC LIMIT 2"
        ).rows
        assert rows == [(4,), (3,)]

    def test_order_by_column_name(self, db):
        rows = db.execute("SELECT x, y FROM a UNION SELECT x, y FROM b ORDER BY y DESC").rows
        assert rows[0] == (4, "s")

    def test_numeric_type_widening(self, db):
        db.execute("CREATE TABLE f (v FLOAT)")
        db.execute("INSERT INTO f VALUES (1.5)")
        rows = db.execute("SELECT x FROM a UNION SELECT v FROM f ORDER BY 1").rows
        assert rows[0] == (1,)
        assert (1.5,) in rows

    def test_mixed_expressions(self, db):
        rows = db.execute(
            "SELECT x * 10 FROM a WHERE x = 1 UNION SELECT COUNT(*) FROM b"
        ).rows
        assert sorted(rows) == [(3,), (10,)]

    def test_three_way_chain(self, db):
        rows = db.execute(
            "SELECT x FROM a UNION SELECT x FROM b EXCEPT SELECT x FROM a WHERE x = 2 "
            "ORDER BY 1"
        ).rows
        assert rows == [(1,), (3,), (4,)]

    def test_null_rows_deduplicate(self, db):
        db.execute("INSERT INTO a VALUES (NULL, NULL), (NULL, NULL)")
        rows = db.execute("SELECT x, y FROM a UNION SELECT x, y FROM b").rows
        nulls = [r for r in rows if r == (None, None)]
        assert len(nulls) == 1

    def test_in_subquery_with_set_op(self, db):
        count = db.execute(
            "SELECT COUNT(*) FROM a WHERE x IN "
            "(SELECT x FROM a INTERSECT SELECT x FROM b)"
        ).scalar()
        assert count == 2  # the two (2, 'q') rows


class TestErrors:
    def test_arity_mismatch(self, db):
        with pytest.raises(BindError, match="columns"):
            db.execute("SELECT x, y FROM a UNION SELECT x FROM b")

    def test_type_mismatch(self, db):
        with pytest.raises(TypeMismatchError):
            db.execute("SELECT x FROM a UNION SELECT y FROM b")

    def test_order_by_out_of_range(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY 5")


class TestPlanningAndEngines:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT x, y FROM a UNION SELECT x, y FROM b ORDER BY 1, 2",
            "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY 1",
            "SELECT x, y FROM a INTERSECT SELECT x, y FROM b",
            "SELECT x, y FROM a EXCEPT SELECT x, y FROM b ORDER BY 1",
        ],
    )
    def test_engine_parity(self, db, sql):
        volcano = db.execute(sql, engine="volcano").rows
        vectorized = db.execute(sql, engine="vectorized").rows
        assert volcano == vectorized

    def test_explain_shows_setop(self, db):
        text = db.explain("SELECT x FROM a UNION SELECT x FROM b")
        assert "SetOp(UNION)" in text

    def test_filter_pushes_into_both_sides(self, db):
        db.analyze()
        from repro.optimizer.optimizer import Optimizer
        from repro.plan.binder import Binder

        stmt = parse(
            "SELECT * FROM (SELECT 1) z"
        ) if False else parse("SELECT x, y FROM a UNION ALL SELECT x, y FROM b")
        plan = Binder(db.catalog).bind_query(stmt)
        from repro.plan import logical
        from repro.plan.expressions import BoundBinary, BoundColumn, BoundLiteral
        from repro.core.types import DataType

        predicate = BoundBinary(
            ">", BoundColumn(0, DataType.INTEGER, "x"),
            BoundLiteral(1, DataType.INTEGER), DataType.BOOLEAN,
        )
        filtered = logical.Filter(plan, predicate)
        optimized = Optimizer(db.catalog).optimize_logical(filtered)
        text = optimized.pretty()
        # The filter is gone from the top and appears below the SetOp twice.
        assert text.count("(x#0 > 1)") == 2
        assert text.index("SetOp") < text.index("(x#0 > 1)")

    def test_pushdown_preserves_setop_results(self, db):
        from repro.optimizer.optimizer import OptimizerOptions

        sql = (
            "SELECT x, y FROM a UNION SELECT x, y FROM b ORDER BY 1, 2"
        )
        optimized = db.execute(sql).rows
        db.optimizer_options = OptimizerOptions.naive()
        naive = db.execute(sql).rows
        assert optimized == naive
