"""The Database facade: the library's main entry point.

One object wires together the storage engine, catalog, SQL front end,
optimizer, execution engines, and WAL-backed statement transactions::

    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'x')")
    print(db.execute("SELECT * FROM t WHERE a = 1").rows)

Design knobs map to the paper's themes:

* ``engine`` — ``"volcano"`` or ``"vectorized"``: two physical engines for
  one logical language (physical data independence, experiment E8);
* ``default_layout`` — ``"row"`` or ``"column"`` storage for new tables;
* ``optimizer_options`` — declarative queries get automatic optimization
  (experiment E9 flips these switches);
* ``buffer_capacity`` / ``buffer_policy`` — the buffer pool whose
  replacement policies the KV-cache simulator reuses (experiment E5).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import astuple, dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.catalog import COLUMN_LAYOUT, ROW_LAYOUT, Catalog, TableInfo
from repro.core.errors import (
    BindError,
    CatalogError,
    ExecutionError,
    ReproError,
    TransactionError,
)
from repro.core.plancache import (
    CachedPlan,
    PlanCache,
    PreparedStatement,
    is_plan_cacheable,
    normalize_sql,
)
from repro.core.querycache import QueryCache, referenced_tables
from repro.txn import trace as schedule_trace
from repro.core.result import Result
from repro.core.types import Column, DataType, Row, Schema
from repro.exec.compile import evaluator
from repro.exec.vectorized import execute_vectorized
from repro.exec.volcano import execute_volcano
from repro.optimizer.cost import CostModel
from repro.optimizer.optimizer import Optimizer, OptimizerOptions
from repro.plan.binder import Binder
from repro.plan.expressions import ParamVector, is_constant
from repro.sql import ast
from repro.sql.params import count_placeholders, normalize_params, substitute_params
from repro.sql.parser import parse
from repro.storage.buffer import BufferPool
from repro.storage.disk import FileDiskManager, InMemoryDiskManager
from repro.storage.faults import NULL_INJECTOR, BufferedCrashFile, FaultyDiskManager
from repro.storage.recovery import recover_database
from repro.storage.replacement import make_policy
from repro.storage.wal import (
    SYSTEM_TXN,
    LogRecordType,
    WriteAheadLog,
    read_log_file,
)

VOLCANO = "volcano"
VECTORIZED = "vectorized"

#: Durability modes: "none" disables the WAL entirely; "commit" flushes the
#: log to the OS at every commit (survives a process kill); "fsync" also
#: fsyncs (survives power loss).  File-backed databases default to "fsync".
DURABILITY_MODES = ("none", "commit", "fsync")


def _workers_from_env() -> Optional[int]:
    """Worker count requested by the environment, or None to leave options be.

    ``REPRO_WORKERS=N`` pins an exact count; ``REPRO_PARALLEL=1`` enables
    parallel plans with ``max(2, cpu_count)`` workers (the CI matrix leg
    sets both, explicitly).
    """
    count = os.environ.get("REPRO_WORKERS", "")
    if count:
        return int(count)
    if os.environ.get("REPRO_PARALLEL", "") not in ("", "0"):
        return max(2, os.cpu_count() or 1)
    return None


@dataclass
class StatementStats:
    """Timing + plan info for the most recent statement."""

    sql: str = ""
    parse_ms: float = 0.0
    optimize_ms: float = 0.0
    execute_ms: float = 0.0
    total_ms: float = 0.0
    rows: int = 0
    plan_cache_hit: bool = False


class Database:
    """An embedded multi-modal SQL database."""

    def __init__(
        self,
        path: Optional[str] = None,
        buffer_capacity: int = 1024,
        buffer_policy: str = "lru",
        default_layout: str = ROW_LAYOUT,
        engine: str = VOLCANO,
        optimizer_options: Optional[OptimizerOptions] = None,
        cost_model: Optional[CostModel] = None,
        wal_path: Optional[str] = None,
        result_cache_size: int = 0,
        plan_cache_size: int = 128,
        durability: Optional[str] = None,
        checkpoint_interval: int = 512,
        fault_injector=None,
        verify_plans: Optional[bool] = None,
        record_schedule: Optional[bool] = None,
        workers: Optional[int] = None,
    ):
        if engine not in (VOLCANO, VECTORIZED):
            raise ReproError(f"unknown engine {engine!r}")
        if default_layout not in (ROW_LAYOUT, COLUMN_LAYOUT):
            raise ReproError(f"unknown layout {default_layout!r}")
        self.path = path
        self.faults = fault_injector if fault_injector is not None else NULL_INJECTOR
        resolved_wal = wal_path if wal_path is not None else (
            path + ".wal" if path else None
        )
        if durability is None:
            durability = "fsync" if resolved_wal else "commit"
        if durability not in DURABILITY_MODES:
            raise ReproError(f"unknown durability mode {durability!r}")
        self.durability = durability
        self._wal_enabled = durability != "none"
        self.wal_path = resolved_wal if self._wal_enabled else None
        self.checkpoint_interval = checkpoint_interval
        self._commits_since_checkpoint = 0

        # --- open protocol: decide between fast attach and crash recovery.
        # The sidecar records the WAL position of the last clean shutdown;
        # a WAL that grew past it (or a missing/unclean sidecar) means the
        # process died mid-flight and the heap pages cannot be trusted.
        from repro.catalog.persistence import load_catalog, load_metadata

        existing_records = []
        if (
            self.wal_path
            and os.path.exists(self.wal_path)
            and os.path.getsize(self.wal_path) > 0
        ):
            existing_records = read_log_file(self.wal_path)
        meta = load_metadata(path) if path else {}
        last_durable_lsn = existing_records[-1].lsn if existing_records else 0
        clean_attach = (
            bool(meta)
            and meta.get("clean", True)
            and meta.get("shutdown_lsn", last_durable_lsn) == last_durable_lsn
        )
        need_recovery = bool(existing_records) and path is not None and not clean_attach
        if need_recovery:
            # Heap pages may hold torn or uncommitted images; the WAL is the
            # source of truth.  Start the page file over and rebuild.
            open(path, "wb").close()

        disk = FileDiskManager(path) if path else InMemoryDiskManager()
        if fault_injector is not None:
            disk = FaultyDiskManager(disk, self.faults)
        self.disk = disk
        self.pool = BufferPool(
            self.disk, capacity=buffer_capacity, policy=make_policy(buffer_policy)
        )
        self.catalog = Catalog(self.pool)
        if path and not need_recovery:
            load_catalog(self.catalog, path)
        opener = None
        if fault_injector is not None:
            opener = lambda p: BufferedCrashFile(p, self.faults)  # noqa: E731
        self.wal = WriteAheadLog(self.wal_path, opener=opener)
        self.default_layout = default_layout
        self.engine = engine
        self.optimizer_options = (
            optimizer_options if optimizer_options is not None else OptimizerOptions()
        )
        # Intra-query parallelism.  Explicit ``workers=N`` wins; otherwise
        # REPRO_WORKERS=N, then REPRO_PARALLEL=1 (=> 2 workers), then the
        # optimizer options as passed.  ``replace`` keeps a caller-supplied
        # options object unmutated (it may be shared across databases).
        if workers is None:
            workers = _workers_from_env()
        if workers is not None:
            if workers < 0:
                raise ReproError(f"workers must be >= 0, got {workers}")
            self.optimizer_options = replace(self.optimizer_options, workers=workers)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        # Plan-invariant verification: opt-in per Database, with an env
        # default so the whole test suite runs verified (REPRO_VERIFY_PLANS=1
        # in tests/conftest.py).
        if verify_plans is None:
            verify_plans = os.environ.get("REPRO_VERIFY_PLANS", "") not in ("", "0")
        self.verify_plans = verify_plans
        # Concurrency-sanitizer schedule recording: statement transactions
        # log begin/read/write/commit/abort events (reads at table, writes
        # at (table, rid) granularity) for `python -m repro sanitize`.
        # Opt-in per Database, or suite-wide via REPRO_SANITIZE=1.
        if record_schedule is None:
            record_schedule = schedule_trace.sanitize_enabled()
        self.schedule_recorder: Optional[schedule_trace.ScheduleRecorder] = (
            schedule_trace.ScheduleRecorder(scheme="database")
            if record_schedule
            else None
        )
        self.last_stats = StatementStats()
        self.result_cache: Optional[QueryCache] = (
            QueryCache(result_cache_size) if result_cache_size > 0 else None
        )
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(plan_cache_size) if plan_cache_size > 0 else None
        )
        self._binder = Binder(self.catalog, subquery_executor=self._run_subplan)
        self._lock = threading.RLock()
        self._closed = False
        # Never reuse a transaction id that appears in the existing log: a
        # reused id could pair a fresh BEGIN with a stale COMMIT on replay.
        self._txn_id = max((r.txn_id for r in existing_records), default=0)
        self._active_txn: Optional[int] = None
        self._undo_log: List[Tuple[str, str, Any, Optional[Row]]] = []
        self._group_depth = 0
        self._group_dirty = False
        self.recovery_stats: Optional[Dict[str, int]] = None
        if need_recovery:
            self.recovery_stats = self._rebuild_from_records(existing_records)
            # Re-anchor the log: replayed rows live at fresh rids now, so
            # compact to a snapshot before any new record references them.
            self.checkpoint()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(
        self,
        sql: str,
        engine: Optional[str] = None,
        params: Optional[Sequence[Any]] = None,
    ) -> Result:
        """Parse, plan, and run one SQL statement.

        ``params`` binds Python values to placeholders (escaped client-side,
        so string values are always safe).  Three styles, matching the
        network clients: ``?`` / ``$1`` positional with a sequence, or
        ``:name`` with a mapping::

            db.execute("SELECT * FROM t WHERE name = ? AND n < ?", params=("o'brien", 5))
            db.execute("SELECT * FROM t WHERE name = :n", params={"n": "o'brien"})
        """
        with self._lock:
            started = time.perf_counter()
            if params is not None:
                sql, values = normalize_params(sql, params)
                sql = substitute_params(sql, values)
            engine_used = engine or self.engine
            normalized = normalize_sql(sql)
            # Result cache first: only SELECTs are ever stored, so a hit
            # implies the text is a SELECT without parsing it at all.
            cache_key = (normalized, engine_used)
            if self.result_cache is not None:
                cached = self.result_cache.get(cache_key)
                if cached is not None:
                    finished = time.perf_counter()
                    self.last_stats = StatementStats(
                        sql=sql,
                        total_ms=(finished - started) * 1e3,
                        rows=len(cached.rows),
                    )
                    return Result(columns=list(cached.columns), rows=list(cached.rows))
            # Plan cache next: skip parse/bind/optimize, re-run the plan.
            if self.plan_cache is not None:
                entry = self.plan_cache.get(
                    normalized,
                    self.catalog.version,
                    self.catalog.stats_epoch,
                    self._options_key(),
                )
                if entry is not None:
                    if self.schedule_recorder is not None:
                        self._record_schedule_reads(entry.tables)
                    rows = self._run_physical(entry.physical, engine_used)
                    result = Result(
                        columns=list(entry.columns), rows=rows, rowcount=len(rows)
                    )
                    if self.result_cache is not None and entry.tables is not None:
                        self.result_cache.put(
                            cache_key, list(result.columns), list(result.rows),
                            set(entry.tables),
                        )
                    finished = time.perf_counter()
                    self.last_stats = StatementStats(
                        sql=sql,
                        execute_ms=(finished - started) * 1e3,
                        total_ms=(finished - started) * 1e3,
                        rows=len(rows),
                        plan_cache_hit=True,
                    )
                    return result
            statement = parse(sql)
            parsed = time.perf_counter()
            result = self._dispatch(statement, engine_used, normalized)
            if (
                self.result_cache is not None
                and isinstance(statement, (ast.SelectStmt, ast.SetOpStmt))
                and result.plan_text is None
            ):
                tables = referenced_tables(statement)
                if tables is not None:
                    # Store copies: callers may mutate their Result freely.
                    self.result_cache.put(
                        cache_key, list(result.columns), list(result.rows), tables
                    )
            finished = time.perf_counter()
            self.last_stats = StatementStats(
                sql=sql,
                parse_ms=(parsed - started) * 1e3,
                execute_ms=(finished - parsed) * 1e3,
                total_ms=(finished - started) * 1e3,
                rows=len(result.rows) if result.rows else result.rowcount,
            )
            return result

    def prepare(self, sql: str) -> "PreparedStatement":
        """Parse, bind, and optimize once; execute many times.

        SELECT statements (without subqueries) get a *bound* plan whose ``?``
        placeholders read from a shared parameter vector — each
        ``stmt.execute(params)`` writes the values and re-runs the cached
        physical plan, skipping parse/bind/optimize/codegen entirely.  Other
        statements fall back to client-side substitution per execution::

            stmt = db.prepare("SELECT * FROM t WHERE a = ? AND b < ?")
            stmt.execute((1, 10.0))
            stmt.execute((2, 99.5))
        """
        with self._lock:
            prep = PreparedStatement(self, sql)
            prep.param_count = count_placeholders(sql)
            prep.statement = parse(sql)
            if is_plan_cacheable(prep.statement):
                prep.param_vector = ParamVector(prep.param_count)
                self._plan_prepared(prep)
                prep.uses_bound_plan = True
            return prep

    def explain(self, sql: str) -> str:
        """The optimized physical plan for a SELECT, as text."""
        result = self.execute(f"EXPLAIN {sql}" if not sql.upper().lstrip().startswith("EXPLAIN") else sql)
        return result.plan_text or ""

    def analyze(self, table: Optional[str] = None) -> None:
        """Recompute optimizer statistics."""
        with self._lock:
            self.catalog.analyze(table)

    def create_table(
        self, name: str, schema: Schema, layout: Optional[str] = None
    ) -> TableInfo:
        """Programmatic CREATE TABLE (the SQL path calls this too)."""
        with self._lock:
            layout = layout or self.default_layout
            table = self.catalog.create_table(name, schema, layout)
            self._log_ddl(
                LogRecordType.CREATE_TABLE,
                table.name,
                (self._schema_payload(table), layout),
            )
            return table

    def insert_rows(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert Python tuples (fast path used by workload loaders).

        The whole batch commits as one transaction: one WAL flush instead
        of one per row."""
        with self._lock:
            table = self.catalog.get_table(table_name)
            count = 0
            with self._statement_scope():
                for row in rows:
                    rid = table.insert(row)
                    self._log_write(table.name, "insert", rid, None)
                    count += 1
            return count

    def table(self, name: str) -> TableInfo:
        return self.catalog.get_table(name)

    def close(self) -> None:
        """Graceful shutdown: roll back any open transaction, flush dirty
        pages, checkpoint the WAL, mark the sidecar clean so the next open
        fast-attaches instead of running recovery, and release every cache
        that pins rows or plans.

        Idempotent: the server opens and closes thousands of sessions, and
        double-close (context manager + explicit call, or error-path
        cleanup racing normal teardown) must be a no-op, not a crash on an
        already-closed WAL file.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._active_txn is not None:
                self._rollback()
            self.pool.flush_all()
            if self.path and hasattr(self.disk, "sync"):
                self.disk.sync()
            if self.path and self._wal_enabled:
                self.checkpoint()
            if self.path:
                from repro.catalog.persistence import save_catalog

                save_catalog(
                    self.catalog,
                    self.path,
                    clean=True,
                    shutdown_lsn=self.wal.last_lsn,
                )
            self.wal.flush(fsync=self.durability == "fsync")
            self.wal.close()
            self.disk.close()
            # Release cached plans/results/decoded rows: cached physical
            # plans pin index state and row snapshots, and a long-lived
            # process that opens thousands of Databases (the server's
            # open/close-per-session tests do exactly this) must not
            # accumulate them after close.
            if self.plan_cache is not None:
                self.plan_cache.invalidate_all()
            if self.result_cache is not None:
                self.result_cache.clear()
            for name in self.catalog.table_names():
                self.catalog.get_table(name).release_caches()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(
        self, statement: ast.Statement, engine: str, normalized: Optional[str] = None
    ) -> Result:
        if isinstance(statement, (ast.SelectStmt, ast.SetOpStmt)):
            return self._execute_select(statement, engine, normalized)
        if isinstance(statement, ast.ExplainStmt):
            return self._execute_explain(statement)
        if isinstance(statement, ast.CreateTableStmt):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateIndexStmt):
            info = self.catalog.create_index(
                statement.name,
                statement.table,
                statement.column,
                kind=statement.using,
                unique=statement.unique,
            )
            self._log_ddl(
                LogRecordType.CREATE_INDEX,
                info.table,
                (info.name, info.column, info.kind, int(info.unique)),
            )
            return Result()
        if isinstance(statement, ast.DropTableStmt):
            self.catalog.drop_table(statement.name)
            self._log_ddl(LogRecordType.DROP_TABLE, statement.name, None)
            if self.result_cache is not None:
                self.result_cache.clear()
            if self.plan_cache is not None:
                # The version bump already forces misses; dropping eagerly
                # also releases plans pinning the dead table's structures.
                self.plan_cache.invalidate_all()
            return Result()
        if isinstance(statement, ast.InsertStmt):
            return self._execute_insert(statement)
        if isinstance(statement, ast.UpdateStmt):
            return self._execute_update(statement)
        if isinstance(statement, ast.DeleteStmt):
            return self._execute_delete(statement)
        if isinstance(statement, ast.AnalyzeStmt):
            self.catalog.analyze(statement.table)
            return Result()
        if isinstance(statement, ast.BeginStmt):
            self._begin()
            return Result()
        if isinstance(statement, ast.CommitStmt):
            self._commit()
            return Result()
        if isinstance(statement, ast.RollbackStmt):
            self._rollback()
            return Result()
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    # -- SELECT ------------------------------------------------------------

    def _run_subplan(self, logical_plan) -> List[Row]:
        """Execute an uncorrelated subquery's logical plan (bind-time fold)."""
        optimizer = Optimizer(
            self.catalog, self.cost_model, self.optimizer_options, verify=self.verify_plans
        )
        __, physical = optimizer.optimize(logical_plan)
        return list(execute_volcano(physical, self.catalog))

    def _execute_select(
        self, statement: ast.Statement, engine: str, normalized: Optional[str] = None
    ) -> Result:
        if self.schedule_recorder is not None:
            self._record_schedule_reads(referenced_tables(statement))
        logical_plan = self._binder.bind_query(statement)
        optimizer = Optimizer(
            self.catalog, self.cost_model, self.optimizer_options, verify=self.verify_plans
        )
        t0 = time.perf_counter()
        _, physical = optimizer.optimize(logical_plan)
        t1 = time.perf_counter()
        rows = self._run_physical(physical, engine)
        self.last_stats.optimize_ms = (t1 - t0) * 1e3
        schema = physical.schema
        columns = [c.name for c in schema.columns]
        if (
            self.plan_cache is not None
            and normalized is not None
            and is_plan_cacheable(statement)
        ):
            tables = referenced_tables(statement)
            self.plan_cache.put(
                normalized,
                CachedPlan(
                    physical=physical,
                    columns=columns,
                    tables=frozenset(tables) if tables is not None else None,
                    catalog_version=self.catalog.version,
                    stats_epoch=self.catalog.stats_epoch,
                    options_key=self._options_key(),
                ),
            )
        return Result(columns=columns, rows=rows, rowcount=len(rows))

    def _run_physical(self, physical, engine: str) -> List[Row]:
        if engine == VECTORIZED:
            return list(execute_vectorized(physical, self.catalog))
        return list(execute_volcano(physical, self.catalog))

    def _options_key(self) -> Tuple:
        return astuple(self.optimizer_options)

    # -- prepared statements ----------------------------------------------

    def _plan_prepared(self, prep: PreparedStatement) -> None:
        """(Re)bind and (re)optimize a prepared SELECT's physical plan."""
        logical_plan = self._binder.bind_prepared(prep.statement, prep.param_vector)
        optimizer = Optimizer(
            self.catalog, self.cost_model, self.optimizer_options, verify=self.verify_plans
        )
        _, physical = optimizer.optimize(logical_plan)
        prep.physical = physical
        prep.columns = [c.name for c in physical.schema.columns]
        prep.catalog_version = self.catalog.version
        prep.stats_epoch = self.catalog.stats_epoch
        prep.options_key = self._options_key()
        prep.replans += 1

    def _execute_prepared(
        self,
        prep: PreparedStatement,
        params: Sequence[Any],
        engine: Optional[str],
    ) -> Result:
        with self._lock:
            engine_used = engine or self.engine
            if not prep.uses_bound_plan:
                # DML / subquery statements: substitute and take the normal
                # path (which still hits the textual plan cache for SELECTs).
                result = self.execute(substitute_params(prep.sql, list(params)), engine=engine_used)
                prep.executions += 1
                return result
            started = time.perf_counter()
            if (
                prep.catalog_version != self.catalog.version
                or prep.stats_epoch != self.catalog.stats_epoch
                or prep.options_key != self._options_key()
            ):
                # Schema, stats, or optimizer options changed underneath us.
                self._plan_prepared(prep)
            prep.param_vector.bind(list(params))
            rows = self._run_physical(prep.physical, engine_used)
            prep.executions += 1
            finished = time.perf_counter()
            self.last_stats = StatementStats(
                sql=prep.sql,
                execute_ms=(finished - started) * 1e3,
                total_ms=(finished - started) * 1e3,
                rows=len(rows),
                plan_cache_hit=True,
            )
            return Result(columns=list(prep.columns), rows=rows, rowcount=len(rows))

    def _execute_explain(self, statement: ast.ExplainStmt) -> Result:
        inner = statement.statement
        if not isinstance(inner, (ast.SelectStmt, ast.SetOpStmt)):
            raise ExecutionError("EXPLAIN supports SELECT statements")
        logical_plan = self._binder.bind_query(inner)
        optimizer = Optimizer(
            self.catalog, self.cost_model, self.optimizer_options, verify=self.verify_plans
        )
        optimized, physical = optimizer.optimize(logical_plan)
        text = (
            "== logical plan ==\n"
            + optimized.pretty()
            + "\n== physical plan ==\n"
            + physical.pretty()
        )
        return Result(columns=["plan"], rows=[(line,) for line in text.splitlines()], plan_text=text)

    # -- DDL ---------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTableStmt) -> Result:
        columns = []
        for col_def in statement.columns:
            dtype = DataType.parse(col_def.type_name)
            width = col_def.vector_width if dtype is DataType.VECTOR else 0
            columns.append(
                Column(col_def.name, dtype, nullable=not col_def.not_null, vector_width=width)
            )
        self.create_table(statement.name, Schema(columns))
        return Result()

    # -- DML ---------------------------------------------------------------

    def _execute_insert(self, statement: ast.InsertStmt) -> Result:
        rows = self._binder.bind_insert_rows(statement)
        table = self.catalog.get_table(statement.table)
        with self._statement_scope():
            for row in rows:
                rid = table.insert(row)
                self._log_write(table.name, "insert", rid, None)
        return Result(rowcount=len(rows))

    @staticmethod
    def _equality_candidates(table: TableInfo, where: ast.Expr):
        """``(column, literal)`` pairs usable for an index point lookup.

        Walks the top-level AND chain of a WHERE clause collecting
        ``col = literal`` (either side) conjuncts whose literal type can
        be probed into an index without changing comparison semantics
        (exact int/float/str — bools and NULLs fall back to the scan).
        """
        pairs = []
        stack = [where]
        while stack:
            node = stack.pop()
            if not isinstance(node, ast.BinaryOp):
                continue
            if node.op == "AND":
                stack.append(node.left)
                stack.append(node.right)
                continue
            if node.op != "=":
                continue
            for col_side, lit_side in (
                (node.left, node.right),
                (node.right, node.left),
            ):
                if (
                    isinstance(col_side, ast.ColumnRef)
                    and (col_side.table is None or col_side.table == table.name)
                    and isinstance(lit_side, ast.Literal)
                    and type(lit_side.value) in (int, float, str)
                ):
                    pairs.append((col_side.name, lit_side.value))
                    break
        return pairs

    def _index_eq_rids(self, table: TableInfo, where: Optional[ast.Expr]):
        """Candidate rids for a point predicate, or None for no usable index."""
        if where is None or not table.indexes:
            return None
        for column, value in self._equality_candidates(table, where):
            info = table.index_on(column)
            if info is None:
                continue
            try:
                return info.structure.search(value)
            except Exception:
                # Incomparable key (e.g. str probe into an int btree): the
                # scan path defines the semantics, so let it answer.
                return None
        return None

    def _matching_rids(self, table: TableInfo, where: Optional[ast.Expr]):
        predicate = None
        if where is not None:
            predicate = evaluator(self._binder.bind_expr(where, table.schema))
            rids = self._index_eq_rids(table, where)
            if rids is not None:
                # Index candidates only narrow the scan; the full predicate
                # still decides.  Materialize before yielding — the caller
                # mutates the very index being read.
                matches = []
                for rid in rids:
                    row = table.get(rid)
                    if row is not None and predicate(row) is True:
                        matches.append((rid, row))
                yield from matches
                return
        for rid, row in list(table.scan()):
            if predicate is None or predicate(row) is True:
                yield rid, row

    def _execute_update(self, statement: ast.UpdateStmt) -> Result:
        table = self.catalog.get_table(statement.table)
        assignments = []
        for column_name, value_ast in statement.assignments:
            idx = table.schema.index_of(column_name)
            bound = self._binder.bind_expr(value_ast, table.schema)
            assignments.append((idx, evaluator(bound)))
        count = 0
        with self._statement_scope():
            for rid, row in self._matching_rids(table, statement.where):
                new_row = list(row)
                for idx, value_fn in assignments:
                    new_row[idx] = value_fn(row)
                new_rid = table.update(rid, tuple(new_row))
                self._log_write(table.name, "update", (rid, new_rid), row)
                count += 1
        return Result(rowcount=count)

    def _execute_delete(self, statement: ast.DeleteStmt) -> Result:
        table = self.catalog.get_table(statement.table)
        count = 0
        with self._statement_scope():
            for rid, row in self._matching_rids(table, statement.where):
                table.delete(rid)
                self._log_write(table.name, "delete", rid, row)
                count += 1
        return Result(rowcount=count)

    # ------------------------------------------------------------------
    # Transactions (statement-level; logical undo via before-images)
    # ------------------------------------------------------------------

    def in_transaction(self) -> bool:
        return self._active_txn is not None

    @contextmanager
    def _statement_scope(self):
        """Make one DML statement transactional.

        Inside an explicit BEGIN...COMMIT the statement just joins the open
        transaction.  Otherwise it gets an implicit transaction of its own:
        committed (and made durable) when the statement completes, rolled
        back if it raises — so a multi-row INSERT that fails half-way leaves
        nothing behind, matching SQLite's statement atomicity.  A simulated
        :class:`~repro.storage.faults.CrashPoint` is a BaseException and
        deliberately bypasses the rollback: after a power cut nothing runs.
        """
        if self._active_txn is not None:
            yield
            return
        self._begin()
        try:
            yield
        except Exception:
            self._rollback()
            raise
        else:
            self._commit()

    def _record_schedule(self, op: str, key=None) -> None:
        """Log one sanitizer event for the active statement transaction.

        Reads are recorded at table granularity, writes at ``(table, rid)``;
        autocommit reads outside any transaction are not recorded — only
        transactional history feeds the serializability checker.
        """
        if self.schedule_recorder is not None and self._active_txn is not None:
            self.schedule_recorder.record(self._active_txn, op, key=key)

    def _record_schedule_reads(self, tables) -> None:
        if (
            self.schedule_recorder is not None
            and self._active_txn is not None
            and tables
        ):
            for table in sorted(tables):
                self.schedule_recorder.record(
                    self._active_txn, schedule_trace.READ, key=table
                )

    def _begin(self) -> None:
        if self._active_txn is not None:
            raise TransactionError("a transaction is already active")
        self._txn_id += 1
        self._active_txn = self._txn_id
        self._undo_log = []
        self._record_schedule(schedule_trace.BEGIN)
        if self._wal_enabled:
            self.wal.append(self._active_txn, LogRecordType.BEGIN)

    def _commit(self) -> None:
        if self._active_txn is None:
            raise TransactionError("no active transaction")
        self._record_schedule(schedule_trace.COMMIT)
        if self._wal_enabled:
            self.wal.append(self._active_txn, LogRecordType.COMMIT)
            self.faults.hit("commit.appended")
            self._durable_flush()
            self.faults.hit("commit.flushed")
        self._active_txn = None
        self._undo_log = []
        self._commits_since_checkpoint += 1
        if (
            self.checkpoint_interval
            and self.wal.path
            and self._commits_since_checkpoint >= self.checkpoint_interval
        ):
            self.checkpoint()

    def _rollback(self) -> None:
        if self._active_txn is None:
            raise TransactionError("no active transaction")
        self._record_schedule(schedule_trace.ABORT)
        # Logical undo.  Rows can move (delete+reinsert, oversized update),
        # so track where each original rid lives now while unwinding.
        remap: Dict[Any, Any] = {}
        affected = {entry[0] for entry in self._undo_log}
        if self.result_cache is not None:
            self.result_cache.invalidate_tables(affected)
        if self.plan_cache is not None and affected:
            # Rolled-back data may be live inside cached physical plans
            # (decoded-row snapshots, pinned index state): rebuild them.
            self.plan_cache.invalidate_tables(affected)
        for table_name, op, rid, before in reversed(self._undo_log):
            table = self.catalog.get_table(table_name)
            if op == "insert":
                table.delete(remap.get(rid, rid))
            elif op == "delete":
                remap[rid] = table.insert(before)
            elif op == "update":
                old_rid, new_rid = rid
                target = remap.get(new_rid, new_rid)
                restored = table.update(target, before)
                if restored != old_rid:
                    remap[old_rid] = restored
        if self._wal_enabled:
            self.wal.append(self._active_txn, LogRecordType.ABORT)
        self._active_txn = None
        self._undo_log = []

    def _durable_flush(self) -> None:
        if not self._wal_enabled:
            return
        if self._group_depth:
            # Inside group_commit(): the flush is owed, not skipped — the
            # scope exit pays it once for every commit in the group.
            self._group_dirty = True
            return
        self.wal.flush(fsync=self.durability == "fsync")

    @contextmanager
    def group_commit(self):
        """Share one WAL flush across consecutive autocommit statements.

        Inside the scope each statement still commits logically (WAL
        records appended, undo log cleared) but the per-commit durability
        flush is deferred; the scope exit performs a single
        flush/fsync covering every commit in the group — N small writes,
        one disk round-trip.  Callers must not acknowledge any statement
        in the group to their own clients until the scope has exited
        (the network server sends batch responses only after it closes).

        Holds the database lock for the duration, so the group executes
        atomically with respect to other threads.  Reentrant: nested
        scopes join the outermost one.
        """
        with self._lock:
            self._group_depth += 1
            try:
                yield
            finally:
                self._group_depth -= 1
                if self._group_depth == 0 and self._group_dirty:
                    self._group_dirty = False
                    self.wal.flush(fsync=self.durability == "fsync")

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Compact the WAL to a snapshot of the current committed state.

        The replacement log carries the schema (CREATE TABLE / CREATE INDEX
        records), every live row as one committed snapshot transaction keyed
        by its *current* rid, and a CHECKPOINT marker.  Compaction is atomic
        (write temp + fsync + rename), so a crash at any point leaves either
        the old or the new log — recovery works from both.  Runs
        automatically every ``checkpoint_interval`` commits and on close.
        """
        with self._lock:
            if not self._wal_enabled:
                return
            if self._active_txn is not None:
                raise TransactionError("cannot checkpoint inside a transaction")
            self.faults.hit("checkpoint.begin")
            specs: List[Tuple] = []
            names = self.catalog.table_names()
            for name in names:
                table = self.catalog.get_table(name)
                specs.append(
                    (
                        SYSTEM_TXN,
                        LogRecordType.CREATE_TABLE,
                        table.name,
                        None,
                        None,
                        (self._schema_payload(table), table.layout),
                    )
                )
                for info in table.indexes.values():
                    specs.append(
                        (
                            SYSTEM_TXN,
                            LogRecordType.CREATE_INDEX,
                            table.name,
                            None,
                            None,
                            (info.name, info.column, info.kind, int(info.unique)),
                        )
                    )
            self._txn_id += 1
            snapshot_txn = self._txn_id
            specs.append((snapshot_txn, LogRecordType.BEGIN, "", None, None, None))
            for name in names:
                table = self.catalog.get_table(name)
                for rid, row in table.scan():
                    specs.append(
                        (
                            snapshot_txn,
                            LogRecordType.INSERT,
                            table.name,
                            self._wal_rid(rid),
                            None,
                            tuple(row),
                        )
                    )
            specs.append((snapshot_txn, LogRecordType.COMMIT, "", None, None, None))
            specs.append((SYSTEM_TXN, LogRecordType.CHECKPOINT, "", None, None, None))
            injector = self.faults if self.faults is not NULL_INJECTOR else None
            self.wal.compact(specs, injector=injector)
            self._commits_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def _rebuild_from_records(self, records) -> Dict[str, int]:
        """Rebuild schema + committed rows from the log (open-time recovery).

        Direct catalog/heap calls on purpose: the operations being replayed
        are already in the log, so nothing here may append to it.
        """
        from repro.catalog.persistence import _schema_from_json

        state = recover_database(records)
        restored: Dict[str, int] = {}
        for spec in state.tables.values():
            schema = _schema_from_json(json.loads(spec.schema_json))
            table = self.catalog.create_table(spec.name, schema, layout=spec.layout)
            for rid in sorted(spec.rows):
                table.insert(spec.rows[rid])
            for index_name, column, kind, unique in spec.indexes:
                self.catalog.create_index(
                    index_name, spec.name, column, kind=kind, unique=unique
                )
            restored[spec.name] = len(spec.rows)
        self._txn_id = max(self._txn_id, state.max_txn_id)
        return restored

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def restore_from_wal(self, wal_file: str) -> Dict[str, int]:
        """Rebuild table contents from a persisted WAL after a crash.

        The catalog (DDL) must already exist — re-run the CREATE statements
        first, as classic logical-logging systems replay against a schema.
        Only committed transactions' effects are restored; in-flight and
        aborted work is discarded.  Returns rows restored per table.
        """
        from repro.storage.recovery import replay
        from repro.storage.wal import read_log_file

        state = replay(read_log_file(wal_file))
        restored: Dict[str, int] = {}
        for table_name, images in state.tables.items():
            if not self.catalog.has_table(table_name):
                raise CatalogError(
                    f"WAL references table {table_name!r}; recreate its schema "
                    "before calling restore_from_wal"
                )
            table = self.catalog.get_table(table_name)
            rows = [images[rid] for rid in sorted(images)]
            for row in rows:
                table.insert(row)
            restored[table_name] = len(rows)
        # Replay rewrote table contents underneath any cached results/plans.
        if restored:
            if self.result_cache is not None:
                self.result_cache.invalidate_tables(restored)
            if self.plan_cache is not None:
                self.plan_cache.invalidate_tables(restored)
        return restored

    def _log_write(
        self, table_name: str, op: str, rid: Any, before: Optional[Row]
    ) -> None:
        """Record one row write: undo entry + WAL redo record(s).

        Every DML path runs inside :meth:`_statement_scope`, so a
        transaction is always active here.  The WAL side is logical redo
        keyed by rid; an update that *moved* its row (grew past the old
        slot) logs DELETE(old rid) + INSERT(new rid) — a single UPDATE
        record would leave the old rid's image alive during replay and
        recovery would resurrect the row twice.
        """
        if self._active_txn is None:
            raise TransactionError("row writes require an active transaction")
        if self.schedule_recorder is not None:
            write_rid = rid[1] if op == "update" else rid
            self._record_schedule(
                schedule_trace.WRITE, key=(table_name, self._wal_rid(write_rid))
            )
        if self.result_cache is not None:
            self.result_cache.invalidate_tables([table_name])
        self._undo_log.append((table_name, op, rid, before))
        if not self._wal_enabled:
            return
        txn = self._active_txn
        if op == "insert":
            after = self.catalog.get_table(table_name).get(rid)
            self.wal.append(
                txn,
                LogRecordType.INSERT,
                table=table_name,
                rid=self._wal_rid(rid),
                after=after,
            )
        elif op == "delete":
            self.wal.append(
                txn,
                LogRecordType.DELETE,
                table=table_name,
                rid=self._wal_rid(rid),
                before=before,
            )
        else:  # update: rid is (old_rid, new_rid)
            old_rid, new_rid = rid
            after = self.catalog.get_table(table_name).get(new_rid)
            if self._wal_rid(old_rid) == self._wal_rid(new_rid):
                self.wal.append(
                    txn,
                    LogRecordType.UPDATE,
                    table=table_name,
                    rid=self._wal_rid(new_rid),
                    before=before,
                    after=after,
                )
            else:
                self.wal.append(
                    txn,
                    LogRecordType.DELETE,
                    table=table_name,
                    rid=self._wal_rid(old_rid),
                    before=before,
                )
                self.wal.append(
                    txn,
                    LogRecordType.INSERT,
                    table=table_name,
                    rid=self._wal_rid(new_rid),
                    after=after,
                )
        self.faults.hit("dml.logged")

    def _log_ddl(self, type_: LogRecordType, table: str, args) -> None:
        """Append an autocommitted DDL record and make it durable.

        DDL records carry :data:`SYSTEM_TXN` and are replayed by recovery
        in LSN order regardless of commit status — by the time the record
        is appended, the catalog change has already taken effect.
        """
        if not self._wal_enabled:
            return
        self.wal.append(SYSTEM_TXN, type_, table=table, after=args)
        self._durable_flush()
        self.faults.hit("ddl.logged")

    @staticmethod
    def _wal_rid(rid: Any) -> Tuple[int, int]:
        return tuple(rid) if isinstance(rid, tuple) else (int(rid), 0)

    def _schema_payload(self, table) -> str:
        from repro.catalog.persistence import _schema_to_json

        return json.dumps(
            _schema_to_json(
                Schema([c.with_table(None) for c in table.schema.columns])
            )
        )
